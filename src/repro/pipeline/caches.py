"""Cache and memory stall model.

The paper runs a full cache hierarchy; we cannot model data addresses (the
workload substrate has no data side), so memory behaviour is substituted
by a *stall-rate* model (documented in DESIGN.md): each committed uop has
a deterministic, seeded probability of being a load that misses L1/L2,
charging the pipeline the corresponding latency amortised by a
memory-level-parallelism factor. The substitution preserves what the uPC
experiments measure — the *relative* effect of branch mispredicts —
while keeping absolute uPC in a realistic range (the paper's Figure 9
sits between 1.5 and 2.1 uPC; this model lands in the same band).

:class:`CacheModel` is a real set-associative LRU tag store used for the
instruction cache (addresses exist for code) and exercised in unit tests.
"""

from __future__ import annotations

from repro.utils.hashing import mix64
from repro.utils.bitops import mask
from repro.pipeline.uarch import CacheConfig, MachineConfig


class CacheModel:
    """Set-associative LRU cache over addresses (tags only)."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        total_lines = (config.size_kb * 1024) // config.line_bytes
        self.sets = max(1, total_lines // config.ways)
        if self.sets & (self.sets - 1):
            raise ValueError("cache sets must be a power of two")
        self._set_bits = self.sets.bit_length() - 1
        self._line_bits = config.line_bytes.bit_length() - 1
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch ``address``; returns True on hit, installs on miss."""
        self.accesses += 1
        line = address >> self._line_bits
        index = line & mask(self._set_bits)
        tag = line >> self._set_bits
        entries = self._sets[index]
        if tag in entries:
            entries.remove(tag)
            entries.append(tag)
            return True
        self.misses += 1
        if len(entries) >= self.config.ways:
            entries.pop(0)
        entries.append(tag)
        return False

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.sets)]
        self.accesses = 0
        self.misses = 0


class MemoryModel:
    """Deterministic per-uop data-side stall generator.

    ``l1_miss_per_uop`` and ``l2_miss_per_uop`` are the probabilities that
    a committed uop triggers an L1 (resp. L2) data miss; ``mlp`` divides
    the charged latency (overlapping misses). Draws hash the uop sequence
    number, so runs are exactly reproducible and independent of simulator
    scheduling.
    """

    def __init__(
        self,
        machine: MachineConfig,
        l1_miss_per_uop: float = 0.010,
        l2_miss_per_uop: float = 0.0012,
        mlp: float = 2.5,
        seed: int = 0xD47A,
    ) -> None:
        if not 0 <= l1_miss_per_uop <= 1 or not 0 <= l2_miss_per_uop <= 1:
            raise ValueError("miss rates are probabilities")
        if mlp <= 0:
            raise ValueError("mlp must be positive")
        self.machine = machine
        self.l1_miss_per_uop = l1_miss_per_uop
        self.l2_miss_per_uop = l2_miss_per_uop
        self.mlp = mlp
        self.seed = seed
        self.l1_misses = 0
        self.l2_misses = 0

    def stall_cycles(self, uop_seq: int, uops: int) -> float:
        """Data-side stall charged for a block of ``uops`` committed uops."""
        stall = 0.0
        word = mix64(self.seed ^ uop_seq)
        # Expected-value charging with deterministic jitter: the integer
        # part of expected misses always charges; the fractional part
        # charges when the hash falls below it.
        for rate, latency, counter in (
            (self.l1_miss_per_uop, self.machine.l1d.hit_cycles + self.machine.l2.hit_cycles, "l1"),
            (self.l2_miss_per_uop, self.machine.memory_latency_cycles, "l2"),
        ):
            expected = rate * uops
            misses = int(expected)
            frac = expected - misses
            threshold = int(frac * (1 << 32))
            if (word & 0xFFFFFFFF) < threshold:
                misses += 1
            word = mix64(word)
            if misses:
                stall += misses * latency / self.mlp
                if counter == "l1":
                    self.l1_misses += misses
                else:
                    self.l2_misses += misses
        return stall
