"""Timing model: the Table-2 machine and its uPC measurements.

A cycle-stepped decoupled front end (prophet 2 predictions/cycle, critic
1 critique/cycle, 32-entry FTQ, 6-uop fetch) feeds an interval-style back
end (issue width 6, 30-cycle mispredict redirect, configurable per-uop
memory stall factor standing in for the cache hierarchy). uPC deltas
between predictors come from flush counts and front-end refill — the
first-order terms behind the paper's Figures 9 and 10.
"""

from repro.pipeline.caches import CacheModel, MemoryModel
from repro.pipeline.machine import PipelineResult, TimedMachine
from repro.pipeline.uarch import MachineConfig, TABLE2_MACHINE

__all__ = [
    "CacheModel",
    "MachineConfig",
    "MemoryModel",
    "PipelineResult",
    "TABLE2_MACHINE",
    "TimedMachine",
]
