"""Machine configuration — the paper's Table 2.

The simulated machine is a Pentium-4-derived superscalar with a decoupled
front end: 3.8 GHz, 6-uop fetch/issue/retire, 30-cycle mispredict
penalty, 4096-entry 4-way BTB, 32-entry FTQ, 2048-uop instruction window.
``TABLE2_MACHINE`` reproduces those numbers; tests pin them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheConfig:
    """One cache level's geometry and latency."""

    name: str
    size_kb: int
    ways: int
    line_bytes: int = 64
    hit_cycles: int = 1


@dataclass(frozen=True)
class MachineConfig:
    """Table-2 microarchitecture parameters."""

    frequency_ghz: float = 3.8
    fetch_width_uops: int = 6
    issue_width_uops: int = 6
    retire_width_uops: int = 6
    mispredict_penalty_cycles: int = 30
    btb_entries: int = 4096
    btb_ways: int = 4
    ftq_entries: int = 32
    instruction_window_uops: int = 2048
    scheduling_window: dict[str, int] = field(
        default_factory=lambda: {"int": 256, "mem": 128, "fp": 384}
    )
    load_buffer_uops: int = 768
    store_buffer_uops: int = 512
    functional_units: dict[str, int] = field(
        default_factory=lambda: {"int": 6, "mem": 4, "fp": 2}
    )
    icache: CacheConfig = CacheConfig("I", 64, 8, 64, 1)
    l1d: CacheConfig = CacheConfig("L1D", 32, 16, 64, 3)
    l2: CacheConfig = CacheConfig("L2", 2048, 16, 64, 16)
    memory_latency_ns: float = 100.0
    #: Prophet predictions produced per cycle (§5: "the prophet produces
    #: 2 predictions per cycle and the critic produces 1 per cycle").
    prophet_rate: int = 2
    critic_rate: int = 1

    @property
    def memory_latency_cycles(self) -> int:
        return int(self.memory_latency_ns * self.frequency_ghz)


#: The configuration used throughout §7.4.
TABLE2_MACHINE = MachineConfig()
