"""Cycle-stepped decoupled front end + interval back end → uPC.

The front end models §5's implementation faithfully in timing terms:

* the prophet produces up to 2 predictions per cycle into the FTQ;
* the critic criticises up to 1 prediction per cycle, in order, once the
  required future bits are present; a disagreement flushes only the
  uncriticised FTQ tail and redirects the prophet (no back-end cost);
* the instruction cache consumes up to ``fetch_width_uops`` per cycle
  from the FTQ head;
* consumed branches resolve ``mispredict_penalty_cycles`` later (the
  paper's 30-cycle pipeline); a resolved final-prediction mispredict
  flushes everything and restarts fetch after the penalty;
* committed uops are charged issue-width cycles plus the
  :class:`~repro.pipeline.caches.MemoryModel`'s data-side stalls.

This captures the terms that differentiate predictors — flush frequency,
front-end refill, wasted wrong-path fetch — which is what Figures 9/10
measure. Absolute uPC is calibrated only loosely (documented
substitution: no data-address stream exists in the workload substrate).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.hybrid import InflightBranch, PredictionSystem
from repro.engine.btb import BranchTargetBuffer
from repro.engine.executor import ArchitecturalExecutor
from repro.engine.frontend import SpeculativeWalker
from repro.pipeline.caches import MemoryModel
from repro.pipeline.uarch import MachineConfig, TABLE2_MACHINE
from repro.sim.driver import SimulationDesyncError
from repro.workloads.program import Program


@dataclass
class PipelineResult:
    """Timing outcome of one run."""

    benchmark: str = ""
    system: str = ""
    cycles: int = 0
    committed_uops: int = 0
    fetched_uops: int = 0
    branches: int = 0
    mispredicts: int = 0
    critic_redirects: int = 0
    ftq_empty_cycles: int = 0

    @property
    def upc(self) -> float:
        """Uops per cycle — the paper's performance metric (Figs. 9/10)."""
        if self.cycles == 0:
            return 0.0
        return self.committed_uops / self.cycles

    @property
    def uops_per_flush(self) -> float:
        if self.mispredicts == 0:
            return float("inf")
        return self.committed_uops / self.mispredicts

    @property
    def wrong_path_fetch_fraction(self) -> float:
        """Share of fetched uops that were wrong-path (headline: −8.6%
        total fetch for the hybrid comes from shrinking this)."""
        if self.fetched_uops == 0:
            return 0.0
        return max(0.0, 1.0 - self.committed_uops / self.fetched_uops)


class TimedMachine:
    """Runs a prediction system under the Table-2 timing model."""

    def __init__(
        self,
        program: Program,
        system: PredictionSystem,
        machine: MachineConfig = TABLE2_MACHINE,
        memory: MemoryModel | None = None,
    ) -> None:
        self.program = program
        self.system = system
        self.machine = machine
        self.memory = memory if memory is not None else MemoryModel(machine)
        program.reset()
        self.executor = ArchitecturalExecutor(program)
        self.walker = SpeculativeWalker(program)
        self.btb = BranchTargetBuffer(machine.btb_entries, machine.btb_ways)

    def run(self, n_branches: int, warmup: int = 0) -> PipelineResult:
        """Simulate until ``n_branches`` resolve; measure after ``warmup``."""
        machine = self.machine
        system = self.system
        result = PipelineResult(
            benchmark=self.program.name, system=type(system).__name__
        )
        required_bits = max(system.future_bits, 0)

        # The FTQ holds fetched-but-unconsumed predictions; consumed
        # branches wait in the resolve queue for the pipeline delay.
        ftq: deque[InflightBranch] = deque()
        criticised = 0
        resolve_queue: deque[tuple[int, InflightBranch, int]] = deque()
        next_seq = 0
        resolved = 0
        cycle = 0
        fetch_blocked_until = 0
        backend_stall = 0.0
        committed = 0
        measure_start_uops = 0
        measure_start_fetched = 0
        measure_start_cycle = 0
        head_fetch_remaining = 0  # uops left to fetch of the current head

        def gathered(handle: InflightBranch) -> int:
            return next_seq - handle.seq

        while resolved < n_branches:
            cycle += 1
            if warmup > 0 and resolved >= warmup and measure_start_cycle == 0:
                measure_start_cycle = cycle
                measure_start_uops = committed
                measure_start_fetched = self.walker.fetched_uops

            # --- prophet: up to prophet_rate predictions/cycle ------------
            if cycle >= fetch_blocked_until:
                for _ in range(machine.prophet_rate):
                    if len(ftq) >= machine.ftq_entries:
                        break
                    fetched = self.walker.next_branch()
                    snap = self.walker.snapshot()
                    if self.btb.lookup(fetched.pc):
                        handle = system.predict(fetched.pc)
                        handle.seq = next_seq
                        next_seq += 1
                    else:
                        handle = system.predict_static(fetched.pc)
                        handle.seq = next_seq
                    handle.walker_snapshot = snap
                    handle.uops_hint = fetched.uops
                    ftq.append(handle)
                    self.walker.advance(handle.prophet_pred)

            # --- critic: up to critic_rate critiques/cycle ----------------
            for _ in range(machine.critic_rate):
                if criticised >= len(ftq):
                    break
                handle = ftq[criticised]
                needed = 0 if handle.is_static else required_bits
                if gathered(handle) < needed and len(ftq) < machine.ftq_entries:
                    break  # wait for more future bits
                final = system.critique(handle)
                criticised += 1
                if not handle.is_static and final != handle.prophet_pred:
                    while len(ftq) > criticised:
                        ftq.pop()
                    system.apply_redirect(handle, final)
                    self.walker.restore(handle.walker_snapshot)
                    self.walker.advance(final)
                    next_seq = handle.seq + 1
                    result.critic_redirects += 1

            # --- fetch: cache consumes uops from the FTQ head --------------
            # A block of U uops occupies the fetch port for ceil(U/width)
            # cycles; the branch enters the pipeline when its last uop is
            # fetched and resolves a full pipeline depth later. When the
            # cache requires a prediction whose critique isn't ready, the
            # critique is generated with the future bits available (§5) —
            # stalling fetch on the critic would starve the machine after
            # every flush, when the FTQ is shallow.
            if ftq:
                if not ftq[0].critiqued:
                    forced = ftq[0]
                    final = system.critique(forced)
                    criticised = max(criticised, 1)
                    result_forced = not forced.is_static and final != forced.prophet_pred
                    if result_forced:
                        while len(ftq) > 1:
                            ftq.pop()
                        criticised = 1
                        system.apply_redirect(forced, final)
                        self.walker.restore(forced.walker_snapshot)
                        self.walker.advance(final)
                        next_seq = forced.seq + 1
                        result.critic_redirects += 1
                if head_fetch_remaining == 0:
                    head_fetch_remaining = ftq[0].uops_hint
                head_fetch_remaining -= machine.fetch_width_uops
                if head_fetch_remaining <= 0:
                    head_fetch_remaining = 0
                    head = ftq.popleft()
                    criticised -= 1
                    resolve_queue.append(
                        (cycle + machine.mispredict_penalty_cycles, head, head.uops_hint)
                    )
            else:
                result.ftq_empty_cycles += 1

            # --- retire/resolve: bounded by retire width -------------------
            # Retirement is incremental: a branch commits once all its
            # block's uops have drained through the retire port, so blocks
            # wider than the port simply take several cycles.
            retire_budget = machine.retire_width_uops
            while resolve_queue and resolve_queue[0][0] <= cycle and retire_budget > 0:
                entry = resolve_queue[0]
                head = entry[1]
                uops_left = entry[2]
                if uops_left > retire_budget:
                    resolve_queue[0] = (entry[0], head, uops_left - retire_budget)
                    retire_budget = 0
                    break
                retire_budget -= uops_left
                resolve_queue.popleft()
                actual = self.executor.next_branch()
                if actual.pc != head.pc:
                    raise SimulationDesyncError(
                        f"timing model desync at branch {resolved}: "
                        f"{actual.pc:#x} vs {head.pc:#x}"
                    )
                committed += actual.uops
                backend_stall += self.memory.stall_cycles(committed, actual.uops)
                resolved += 1
                if resolved > warmup:
                    result.branches += 1
                mispredicted = head.final_pred != actual.taken or (
                    head.is_static and actual.taken
                )
                if head.is_static:
                    self.btb.allocate(head.pc)
                system.resolve(head, actual.taken)
                if mispredicted:
                    if resolved > warmup:
                        result.mispredicts += 1
                    system.recover(head, actual.taken)
                    self.walker.restore(head.walker_snapshot)
                    self.walker.advance(actual.taken)
                    ftq.clear()
                    criticised = 0
                    resolve_queue.clear()
                    head_fetch_remaining = 0
                    next_seq = head.seq + 1
                    # The 30-cycle penalty is the fetch→resolve delay the
                    # flushed work already paid; redirected fetch resumes
                    # next cycle (charging it again would double-count).
                    fetch_blocked_until = cycle + 1
                    break

            # --- memory stalls extend the run as skipped cycles ------------
            if backend_stall >= 1.0:
                skip = int(backend_stall)
                backend_stall -= skip
                cycle += skip

        result.cycles = max(1, cycle - measure_start_cycle)
        result.committed_uops = committed - measure_start_uops
        result.fetched_uops = self.walker.fetched_uops - measure_start_fetched
        return result
