"""Shared low-level utilities: bit manipulation, hashing, deterministic RNG.

These helpers underpin every predictor and engine component. They are kept
dependency-free (stdlib only) so the predictor zoo stays easy to audit
against the published hardware descriptions.
"""

from repro.utils.bitops import (
    bit_select,
    bits_to_signed_pm1,
    fold_bits,
    mask,
    popcount,
    reverse_bits,
)
from repro.utils.hashing import (
    index_hash,
    mix64,
    skew_f,
    skew_h,
    skew_hinv,
    tag_hash,
)
from repro.utils.rng import DeterministicRng, site_hash_outcome

__all__ = [
    "DeterministicRng",
    "bit_select",
    "bits_to_signed_pm1",
    "fold_bits",
    "index_hash",
    "mask",
    "mix64",
    "popcount",
    "reverse_bits",
    "site_hash_outcome",
    "skew_f",
    "skew_h",
    "skew_hinv",
    "tag_hash",
]
