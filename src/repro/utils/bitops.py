"""Bit-vector helpers used throughout the predictor zoo.

Histories (BHR/BOR contents) are plain Python integers interpreted as bit
vectors. Bit 0 is the **most recently inserted** outcome; higher bit
positions hold progressively older outcomes. All helpers follow this
convention.
"""

from __future__ import annotations


def mask(n_bits: int) -> int:
    """Return an ``n_bits``-wide all-ones mask (``0`` for non-positive)."""
    if n_bits <= 0:
        return 0
    return (1 << n_bits) - 1


def bit_select(value: int, position: int) -> int:
    """Return bit ``position`` of ``value`` as 0 or 1."""
    return (value >> position) & 1


def popcount(value: int) -> int:
    """Return the number of set bits in ``value`` (must be non-negative)."""
    if value < 0:
        raise ValueError("popcount is defined for non-negative values")
    return value.bit_count()


def fold_bits(value: int, width: int, out_width: int) -> int:
    """Fold a ``width``-bit value down to ``out_width`` bits by XOR.

    This is the standard history-folding operation used by TAGE-style
    predictors and by index hashes that need to compress a long history
    into a table index. Folding a value narrower than ``out_width`` simply
    masks it.
    """
    if out_width <= 0:
        return 0
    out_mask = (1 << out_width) - 1
    value &= (1 << width) - 1 if width > 0 else 0
    folded = 0
    while width > 0:
        folded ^= value & out_mask
        value >>= out_width
        width -= out_width
    return folded & out_mask


def reverse_bits(value: int, width: int) -> int:
    """Return ``value`` with its lowest ``width`` bits mirrored."""
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def bits_to_signed_pm1(value: int, width: int) -> list[int]:
    """Expand a bit vector into a ±1 list, index 0 = bit 0 (most recent).

    Set bits (taken) map to +1 and clear bits (not taken) map to -1, the
    encoding used by perceptron predictors.
    """
    return [1 if (value >> i) & 1 else -1 for i in range(width)]
