"""Deterministic random-number utilities.

Branch behaviours must be **pure functions of architectural state** so that
(a) wrong-path fetch never perturbs ground truth and (b) a run is exactly
reproducible from its seed. Two tools provide this:

* :class:`DeterministicRng` — a small, fast splitmix64-based generator with
  explicit state, used by the workload *generator* (structure of programs).
* :func:`site_hash_outcome` — a stateless hash of (seed, branch site,
  architectural execution count) used by biased-random branch *behaviours*,
  so the i-th architectural execution of a branch always resolves the same
  way regardless of simulator internals.
"""

from __future__ import annotations

from repro.utils.hashing import mix64

_TWO64 = float(1 << 64)


class DeterministicRng:
    """Seeded splitmix64 generator with a tiny, explicit API.

    ``random.Random`` would also work, but an explicit implementation keeps
    the stream stable across Python versions and documents exactly how much
    randomness the simulator consumes.
    """

    def __init__(self, seed: int) -> None:
        self._state = mix64(seed & ((1 << 64) - 1))

    def next_u64(self) -> int:
        """Return the next 64-bit value in the stream."""
        self._state = (self._state + 0x9E3779B97F4A7C15) & ((1 << 64) - 1)
        return mix64(self._state)

    def random(self) -> float:
        """Return a float uniform in [0, 1)."""
        return self.next_u64() / _TWO64

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniform in [low, high] (inclusive)."""
        if high < low:
            raise ValueError("empty range")
        span = high - low + 1
        return low + self.next_u64() % span

    def choice(self, items):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return items[self.randint(0, len(items) - 1)]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]

    def weighted_choice(self, items, weights):
        """Return an element of ``items`` with probability ∝ ``weights``."""
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        point = self.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if point < acc:
                return item
        return items[-1]

    def fork(self, label: int) -> "DeterministicRng":
        """Return an independent child stream derived from this seed."""
        return DeterministicRng(mix64(self._state ^ mix64(label)))


def site_hash_outcome(seed: int, site: int, occurrence: int, bias: float) -> bool:
    """Stateless Bernoulli draw for a branch site's i-th execution.

    Returns True (taken) with probability ``bias``. The draw depends only
    on (seed, site, occurrence), never on simulator traversal order, which
    keeps wrong-path fetch side-effect free.
    """
    word = mix64(mix64(seed ^ (site * 0x9E3779B97F4A7C15)) ^ occurrence)
    return (word / _TWO64) < bias
