"""Small statistics helpers shared by metrics and experiment reporting."""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence


def arithmetic_mean(values: Sequence[float]) -> float:
    """Return the arithmetic mean (0.0 for an empty sequence)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def geometric_mean(values: Sequence[float]) -> float:
    """Return the geometric mean of positive values (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Sequence[float]) -> float:
    """Return the harmonic mean of positive values (0.0 for empty input)."""
    values = list(values)
    if not values:
        return 0.0
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires strictly positive values")
    return len(values) / sum(1.0 / v for v in values)


def percent_reduction(baseline: float, improved: float) -> float:
    """Return the percent reduction from ``baseline`` to ``improved``.

    Positive values mean ``improved`` is lower (better, for mispredict
    rates). Returns 0.0 when the baseline is zero.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


def speedup_percent(baseline: float, improved: float) -> float:
    """Return the percent speedup of ``improved`` over ``baseline``."""
    if baseline == 0:
        return 0.0
    return 100.0 * (improved - baseline) / baseline


def ratio_per_kilo(count: int, denominator: int) -> float:
    """Return ``count`` per one thousand ``denominator`` units.

    This is the paper's misp/Kuops metric shape: mispredicts per 1000 uops.
    """
    if denominator <= 0:
        return 0.0
    return 1000.0 * count / denominator


def running_mean(values: Iterable[float]) -> list[float]:
    """Return the running arithmetic mean of a value stream."""
    out: list[float] = []
    total = 0.0
    for i, value in enumerate(values, start=1):
        total += value
        out.append(total / i)
    return out
