"""Index and tag hash functions.

The paper computes critic indices and tags with "different XOR functions of
the branch address and BOR value" (§4), and 2Bc-gskew uses the skewing
functions of Seznec & Michaud's e-gskew. Both families live here.
"""

from __future__ import annotations

from repro.utils.bitops import mask

_GOLDEN64 = 0x9E3779B97F4A7C15


def mix64(value: int) -> int:
    """Finalize-style 64-bit integer mix (splitmix64 finalizer).

    Used where the simulator needs a cheap, high-quality deterministic
    scrambling of an integer key (e.g. per-site RNG streams). Not meant to
    model hardware.
    """
    value = (value + _GOLDEN64) & mask(64)
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask(64)
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & mask(64)
    return value ^ (value >> 31)


def index_hash(pc: int, history: int, index_bits: int, history_bits: int) -> int:
    """Hardware-style index: PC XOR folded history, ``index_bits`` wide.

    The history is folded (rather than truncated) when it is wider than the
    index so that old bits still participate, mirroring gshare-family
    indexing with long histories.
    """
    from repro.utils.bitops import fold_bits

    folded = fold_bits(history, history_bits, index_bits)
    return ((pc >> 2) ^ folded) & mask(index_bits)


def tag_hash(pc: int, history: int, tag_bits: int, history_bits: int) -> int:
    """Tag hash decorrelated from :func:`index_hash`.

    Uses a different alignment of both PC and history bits so that two
    (PC, history) pairs that collide in the index rarely also collide in
    the tag — the property the paper's filter relies on (§4).
    """
    from repro.utils.bitops import fold_bits

    folded = fold_bits(history, history_bits, tag_bits)
    rotated = ((history >> 1) | ((history & 1) << (history_bits - 1))) if history_bits > 0 else 0
    folded2 = fold_bits(rotated, history_bits, tag_bits)
    return ((pc >> 5) ^ (pc >> (5 + tag_bits)) ^ folded ^ (folded2 << 1)) & mask(tag_bits)


# --- e-gskew skewing functions (Seznec & Michaud, PI-1229) ----------------
#
# The skewing functions are built from H and H^-1, two simple bijections on
# n-bit values. Bank k of an e-gskew predictor is indexed with a different
# composition so that two addresses colliding in one bank are guaranteed to
# not collide in the others.


def skew_h(value: int, n_bits: int) -> int:
    """The H bijection: one-bit rotation with feedback on the split bit."""
    if n_bits <= 1:
        return value & mask(n_bits)
    msb = (value >> (n_bits - 1)) & 1
    second = (value >> (n_bits - 2)) & 1
    out = ((value << 1) & mask(n_bits)) | (msb ^ second)
    return out


def skew_hinv(value: int, n_bits: int) -> int:
    """Inverse of :func:`skew_h`."""
    if n_bits <= 1:
        return value & mask(n_bits)
    lsb = value & 1
    msb = (value >> (n_bits - 1)) & 1
    out = (value >> 1) | ((lsb ^ msb) << (n_bits - 1))
    return out


def skew_f(bank: int, v1: int, v2: int, n_bits: int) -> int:
    """e-gskew skewing function for ``bank`` ∈ {0, 1, 2}.

    ``v1``/``v2`` are the two address components being mixed (for a branch
    predictor: a PC slice and a history slice). Each bank composes H and
    H^-1 differently, per the original e-gskew construction.
    """
    v1 &= mask(n_bits)
    v2 &= mask(n_bits)
    if bank == 0:
        return skew_h(v1, n_bits) ^ skew_hinv(v2, n_bits) ^ v2
    if bank == 1:
        return skew_h(v1, n_bits) ^ skew_hinv(v2, n_bits) ^ v1
    if bank == 2:
        return skew_hinv(v1, n_bits) ^ skew_h(v2, n_bits) ^ v2
    raise ValueError(f"e-gskew defines banks 0..2, got {bank}")
