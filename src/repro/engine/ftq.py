"""Fetch target queue — decouples prediction from fetch (§5, Fig. 4).

The hybrid inserts predictions at the tail; the instruction cache consumes
from the head. Entries are *criticised* in order as the critic catches up;
a disagreement flushes only the **uncriticised** tail (the cache never saw
those predictions, so the flush is free when the queue is deep enough).

Used by the timing model (`repro.pipeline`); the functional accuracy
driver does its own in-order bookkeeping.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class FtqEntry:
    """One prediction living in the FTQ."""

    pc: int
    prediction: bool
    uops: int
    seq: int
    criticised: bool = False
    #: Attached payload (the driver's in-flight handle).
    payload: object | None = None


@dataclass
class FtqStats:
    inserts: int = 0
    consumed: int = 0
    tail_flushes: int = 0
    entries_flushed: int = 0
    empty_on_demand: int = 0


class FetchTargetQueue:
    """Bounded FIFO of predictions with criticise/flush-tail semantics."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("FTQ capacity must be positive")
        self.capacity = capacity
        self._queue: deque[FtqEntry] = deque()
        self.stats = FtqStats()

    # -- producer side ---------------------------------------------------------

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def insert(self, entry: FtqEntry) -> None:
        if self.full:
            raise RuntimeError("FTQ overflow: check full before inserting")
        self._queue.append(entry)
        self.stats.inserts += 1

    # -- critic side -------------------------------------------------------------

    def oldest_uncriticised(self) -> FtqEntry | None:
        for entry in self._queue:
            if not entry.criticised:
                return entry
        return None

    def mark_criticised(self, seq: int) -> None:
        for entry in self._queue:
            if entry.seq == seq:
                entry.criticised = True
                return
        raise KeyError(f"no FTQ entry with seq {seq}")

    def flush_after(self, seq: int) -> list[FtqEntry]:
        """Drop every entry younger than ``seq`` (critic disagreement).

        Only uncriticised entries can be younger than the entry being
        criticised (critiques are in order), so this matches the paper's
        "FTQ entries holding uncriticized predictions are flushed".
        """
        kept: deque[FtqEntry] = deque()
        dropped: list[FtqEntry] = []
        for entry in self._queue:
            if entry.seq > seq:
                dropped.append(entry)
            else:
                kept.append(entry)
        self._queue = kept
        if dropped:
            self.stats.tail_flushes += 1
            self.stats.entries_flushed += len(dropped)
        return dropped

    # -- consumer side -------------------------------------------------------------

    def consume(self) -> FtqEntry | None:
        """Pop the head entry (cache fetch); None when empty."""
        if not self._queue:
            self.stats.empty_on_demand += 1
            return None
        self.stats.consumed += 1
        return self._queue.popleft()

    def flush_all(self) -> int:
        """Full flush (resolved mispredict); returns entries dropped."""
        count = len(self._queue)
        self._queue.clear()
        return count

    def __len__(self) -> int:
        return len(self._queue)

    def __iter__(self):
        return iter(self._queue)

    @property
    def occupancy(self) -> float:
        return len(self._queue) / self.capacity
