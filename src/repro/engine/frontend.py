"""Speculative fetch walker — the front end's view of the program.

The walker traverses the CFG following **predictions**, not outcomes; it
has no access to behaviour models or architectural state. When the
predictor is wrong the walker simply keeps going down the wrong path,
producing the wrong-path prophet predictions the critic's BOR needs
(paper §6 insists these must come from real wrong-path traversal, not a
trace).

Checkpoint/restore is tuple-based: the driver snapshots the walker at
every conditional branch so a critic disagreement or a resolved
mispredict can rewind fetch to that branch and steer down the other edge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.ras import ReturnAddressStack
from repro.workloads.program import BlockKind, Program


@dataclass(frozen=True, slots=True)
class WalkerSnapshot:
    """Walker state captured at a conditional branch (before advancing)."""

    block_id: int
    ras: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class FetchedBranch:
    """A conditional branch the walker has fetched (not yet advanced past)."""

    pc: int
    block_id: int
    #: uops fetched since the previous conditional branch.
    uops: int
    taken_target: int
    fallthrough: int


class SpeculativeWalker:
    """Prediction-driven CFG traverser with checkpoint/rewind."""

    def __init__(self, program: Program, ras_capacity: int = 64) -> None:
        self.program = program
        self._block = program.block(program.entry)
        self._ras = ReturnAddressStack(ras_capacity)
        #: Total uops fetched, correct and wrong path (paper §1's
        #: "uops fetched along both correct and incorrect paths").
        self.fetched_uops = 0
        self._at_branch = False

    def next_branch(self) -> FetchedBranch:
        """Advance through non-conditional control flow to the next
        conditional branch and stop *on* it."""
        if self._at_branch:
            raise RuntimeError("already positioned at a branch; call advance() first")
        uops = 0
        while True:
            block = self._block
            uops += block.uops
            self.fetched_uops += block.uops
            if block.kind is BlockKind.COND:
                self._at_branch = True
                assert block.taken_target is not None and block.fallthrough is not None
                return FetchedBranch(
                    pc=block.pc,
                    block_id=block.block_id,
                    uops=uops,
                    taken_target=block.taken_target,
                    fallthrough=block.fallthrough,
                )
            if block.kind is BlockKind.JUMP:
                assert block.taken_target is not None
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.CALL:
                assert block.fallthrough is not None and block.taken_target is not None
                self._ras.push(block.fallthrough)
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.RETURN:
                target = self._ras.pop()
                if target is None:
                    # Wrong-path underflow: any defined target will do.
                    target = self.program.entry
                self._block = self.program.block(target)

    def advance(self, taken: bool) -> None:
        """Step past the current conditional branch in direction ``taken``."""
        if not self._at_branch:
            raise RuntimeError("not positioned at a branch; call next_branch() first")
        block = self._block
        target = block.taken_target if taken else block.fallthrough
        assert target is not None
        self._block = self.program.block(target)
        self._at_branch = False

    def snapshot(self) -> WalkerSnapshot:
        """Capture state at the current branch (call before advance)."""
        if not self._at_branch:
            raise RuntimeError("snapshots are taken at conditional branches")
        return WalkerSnapshot(block_id=self._block.block_id, ras=self._ras.snapshot())

    def restore(self, snap: WalkerSnapshot) -> None:
        """Rewind to a snapshot: positioned at that branch, ready to advance."""
        self._block = self.program.block(snap.block_id)
        self._ras.restore(snap.ras)
        self._at_branch = True
