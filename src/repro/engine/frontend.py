"""Speculative fetch walker — the front end's view of the program.

The walker traverses the CFG following **predictions**, not outcomes; it
has no access to behaviour models or architectural state. When the
predictor is wrong the walker simply keeps going down the wrong path,
producing the wrong-path prophet predictions the critic's BOR needs
(paper §6 insists these must come from real wrong-path traversal, not a
trace).

Traversal runs over the program's precompiled transition table
(:meth:`repro.workloads.program.Program.compiled`): each step replays a
whole straight-line run — accumulated uops plus a scripted burst of RAS
pushes/pops — and lands either on the next conditional branch or on a
dynamic return target, so cost scales with call/return traffic instead
of block count.

Checkpoint/restore is flat state: a branch position is (block id, RAS
tuple), where the RAS tuple is memoised per mutation so the per-fetch
snapshot the driver takes allocates nothing on call-free stretches. The
driver stores the two fields straight into its pooled in-flight handles
via :attr:`block_id`/:meth:`ras_state`; :meth:`snapshot`/:meth:`restore`
wrap the same state for callers that want one object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.ras import ReturnAddressStack
from repro.workloads.program import Program


@dataclass(frozen=True, slots=True)
class WalkerSnapshot:
    """Walker state captured at a conditional branch (before advancing)."""

    block_id: int
    ras: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class FetchedBranch:
    """A conditional branch the walker has fetched (not yet advanced past)."""

    pc: int
    block_id: int
    #: uops fetched since the previous conditional branch.
    uops: int
    taken_target: int
    fallthrough: int


class SpeculativeWalker:
    """Prediction-driven CFG traverser with checkpoint/rewind."""

    def __init__(self, program: Program, ras_capacity: int = 64) -> None:
        self.program = program
        # The table's static call/return pairing must respect this
        # walker's RAS capacity (see CompiledSegment).
        self._compiled = program.compiled(pair_limit=ras_capacity)
        self._segments = self._compiled._segments  # id -> CompiledSegment
        self._entry = program.entry
        #: Current position: the block about to be traversed, or — when
        #: positioned at a branch — the conditional block itself.
        self.block_id = program.entry
        self._branch = None  # BasicBlock of the current conditional
        #: The walker's RAS; the driver snapshots it via ras_state().
        self.ras = self._ras = ReturnAddressStack(ras_capacity)
        #: Total uops fetched, correct and wrong path (paper §1's
        #: "uops fetched along both correct and incorrect paths").
        self.fetched_uops = 0
        #: uops of the most recent next_branch() run (segment-accumulated).
        self.last_uops = 0
        self._at_branch = False

    # -- hot path ----------------------------------------------------------

    def next_branch_block(self):
        """Advance to the next conditional branch; return its BasicBlock.

        The flat-state twin of :meth:`next_branch`: identical traversal,
        no ``FetchedBranch`` construction. The driver reads pc/targets
        off the returned block and steps past it with :meth:`advance`
        (or by assigning :attr:`block_id`/:attr:`_at_branch` inline).
        """
        if self._at_branch:
            raise RuntimeError("already positioned at a branch; call advance() first")
        segments = self._segments
        ras = self._ras
        block_id = self.block_id
        uops = 0
        while True:
            seg = segments.get(block_id)
            if seg is None:
                seg = self._compiled.segment(block_id)
            uops += seg.uops
            if seg.ras_ops:
                ras.apply_ops(seg.ras_ops)
            branch = seg.branch
            if branch is not None:
                self.block_id = branch.block_id
                self._branch = branch
                self._at_branch = True
                self.fetched_uops += uops
                self.last_uops = uops
                return branch
            next_block = seg.next_block
            if next_block is not None:
                # Depth-capped split: continue straight into the callee.
                block_id = next_block
                continue
            # Dynamic return: continue from the live RAS (wrong-path
            # underflow falls back to the entry — any defined target).
            target = ras.pop()
            block_id = self._entry if target is None else target

    def next_branch_pc(self) -> int:
        """Advance to the next conditional branch; return its pc."""
        return self.next_branch_block().pc

    def advance(self, taken: bool) -> None:
        """Step past the current conditional branch in direction ``taken``."""
        if not self._at_branch:
            raise RuntimeError("not positioned at a branch; call next_branch() first")
        branch = self._branch
        self.block_id = branch.taken_target if taken else branch.fallthrough
        self._at_branch = False

    def ras_state(self) -> tuple[int, ...]:
        """The RAS contents as an immutable tuple (memoised per version)."""
        return self._ras.snapshot()

    def restore_state(self, block_id: int, ras: tuple[int, ...]) -> None:
        """Rewind to flat state: positioned at that branch, ready to advance."""
        self.block_id = block_id
        self._branch = self.program.block(block_id)
        self._ras.restore(ras)
        self._at_branch = True

    # -- object-shaped API (timing model, tests) ---------------------------

    def next_branch(self) -> FetchedBranch:
        """Advance through non-conditional control flow to the next
        conditional branch and stop *on* it."""
        pc = self.next_branch_pc()
        branch = self._branch
        return FetchedBranch(
            pc=pc,
            block_id=branch.block_id,
            uops=self.last_uops,
            taken_target=branch.taken_target,
            fallthrough=branch.fallthrough,
        )

    def snapshot(self) -> WalkerSnapshot:
        """Capture state at the current branch (call before advance)."""
        if not self._at_branch:
            raise RuntimeError("snapshots are taken at conditional branches")
        return WalkerSnapshot(block_id=self.block_id, ras=self._ras.snapshot())

    def restore(self, snap: WalkerSnapshot) -> None:
        """Rewind to a snapshot: positioned at that branch, ready to advance."""
        self.restore_state(snap.block_id, snap.ras)
