"""Branch target buffer — identifies branches to the front end (§5).

Table 2 gives 4096 entries, 4-way. The hybrid predicts a branch's
direction only when the BTB recognises it; on a miss the front end falls
through (implicit not-taken) and the entry is allocated when the branch
commits, the allocation policy the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.bitops import mask


@dataclass
class BtbStats:
    lookups: int = 0
    hits: int = 0
    allocations: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class BranchTargetBuffer:
    """Set-associative branch identification cache (tags only).

    Targets come from the CFG in this simulator, so entries store tags
    only; what matters behaviourally is hit/miss and LRU turnover.
    """

    def __init__(self, entries: int = 4096, ways: int = 4) -> None:
        if entries % ways:
            raise ValueError("entries must divide evenly into ways")
        self.entries = entries
        self.ways = ways
        self.sets = entries // ways
        if self.sets & (self.sets - 1):
            raise ValueError("sets must be a power of two")
        self._set_bits = self.sets.bit_length() - 1
        self._set_mask = mask(self._set_bits)
        # Per set: list of tags, most recently used last.
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]
        self.stats = BtbStats()

    def _index_tag(self, pc: int) -> tuple[int, int]:
        word = pc >> 2
        return word & self._set_mask, word >> self._set_bits

    def lookup(self, pc: int) -> bool:
        """True when the branch is recognised; refreshes LRU on hit."""
        stats = self.stats
        stats.lookups += 1
        word = pc >> 2
        tag = word >> self._set_bits
        entry_list = self._sets[word & self._set_mask]
        if tag in entry_list:
            if entry_list[-1] != tag:
                entry_list.remove(tag)
                entry_list.append(tag)
            stats.hits += 1
            return True
        return False

    def allocate(self, pc: int) -> None:
        """Install the branch (commit-time allocation), evicting LRU."""
        word = pc >> 2
        tag = word >> self._set_bits
        entry_list = self._sets[word & self._set_mask]
        if tag in entry_list:
            entry_list.remove(tag)
        elif len(entry_list) >= self.ways:
            entry_list.pop(0)
        else:
            self.stats.allocations += 1
        entry_list.append(tag)

    def occupancy(self) -> float:
        valid = sum(len(s) for s in self._sets)
        return valid / self.entries

    def reset(self) -> None:
        self._sets = [[] for _ in range(self.sets)]
        self.stats = BtbStats()
