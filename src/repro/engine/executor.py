"""Architectural executor — the ground truth.

Walks the program CFG following **actual branch outcomes**, resolving each
conditional branch's behaviour model exactly once, in program order. The
committed path, committed uop counts, and architectural context all live
here. The speculative front end never touches this object; the driver
consumes resolved branches strictly in order and checks that the front
end's committed stream matches (a strong cross-validation of the whole
engine).

Like the walker, the executor traverses the precompiled transition table:
per straight-line run it advances the context clock by the segment's
block count, replays the scripted RAS/caller-stack traffic, and records
watched-block executions from the segment's precomputed offsets — all
observable context state evolves exactly as the block-by-block walk did.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.ras import ReturnAddressStack
from repro.workloads.program import Program

_HISTORY_MASK = 0xFFFFFFFFFFFFFFFF


@dataclass(frozen=True, slots=True)
class ResolvedBranch:
    """One architecturally resolved conditional branch."""

    pc: int
    taken: bool
    block_id: int
    #: uops committed since the previous resolved branch (this block and
    #: any straight-line/call/return blocks before it).
    uops: int
    #: Target block the committed path continues at.
    next_block: int


class ArchitecturalExecutor:
    """Resolves the program's branch stream in committed order."""

    def __init__(self, program: Program, ras_capacity: int = 64) -> None:
        self.program = program
        self.ctx = program.make_context()
        # The table's static call/return pairing must respect this
        # executor's RAS capacity (see CompiledSegment).
        self._compiled = program.compiled(pair_limit=ras_capacity)
        self._segments = self._compiled._segments  # id -> CompiledSegment
        self._entry = program.entry
        self._block_id = program.entry
        self._last_branch = None  # BasicBlock of the latest resolved COND
        self._last_target = program.entry
        self._ras = ReturnAddressStack(ras_capacity)
        self.committed_uops = 0
        self.resolved_branches = 0

    def resolve_next(self) -> tuple[int, bool, int]:
        """Advance to the next conditional branch, resolve it, step past
        it; return ``(pc, taken, uops)``.

        The flat twin of :meth:`next_branch` — same traversal and context
        bookkeeping, no ``ResolvedBranch`` construction.
        """
        ctx = self.ctx
        segments = self._segments
        block_id = self._block_id
        uops = 0
        step = ctx.step
        while True:
            seg = segments.get(block_id)
            if seg is None:
                seg = self._compiled.segment(block_id)
            uops += seg.uops
            if seg.watched:
                last_block_step = ctx.last_block_step
                for offset, watched_id in seg.watched:
                    last_block_step[watched_id] = step + offset
            step += seg.steps
            if seg.ras_ops:
                self._ras.apply_ops(seg.ras_ops)
                caller_stack = ctx.caller_stack
                for op in seg.call_ops:
                    if op >= 0:
                        caller_stack.append(op)
                    elif caller_stack:
                        caller_stack.pop()
            branch = seg.branch
            if branch is not None:
                ctx.step = step
                pc = branch.pc
                taken = bool(branch.behavior.resolve(pc, ctx))
                # Inlined ctx.record_outcome (hot path).
                occurrences = ctx.occurrences
                occurrences[pc] = occurrences.get(pc, 0) + 1
                ctx.last_outcome[pc] = taken
                ctx.global_history = (
                    (ctx.global_history << 1) | taken
                ) & _HISTORY_MASK
                target = branch.taken_target if taken else branch.fallthrough
                self._block_id = target
                self._last_branch = branch
                self._last_target = target
                self.committed_uops += uops
                self.resolved_branches += 1
                return pc, taken, uops
            next_block = seg.next_block
            if next_block is not None:
                # Depth-capped split: continue straight into the callee.
                block_id = next_block
                continue
            # Dynamic return: pop the live RAS and caller stack.
            target = self._ras.pop()
            if ctx.caller_stack:
                ctx.caller_stack.pop()
            block_id = self._entry if target is None else target

    def next_branch(self) -> ResolvedBranch:
        """Advance along the committed path to the next conditional branch,
        resolve it, and step past it."""
        pc, taken, uops = self.resolve_next()
        branch = self._last_branch
        return ResolvedBranch(
            pc=pc,
            taken=taken,
            block_id=branch.block_id,
            uops=uops,
            next_block=self._last_target,
        )

    def run_branches(self, count: int) -> list[ResolvedBranch]:
        """Resolve the next ``count`` branches (convenience for tests)."""
        return [self.next_branch() for _ in range(count)]
