"""Architectural executor — the ground truth.

Walks the program CFG following **actual branch outcomes**, resolving each
conditional branch's behaviour model exactly once, in program order. The
committed path, committed uop counts, and architectural context all live
here. The speculative front end never touches this object; the driver
consumes resolved branches strictly in order and checks that the front
end's committed stream matches (a strong cross-validation of the whole
engine).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.ras import ReturnAddressStack
from repro.workloads.program import BlockKind, Program


@dataclass(frozen=True, slots=True)
class ResolvedBranch:
    """One architecturally resolved conditional branch."""

    pc: int
    taken: bool
    block_id: int
    #: uops committed since the previous resolved branch (this block and
    #: any straight-line/call/return blocks before it).
    uops: int
    #: Target block the committed path continues at.
    next_block: int


class ArchitecturalExecutor:
    """Resolves the program's branch stream in committed order."""

    def __init__(self, program: Program, ras_capacity: int = 64) -> None:
        self.program = program
        self.ctx = program.make_context()
        self._block = program.block(program.entry)
        self._ras = ReturnAddressStack(ras_capacity)
        self.committed_uops = 0
        self.resolved_branches = 0

    def next_branch(self) -> ResolvedBranch:
        """Advance along the committed path to the next conditional branch,
        resolve it, and step past it."""
        uops = 0
        while True:
            block = self._block
            self.ctx.record_block(block.block_id)
            uops += block.uops
            self.committed_uops += block.uops
            if block.kind is BlockKind.COND:
                assert block.behavior is not None
                taken = bool(block.behavior.resolve(block.pc, self.ctx))
                self.ctx.record_outcome(block.pc, taken)
                target = block.taken_target if taken else block.fallthrough
                assert target is not None
                self._block = self.program.block(target)
                self.resolved_branches += 1
                return ResolvedBranch(
                    pc=block.pc,
                    taken=taken,
                    block_id=block.block_id,
                    uops=uops,
                    next_block=target,
                )
            if block.kind is BlockKind.JUMP:
                assert block.taken_target is not None
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.CALL:
                assert block.fallthrough is not None and block.taken_target is not None
                self._ras.push(block.fallthrough)
                self.ctx.push_caller(block.block_id)
                self._block = self.program.block(block.taken_target)
            elif block.kind is BlockKind.RETURN:
                target = self._ras.pop()
                self.ctx.pop_caller()
                if target is None:
                    target = self.program.entry
                self._block = self.program.block(target)

    def run_branches(self, count: int) -> list[ResolvedBranch]:
        """Resolve the next ``count`` branches (convenience for tests)."""
        return [self.next_branch() for _ in range(count)]
