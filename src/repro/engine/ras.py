"""Return address stack with snapshot/restore.

Both traversers need call/return handling; the speculative walker also
needs cheap checkpointing (tuple snapshots) so wrong-path excursions can
be unwound. A fixed capacity with overflow-drops-oldest mirrors hardware;
underflow returns None and the caller falls back to the program entry —
a well-defined (if wrong) target, which is all a wrong path requires.

Snapshots are memoised by a mutation version: the driver snapshots the
walker at **every** fetched branch, but the stack only changes on the
(much rarer) call/return blocks, so the same tuple is handed out until
the next push/pop. Restoring installs the restored tuple as the cached
snapshot, so the rewind-then-refetch pattern allocates nothing either.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Bounded stack of return targets (block ids)."""

    __slots__ = ("_snap", "_snap_version", "_stack", "_version", "capacity",
                 "overflows", "underflows")

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("RAS capacity must be positive")
        self.capacity = capacity
        self._stack: list[int] = []
        self.overflows = 0
        self.underflows = 0
        self._version = 0
        self._snap: tuple[int, ...] = ()
        self._snap_version = 0

    def push(self, block_id: int) -> None:
        """Push a return target, dropping the oldest entry when full."""
        stack = self._stack
        if len(stack) >= self.capacity:
            del stack[0]
            self.overflows += 1
        stack.append(block_id)
        self._version += 1

    def pop(self) -> int | None:
        """Pop the most recent return target; None when empty."""
        stack = self._stack
        if not stack:
            self.underflows += 1
            return None
        self._version += 1
        return stack.pop()

    def apply_ops(self, ops: tuple[int, ...]) -> None:
        """Replay a precompiled op script: ``op >= 0`` pushes that block
        id, ``op < 0`` pops (and discards) the top entry.

        Used by the compiled-CFG traversers to apply a whole straight-line
        run's worth of call/return traffic in one call. Script pops are
        always matched by an earlier script push (the compiler ends a
        segment at any return it cannot pair), so they never underflow.
        """
        stack = self._stack
        capacity = self.capacity
        for op in ops:
            if op >= 0:
                if len(stack) >= capacity:
                    del stack[0]
                    self.overflows += 1
                stack.append(op)
            else:
                stack.pop()
        self._version += 1

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the stack contents (memoised per version)."""
        if self._snap_version != self._version:
            self._snap = tuple(self._stack)
            self._snap_version = self._version
        return self._snap

    def restore(self, snapshot: tuple[int, ...]) -> None:
        """Reinstate a previously captured snapshot."""
        self._stack[:] = snapshot
        self._version += 1
        self._snap = snapshot
        self._snap_version = self._version

    def clear(self) -> None:
        self._stack.clear()
        self._version += 1
