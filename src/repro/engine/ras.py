"""Return address stack with snapshot/restore.

Both traversers need call/return handling; the speculative walker also
needs cheap checkpointing (tuple snapshots) so wrong-path excursions can
be unwound. A fixed capacity with overflow-drops-oldest mirrors hardware;
underflow returns None and the caller falls back to the program entry —
a well-defined (if wrong) target, which is all a wrong path requires.
"""

from __future__ import annotations


class ReturnAddressStack:
    """Bounded stack of return targets (block ids)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("RAS capacity must be positive")
        self.capacity = capacity
        self._stack: list[int] = []
        self.overflows = 0
        self.underflows = 0

    def push(self, block_id: int) -> None:
        """Push a return target, dropping the oldest entry when full."""
        if len(self._stack) >= self.capacity:
            self._stack.pop(0)
            self.overflows += 1
        self._stack.append(block_id)

    def pop(self) -> int | None:
        """Pop the most recent return target; None when empty."""
        if not self._stack:
            self.underflows += 1
            return None
        return self._stack.pop()

    def peek(self) -> int | None:
        return self._stack[-1] if self._stack else None

    def __len__(self) -> int:
        return len(self._stack)

    def snapshot(self) -> tuple[int, ...]:
        """Immutable copy of the stack contents."""
        return tuple(self._stack)

    def restore(self, snapshot: tuple[int, ...]) -> None:
        """Reinstate a previously captured snapshot."""
        self._stack = list(snapshot)

    def clear(self) -> None:
        self._stack.clear()
