"""Execution engine: ground-truth executor and speculative fetch walker.

The two traversers share the program's CFG but differ in what drives them:

* :class:`~repro.engine.executor.ArchitecturalExecutor` follows **actual
  outcomes** (resolving behaviour models) — it defines the committed path
  and is the single source of truth.
* :class:`~repro.engine.frontend.SpeculativeWalker` follows **predictions**
  — it goes down wrong paths exactly as a real front end does, which is
  what generates genuine (non-oracle) future bits for the critic (§6).

Support hardware: :class:`~repro.engine.btb.BranchTargetBuffer` (4096×4,
Table 2), :class:`~repro.engine.ras.ReturnAddressStack`, and
:class:`~repro.engine.ftq.FetchTargetQueue` (timing model).
"""

from repro.engine.btb import BranchTargetBuffer
from repro.engine.executor import ArchitecturalExecutor, ResolvedBranch
from repro.engine.frontend import FetchedBranch, SpeculativeWalker, WalkerSnapshot
from repro.engine.ftq import FetchTargetQueue, FtqEntry
from repro.engine.ras import ReturnAddressStack

__all__ = [
    "ArchitecturalExecutor",
    "BranchTargetBuffer",
    "FetchTargetQueue",
    "FetchedBranch",
    "FtqEntry",
    "ResolvedBranch",
    "ReturnAddressStack",
    "SpeculativeWalker",
    "WalkerSnapshot",
]
