"""Functional simulation: wrong-path-accurate accuracy measurement.

:func:`~repro.sim.driver.simulate` runs a prediction system over a
synthetic program with genuine wrong-path fetch, checkpoint recovery and
commit-order training, and returns a :class:`~repro.sim.metrics.RunStats`
with the paper's metrics (misp/Kuops, critique census, filter shares,
flush distance).
"""

from repro.sim.driver import SimulationConfig, SimulationDesyncError, simulate
from repro.sim.metrics import RunStats
from repro.sim.results import format_table, render_series
from repro.sim.sweep import SweepResult, run_sweep

__all__ = [
    "RunStats",
    "SimulationConfig",
    "SimulationDesyncError",
    "SweepResult",
    "format_table",
    "render_series",
    "run_sweep",
    "simulate",
]
