"""Functional simulation: wrong-path-accurate accuracy measurement.

:func:`~repro.sim.driver.simulate` runs a prediction system over a
synthetic program with genuine wrong-path fetch, checkpoint recovery and
commit-order training, and returns a :class:`~repro.sim.metrics.RunStats`
with the paper's metrics (misp/Kuops, critique census, filter shares,
flush distance).

Sweeps over (system × benchmark) grids route through the execution
engine (:mod:`repro.sim.execution`): cells described as
:class:`~repro.sim.specs.SweepCell` data run serially or across a
process pool, with an optional content-addressed on-disk result cache
(:mod:`repro.sim.cache`) — all three paths bit-for-bit identical.
"""

from repro.sim.cache import ResultCache
from repro.sim.driver import (
    SimulationConfig,
    SimulationDesyncError,
    oracle_replay,
    simulate,
)
from repro.sim.execution import (
    CellFailure,
    FailurePolicy,
    ProcessPoolExecutor,
    SerialExecutor,
    SweepEngine,
    get_default_engine,
    make_engine,
    run_cell,
    set_default_engine,
    use_engine,
)
from repro.sim.metrics import RunStats
from repro.sim.results import format_table, render_series
from repro.sim.specs import (
    SPEC_FORMAT_VERSION,
    PredictorSpec,
    ProgramSpec,
    SweepCell,
    SystemSpec,
)
from repro.sim.sweep import SweepResult, run_sweep

__all__ = [
    "CellFailure",
    "FailurePolicy",
    "PredictorSpec",
    "ProcessPoolExecutor",
    "ProgramSpec",
    "ResultCache",
    "RunStats",
    "SPEC_FORMAT_VERSION",
    "SerialExecutor",
    "SimulationConfig",
    "SimulationDesyncError",
    "SweepCell",
    "SweepEngine",
    "SweepResult",
    "SystemSpec",
    "format_table",
    "get_default_engine",
    "make_engine",
    "oracle_replay",
    "render_series",
    "run_cell",
    "run_sweep",
    "set_default_engine",
    "simulate",
    "use_engine",
]
