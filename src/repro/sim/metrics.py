"""Run statistics and the paper's metrics.

The paper reports mispredicts per thousand uops (misp/Kuops), mispredict
percentages, distance between pipeline flushes in uops (418 → 680 for the
headline configuration), the critique census (§7.3) and filter shares
(Table 4). :class:`RunStats` accumulates all of them over the measured
window of a run (post-warmup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.critiques import CritiqueCensus, CritiqueKind


@dataclass
class RunStats:
    """Counters accumulated over the measurement window of one run."""

    benchmark: str = ""
    system: str = ""

    #: Committed conditional branches measured.
    branches: int = 0
    #: Committed uops in the measurement window.
    committed_uops: int = 0
    #: Final-prediction mispredicts (pipeline flushes).
    mispredicts: int = 0
    #: Prophet-prediction mispredicts (before any critic override).
    prophet_mispredicts: int = 0
    #: Branches with no dynamic prediction (BTB miss).
    static_branches: int = 0
    #: Critiques generated with fewer than the configured future bits.
    forced_critiques: int = 0
    #: FTQ-confined flushes from critic disagreement.
    critic_redirects: int = 0
    #: Total uops fetched by the front end (correct + wrong path).
    fetched_uops: int = 0
    #: Taken branches (sanity/telemetry).
    taken_branches: int = 0

    census: CritiqueCensus = field(default_factory=CritiqueCensus)

    #: Optional per-site attribution (enabled via SimulationConfig):
    #: pc -> [branches, prophet_mispredicts, final_mispredicts,
    #:        overrides_won, overrides_lost].
    per_site: dict[int, list[int]] | None = None

    # -- the paper's metrics ---------------------------------------------------

    @property
    def misp_per_kuops(self) -> float:
        """Mispredicts per thousand committed uops (Figures 5-7)."""
        if self.committed_uops == 0:
            return 0.0
        return 1000.0 * self.mispredicts / self.committed_uops

    @property
    def prophet_misp_per_kuops(self) -> float:
        if self.committed_uops == 0:
            return 0.0
        return 1000.0 * self.prophet_mispredicts / self.committed_uops

    @property
    def mispredict_rate(self) -> float:
        """Fraction of branches mispredicted (gcc headline: 3.11% → 1.23%)."""
        if self.branches == 0:
            return 0.0
        return self.mispredicts / self.branches

    @property
    def prophet_mispredict_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.prophet_mispredicts / self.branches

    @property
    def accuracy(self) -> float:
        return 1.0 - self.mispredict_rate

    @property
    def uops_per_flush(self) -> float:
        """Distance between pipeline flushes (headline: 418 → 680 uops)."""
        if self.mispredicts == 0:
            return float("inf")
        return self.committed_uops / self.mispredicts

    @property
    def wrong_path_uops(self) -> int:
        """Fetched-but-not-committed uops (approximate: end-of-run
        in-flight uops count as wrong path)."""
        return max(0, self.fetched_uops - self.committed_uops)

    @property
    def taken_rate(self) -> float:
        if self.branches == 0:
            return 0.0
        return self.taken_branches / self.branches

    @property
    def filtered_fraction(self) -> float:
        """Share of branches with no explicit critique (Table 4's "% none")."""
        if self.census.total == 0:
            return 0.0
        return self.census.none_total / self.census.total

    def filtered_fraction_of(self, kind: CritiqueKind) -> float:
        """Share of branches in one census class (Table 4 rows)."""
        return self.census.fraction(kind)

    # -- bookkeeping --------------------------------------------------------------

    def merge(self, other: "RunStats") -> None:
        """Accumulate another run (used for suite averages)."""
        self.branches += other.branches
        self.committed_uops += other.committed_uops
        self.mispredicts += other.mispredicts
        self.prophet_mispredicts += other.prophet_mispredicts
        self.static_branches += other.static_branches
        self.forced_critiques += other.forced_critiques
        self.critic_redirects += other.critic_redirects
        self.fetched_uops += other.fetched_uops
        self.taken_branches += other.taken_branches
        self.census.merge(other.census)
        if other.per_site is not None:
            if self.per_site is None:
                # Copy rows, never alias: the merged stats must not share
                # mutable row lists with the contributing run.
                self.per_site = {pc: list(row) for pc, row in other.per_site.items()}
            else:
                per_site = self.per_site
                for pc, row in other.per_site.items():
                    mine = per_site.get(pc)
                    if mine is None:
                        per_site[pc] = list(row)
                    else:
                        for i, value in enumerate(row):
                            mine[i] += value

    def record_site(self, pc: int, prophet_misp: bool, final_misp: bool) -> None:
        """Accumulate one branch into the per-site attribution table."""
        if self.per_site is None:
            self.per_site = {}
        row = self.per_site.setdefault(pc, [0, 0, 0, 0, 0])
        row[0] += 1
        row[1] += int(prophet_misp)
        row[2] += int(final_misp)
        row[3] += int(prophet_misp and not final_misp)
        row[4] += int(final_misp and not prophet_misp)

    def summary(self) -> dict[str, float]:
        """Flat snapshot for tables and EXPERIMENTS.md."""
        return {
            "branches": self.branches,
            "committed_uops": self.committed_uops,
            "mispredicts": self.mispredicts,
            "misp_per_kuops": round(self.misp_per_kuops, 4),
            "mispredict_pct": round(100.0 * self.mispredict_rate, 4),
            # None, not float("inf"): summaries are serialized to JSON and
            # the Infinity token is not valid JSON (a zero-mispredict cell
            # would poison the whole payload for strict parsers).
            "uops_per_flush": (
                round(self.uops_per_flush, 1) if self.mispredicts else None
            ),
            "prophet_misp_per_kuops": round(self.prophet_misp_per_kuops, 4),
            "filtered_pct": round(100.0 * self.filtered_fraction, 2),
        }
