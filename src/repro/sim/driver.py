"""The functional accuracy simulator.

Couples three machines and keeps them honest with each other:

* a **speculative walker** that fetches down *predicted* paths (producing
  the wrong-path future bits the critic needs, §6);
* the **prediction system** (prophet alone, or prophet/critic hybrid)
  owning BHR/BOR speculation and checkpoints;
* the **architectural executor** resolving branch outcomes in committed
  order (ground truth).

Event order per dynamic branch (matching §3 and §5):

1. *fetch* — walker reaches the branch, BTB identifies it, prophet
   predicts, prediction speculatively enters BHR + BOR, walker follows
   the prediction (possibly onto the wrong path);
2. *critique* — once the branch's ``future_bits`` prophet predictions are
   in the BOR, the critic produces the final prediction; a disagreement
   flushes the younger (uncritiqued) in-flight branches, repairs the
   registers to this branch's checkpoint and redirects fetch — an
   FTQ-confined flush, invisible to the back end;
3. *resolve* — in program order, after a configurable in-flight delay
   (modelling commit): tables train non-speculatively with the histories
   captured at prediction/critique time; a final-prediction mispredict
   flushes everything younger, restores the checkpoint, inserts the
   actual outcome and redirects fetch to the correct path.

Training the critic with the BOR captured at critique time — wrong-path
bits included — is what the whole paper hinges on (§3.3): a branch can be
mispredicted yet on the correct path, and it must train the critic with
the wrong-path future the prophet actually produced.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.core.hybrid import InflightBranch, PredictionSystem
from repro.engine.btb import BranchTargetBuffer
from repro.engine.executor import ArchitecturalExecutor
from repro.engine.frontend import SpeculativeWalker
from repro.sim.metrics import RunStats
from repro.workloads.program import Program

if TYPE_CHECKING:
    from repro.predictors.base import DirectionPredictor
    from repro.workloads.trace import BranchRecord


class SimulationDesyncError(RuntimeError):
    """Front end and architectural executor disagreed about the branch
    stream — an engine bug, never a predictor property."""


@dataclass
class SimulationConfig:
    """Knobs for one simulation run."""

    #: Conditional branches to resolve (measurement window + warmup).
    n_branches: int = 50_000
    #: Branches resolved before statistics start accumulating.
    warmup: int = 5_000
    #: Minimum in-flight branches between fetch and resolve, modelling
    #: commit delay (tables train this many branches late).
    inflight_depth: int = 24
    #: Model the Table-2 BTB (misses fall through as static not-taken).
    use_btb: bool = True
    btb_entries: int = 4096
    btb_ways: int = 4
    #: Keep per-site (pc) mispredict attribution in the result.
    collect_per_site: bool = False

    def effective_depth(self, future_bits: int) -> int:
        """In-flight depth, never smaller than the critique window."""
        return max(self.inflight_depth, future_bits + 2)


def simulate(
    program: Program,
    system: PredictionSystem,
    config: SimulationConfig | None = None,
) -> RunStats:
    """Run ``system`` over ``program`` and return measured statistics."""
    config = config or SimulationConfig()
    if config.warmup >= config.n_branches:
        raise ValueError("warmup must leave a measurement window")

    program.reset()
    executor = ArchitecturalExecutor(program)
    walker = SpeculativeWalker(program)
    btb = BranchTargetBuffer(config.btb_entries, config.btb_ways) if config.use_btb else None

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    pending: deque[InflightBranch] = deque()
    critiqued_count = 0  # pending[:critiqued_count] are critiqued (in order)
    next_seq = 0         # BOR-insertion sequence number
    required_bits = max(system.future_bits, 0)
    depth = config.effective_depth(required_bits)
    hard_cap = depth + 8
    resolved = 0
    warmup_fetched = 0

    def gathered(handle: InflightBranch) -> int:
        return next_seq - handle.seq

    def fetch_one() -> None:
        nonlocal next_seq
        fetched = walker.next_branch()
        snap = walker.snapshot()
        known = btb.lookup(fetched.pc) if btb is not None else True
        if known:
            handle = system.predict(fetched.pc)
            handle.seq = next_seq
            next_seq += 1  # one BOR bit inserted
        else:
            handle = system.predict_static(fetched.pc)
            handle.seq = next_seq  # contributes no BOR bit: no increment
        handle.walker_snapshot = snap
        pending.append(handle)
        walker.advance(handle.prophet_pred)

    def critique_next() -> None:
        nonlocal critiqued_count, next_seq
        handle = pending[critiqued_count]
        final = system.critique(handle)
        critiqued_count += 1
        if handle.is_static:
            return
        if final != handle.prophet_pred:
            # Critic override: drop the younger, uncritiqued tail and
            # steer fetch down the critic's path (FTQ-confined flush).
            while len(pending) > critiqued_count:
                pending.pop()
            system.apply_redirect(handle, final)
            walker.restore(handle.walker_snapshot)
            walker.advance(final)
            next_seq = handle.seq + 1
            if resolved >= config.warmup:
                stats.critic_redirects += 1

    def resolve_head() -> None:
        nonlocal critiqued_count, next_seq, resolved
        head = pending.popleft()
        critiqued_count -= 1
        actual = executor.next_branch()
        if actual.pc != head.pc:
            raise SimulationDesyncError(
                f"committed branch {actual.pc:#x} but front end fetched {head.pc:#x} "
                f"(branch #{resolved})"
            )
        measuring = resolved >= config.warmup
        if measuring:
            stats.branches += 1
            stats.committed_uops += actual.uops
            stats.taken_branches += int(actual.taken)
            if head.is_static:
                stats.static_branches += 1
                if actual.taken:  # implicit not-taken was wrong
                    stats.mispredicts += 1
                    stats.prophet_mispredicts += 1
            else:
                stats.census.record(head.critique_kind(actual.taken))
                prophet_misp = head.prophet_pred != actual.taken
                final_misp = head.final_pred != actual.taken
                if prophet_misp:
                    stats.prophet_mispredicts += 1
                if final_misp:
                    stats.mispredicts += 1
                if config.collect_per_site:
                    stats.record_site(head.pc, prophet_misp, final_misp)
        system.resolve(head, actual.taken)
        if btb is not None and head.is_static:
            btb.allocate(head.pc)
        if head.final_pred != actual.taken or (head.is_static and actual.taken):
            # Resolved mispredict: flush everything younger, repair, redirect.
            system.recover(head, actual.taken)
            walker.restore(head.walker_snapshot)
            walker.advance(actual.taken)
            pending.clear()
            critiqued_count = 0
            next_seq = head.seq + 1
        resolved += 1

    while resolved < config.n_branches:
        # 1) Critique in order as soon as the future bits are available.
        if critiqued_count < len(pending):
            handle = pending[critiqued_count]
            needed = 0 if handle.is_static else required_bits
            if gathered(handle) >= needed:
                critique_next()
                continue
        # 2) Resolve once the head is critiqued and the window is deep
        #    enough (committing earlier would under-model update delay).
        if pending and pending[0].critiqued and len(pending) > depth:
            resolve_head()
            continue
        # 3) Otherwise keep fetching.
        if len(pending) < hard_cap:
            fetch_one()
            # Capture the warmup boundary for uop accounting.
            if resolved < config.warmup:
                warmup_fetched = walker.fetched_uops
            continue
        # 4) Fetch window exhausted before the future bits arrived (can
        #    happen when BTB-miss branches occupy slots): critique with
        #    the bits available, as the paper's implementation does (§5).
        if critiqued_count < len(pending):
            if resolved >= config.warmup:
                stats.forced_critiques += 1
            critique_next()
            continue
        # Everything critiqued but window shallow — resolve anyway.
        resolve_head()

    stats.fetched_uops = max(0, walker.fetched_uops - warmup_fetched)
    return stats


def oracle_replay(
    records: "Iterable[BranchRecord]",
    *,
    prophet: "DirectionPredictor",
    critic: "DirectionPredictor",
    future_bits: int,
    warmup: int,
) -> RunStats:
    """Trace-driven hybrid evaluation with **oracle** future bits (§6).

    The methodological foil to :func:`simulate`: instead of fetching down
    the predicted (possibly wrong) path, the critic's BOR is assembled
    from the trace's *actual* outcomes — including the branch's own, the
    exact information leak the paper warns a correct-path trace-driven
    evaluation commits. The returned accuracy is therefore inflated and
    unreal; the ``ablations`` experiment quantifies the gap.

    ``records`` may be any iterable of committed
    :class:`~repro.workloads.trace.BranchRecord`\\ s — an in-memory
    :class:`~repro.workloads.trace.BranchTrace` or a streaming
    :class:`~repro.workloads.trace_io.TraceReader`; only a
    ``future_bits``-deep lookahead window is ever held in memory.
    """
    from repro.core.history import HistoryRegister

    if future_bits < 0:
        raise ValueError("future_bits must be non-negative")
    mask = (1 << 64) - 1
    bhr = HistoryRegister(max(prophet.history_length, 1))
    stats = RunStats(system="oracle-replay")
    window: deque[BranchRecord] = deque()
    iterator = iter(records)
    exhausted = False
    past = 0
    index = 0
    while True:
        # Keep the branch under evaluation plus its future_bits - 1
        # successors buffered (the branch's own outcome is bit
        # future_bits - 1 of the oracle BOR, mirroring
        # BranchTrace.future_bits).
        while not exhausted and len(window) < max(1, future_bits):
            try:
                window.append(next(iterator))
            except StopIteration:
                exhausted = True
        if not window:
            break
        record = window[0]
        future = 0
        for offset in range(min(future_bits, len(window))):
            future |= int(window[offset].taken) << (future_bits - 1 - offset)
        prophet_pred = prophet.predict(record.pc, bhr.value)
        oracle_bor = ((past << future_bits) | future) & mask
        lookup = critic.lookup(record.pc, oracle_bor)
        final = lookup.prediction if lookup.hit else prophet_pred
        if index >= warmup:
            stats.branches += 1
            stats.committed_uops += record.uops
            stats.taken_branches += int(record.taken)
            if prophet_pred != record.taken:
                stats.prophet_mispredicts += 1
            if final != record.taken:
                stats.mispredicts += 1
        prophet.update(record.pc, bhr.value, record.taken, prophet_pred)
        critic.train(record.pc, oracle_bor, record.taken, final != record.taken)
        bhr.insert(record.taken)
        past = ((past << 1) | int(record.taken)) & mask
        window.popleft()
        index += 1
    return stats
