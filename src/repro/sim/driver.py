"""The functional accuracy simulator.

Couples three machines and keeps them honest with each other:

* a **speculative walker** that fetches down *predicted* paths (producing
  the wrong-path future bits the critic needs, §6);
* the **prediction system** (prophet alone, or prophet/critic hybrid)
  owning BHR/BOR speculation and checkpoints;
* the **architectural executor** resolving branch outcomes in committed
  order (ground truth).

Event order per dynamic branch (matching §3 and §5):

1. *fetch* — walker reaches the branch, BTB identifies it, prophet
   predicts, prediction speculatively enters BHR + BOR, walker follows
   the prediction (possibly onto the wrong path);
2. *critique* — once the branch's ``future_bits`` prophet predictions are
   in the BOR, the critic produces the final prediction; a disagreement
   flushes the younger (uncritiqued) in-flight branches, repairs the
   registers to this branch's checkpoint and redirects fetch — an
   FTQ-confined flush, invisible to the back end;
3. *resolve* — in program order, after a configurable in-flight delay
   (modelling commit): tables train non-speculatively with the histories
   captured at prediction/critique time; a final-prediction mispredict
   flushes everything younger, restores the checkpoint, inserts the
   actual outcome and redirects fetch to the correct path.

Training the critic with the BOR captured at critique time — wrong-path
bits included — is what the whole paper hinges on (§3.3): a branch can be
mispredicted yet on the correct path, and it must train the critic with
the wrong-path future the prophet actually produced.

Hot-path shape
--------------

``simulate`` is the innermost loop of every experiment grid, so it is
written as one flat loop over a **ring of pooled in-flight handles**
sized to the fetch window: no per-branch allocation, no closure calls,
attribute lookups hoisted into locals. The in-flight window lives in the
ring as ``slots[head % cap] .. slots[(tail-1) % cap]`` with monotonically
increasing ``head``/``tail`` counters; a flush simply moves ``tail``
back. The frozen pre-optimization kernel is kept in
``tests/reference_kernel.py`` and differential tests pin this loop to it
bit for bit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.core.hybrid import InflightBranch, PredictionSystem
from repro.engine.btb import BranchTargetBuffer
from repro.engine.executor import ArchitecturalExecutor
from repro.engine.frontend import SpeculativeWalker
from repro.sim.metrics import RunStats
from repro.workloads.program import Program

if TYPE_CHECKING:
    from repro.predictors.base import DirectionPredictor
    from repro.workloads.trace import BranchRecord


class SimulationDesyncError(RuntimeError):
    """Front end and architectural executor disagreed about the branch
    stream — an engine bug, never a predictor property."""


#: Process-wide default kernel backend. Configs that don't name a
#: backend explicitly pick this up at construction time, which is how
#: one CLI ``--backend batched`` flag reaches every SimulationConfig an
#: experiment builds internally without threading a parameter through
#: each signature (mirrors execution.get_default_engine).
_DEFAULT_BACKEND = "scalar"

_KNOWN_BACKENDS = ("scalar", "batched")


def set_default_backend(backend: str) -> None:
    """Install the backend newly constructed configs default to."""
    if backend not in _KNOWN_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {_KNOWN_BACKENDS}"
        )
    global _DEFAULT_BACKEND
    _DEFAULT_BACKEND = backend


def get_default_backend() -> str:
    return _DEFAULT_BACKEND


@dataclass
class SimulationConfig:
    """Knobs for one simulation run."""

    #: Conditional branches to resolve (measurement window + warmup).
    n_branches: int = 50_000
    #: Branches resolved before statistics start accumulating.
    warmup: int = 5_000
    #: Minimum in-flight branches between fetch and resolve, modelling
    #: commit delay (tables train this many branches late).
    inflight_depth: int = 24
    #: Model the Table-2 BTB (misses fall through as static not-taken).
    use_btb: bool = True
    btb_entries: int = 4096
    btb_ways: int = 4
    #: Keep per-site (pc) mispredict attribution in the result.
    collect_per_site: bool = False
    #: Keep per-predictor lifetime accuracy counters (PredictorStats).
    #: Pure telemetry — RunStats is identical either way; throughput
    #: harnesses switch it off to shave per-update accounting.
    collect_predictor_stats: bool = True
    #: Kernel backend: "scalar" is the reference loop below; "batched" is
    #: the structure-of-arrays kernel in :mod:`repro.sim.batched`, proven
    #: bit-identical by the differential tests and falling back to the
    #: scalar loop for system shapes it does not specialize. A pure
    #: execution detail: results are identical, so the field is excluded
    #: from SweepCell content hashes (see specs._described_config).
    #: Defaults to the process-wide selection (:func:`set_default_backend`).
    backend: str = field(default_factory=lambda: _DEFAULT_BACKEND)

    def effective_depth(self, future_bits: int) -> int:
        """In-flight depth, never smaller than the critique window."""
        return max(self.inflight_depth, future_bits + 2)


def simulate(
    program: Program,
    system: PredictionSystem,
    config: SimulationConfig | None = None,
) -> RunStats:
    """Run ``system`` over ``program`` and return measured statistics."""
    config = config or SimulationConfig()
    if config.warmup >= config.n_branches:
        raise ValueError("warmup must leave a measurement window")
    if config.backend == "batched":
        from repro.sim.batched import simulate_batched

        stats = simulate_batched(program, system, config)
        if stats is not None:
            return stats
        # Unsupported system shape: the batched kernel declined; run the
        # scalar loop (documented fallback, results identical by design).
    elif config.backend != "scalar":
        raise ValueError(
            f"unknown backend {config.backend!r}; expected 'scalar' or 'batched'"
        )

    program.reset()
    executor = ArchitecturalExecutor(program)
    walker = SpeculativeWalker(program)
    btb = BranchTargetBuffer(config.btb_entries, config.btb_ways) if config.use_btb else None

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    required_bits = max(system.future_bits, 0)
    depth = config.effective_depth(required_bits)
    hard_cap = depth + 8
    n_branches = config.n_branches
    warmup = config.warmup
    collect_per_site = config.collect_per_site

    # Pooled in-flight window: a ring of reusable handles. Monotonic
    # head/tail counters; occupancy = tail - head, never above hard_cap.
    cap = hard_cap
    slots = [
        InflightBranch(pc=0, prophet_pred=False, bhr_before=0, bor_before=0)
        for _ in range(cap)
    ]
    head = 0
    tail = 0
    critiqued = 0  # handles [head, head+critiqued) are critiqued, in order
    next_seq = 0   # BOR-insertion sequence number
    resolved = 0
    warmup_fetched = 0

    # Hoisted bound methods and fields (the loop body runs per event; a
    # dotted lookup per event is measurable at sweep scale).
    sys_predict_into = system.predict_into
    sys_predict_static_into = system.predict_static_into
    sys_critique = system.critique
    sys_apply_redirect = system.apply_redirect
    sys_resolve = system.resolve
    sys_recover = system.recover
    walker_next_block = walker.next_branch_block
    walker_restore = walker.restore_state
    ras_snapshot = walker.ras.snapshot
    executor_resolve = executor.resolve_next
    btb_lookup = btb.lookup if btb is not None else None
    btb_allocate = btb.allocate if btb is not None else None
    census_record = stats.census.record
    record_site = stats.record_site

    if not config.collect_predictor_stats:
        system.set_stats_enabled(False)
    try:
        while resolved < n_branches:
            pending = tail - head
            # 1) Critique in order as soon as the future bits are
            #    available. 4) When the fetch window is exhausted before
            #    the bits arrived (BTB-miss branches can occupy slots),
            #    critique with the bits available, as the paper's
            #    implementation does (§5). Both arms share this block;
            #    `forced` distinguishes them for accounting.
            forced = False
            if critiqued < pending:
                handle = slots[(head + critiqued) % cap]
                if handle.is_static or next_seq - handle.seq >= required_bits:
                    pass  # bits available: ordinary critique
                elif pending >= hard_cap and not (critiqued > 0 and pending > depth):
                    # Window exhausted, nothing to fetch *or* resolve:
                    # critique anyway (a resolvable head always drains
                    # first, exactly as the phase order prescribes).
                    forced = True
                else:
                    handle = None
            else:
                handle = None
            if handle is not None:
                if forced and resolved >= warmup:
                    stats.forced_critiques += 1
                final = sys_critique(handle)
                critiqued += 1
                if not handle.is_static and final != handle.prophet_pred:
                    # Critic override: drop the younger, uncritiqued tail
                    # and steer fetch down the critic's path
                    # (FTQ-confined flush).
                    tail = head + critiqued
                    sys_apply_redirect(handle, final)
                    walker_restore(handle.snap_block, handle.snap_ras)
                    walker.advance(final)
                    next_seq = handle.seq + 1
                    if resolved >= warmup:
                        stats.critic_redirects += 1
                continue

            # 3) Fetch while the window has room (and nothing above ran).
            #    Runs as a burst: nothing older can become actionable
            #    until the oldest uncritiqued branch has its future bits,
            #    the head becomes resolvable, or the window fills —
            #    conditions only the fetches themselves advance.
            if pending < hard_cap and not (critiqued > 0 and pending > depth):
                if critiqued < pending:
                    candidate = slots[(head + critiqued) % cap]
                    target_seq = candidate.seq + required_bits
                else:
                    candidate = None
                    target_seq = 0
                while True:
                    branch = walker_next_block()
                    pc = branch.pc
                    handle = slots[tail % cap]
                    tail += 1
                    if btb_lookup is None or btb_lookup(pc):
                        sys_predict_into(handle, pc)
                        handle.seq = next_seq
                        next_seq += 1  # one BOR bit inserted
                    else:
                        sys_predict_static_into(handle, pc)
                        handle.seq = next_seq  # no BOR bit: no increment
                    handle.snap_block = branch.block_id
                    handle.snap_ras = ras_snapshot()
                    # Inlined walker.advance(handle.prophet_pred).
                    walker.block_id = (
                        branch.taken_target if handle.prophet_pred
                        else branch.fallthrough
                    )
                    walker._at_branch = False
                    pending = tail - head
                    if pending >= hard_cap:
                        break
                    if critiqued > 0 and pending > depth:
                        break
                    if candidate is None:
                        candidate = handle
                        if handle.is_static:
                            break  # immediately critique-eligible
                        target_seq = handle.seq + required_bits
                    if next_seq >= target_seq:
                        break  # oldest uncritiqued branch has its bits
                continue

            # 2) Resolve once the head is critiqued and the window is deep
            #    enough (committing earlier would under-model update
            #    delay); also the drain path when everything is critiqued
            #    but the window is shallow. Runs as a burst: resolves
            #    never make an older critique newly eligible, so drain
            #    until a mispredict flushes or the window gets shallow.
            while True:
                head_handle = slots[head % cap]
                pc, taken, uops = executor_resolve()
                if pc != head_handle.pc:
                    raise SimulationDesyncError(
                        f"committed branch {pc:#x} but front end fetched "
                        f"{head_handle.pc:#x} (branch #{resolved})"
                    )
                if resolved >= warmup:
                    stats.branches += 1
                    stats.committed_uops += uops
                    if taken:
                        stats.taken_branches += 1
                    if head_handle.is_static:
                        stats.static_branches += 1
                        if taken:  # implicit not-taken was wrong
                            stats.mispredicts += 1
                            stats.prophet_mispredicts += 1
                    else:
                        census_record(head_handle.critique_kind(taken))
                        prophet_misp = head_handle.prophet_pred != taken
                        final_misp = head_handle.final_pred != taken
                        if prophet_misp:
                            stats.prophet_mispredicts += 1
                        if final_misp:
                            stats.mispredicts += 1
                        if collect_per_site:
                            record_site(head_handle.pc, prophet_misp, final_misp)
                sys_resolve(head_handle, taken)
                if head_handle.is_static:
                    if btb_allocate is not None:
                        btb_allocate(head_handle.pc)
                    mispredicted = taken
                else:
                    mispredicted = head_handle.final_pred != taken
                head += 1
                resolved += 1
                if resolved == warmup:
                    # Warmup boundary: everything fetched up to this
                    # commit is excluded from the measured fetch traffic.
                    warmup_fetched = walker.fetched_uops
                if mispredicted:
                    # Resolved mispredict: flush everything younger,
                    # repair, redirect down the actual outcome.
                    sys_recover(head_handle, taken)
                    walker_restore(head_handle.snap_block, head_handle.snap_ras)
                    walker.advance(taken)
                    tail = head
                    critiqued = 0
                    next_seq = head_handle.seq + 1
                    break
                critiqued -= 1
                if resolved >= n_branches:
                    break
                if not (critiqued > 0 and tail - head > depth):
                    break
    finally:
        if not config.collect_predictor_stats:
            system.set_stats_enabled(True)

    stats.fetched_uops = max(0, walker.fetched_uops - warmup_fetched)
    return stats


def oracle_replay(
    records: "Iterable[BranchRecord]",
    *,
    prophet: "DirectionPredictor",
    critic: "DirectionPredictor",
    future_bits: int,
    warmup: int,
) -> RunStats:
    """Trace-driven hybrid evaluation with **oracle** future bits (§6).

    The methodological foil to :func:`simulate`: instead of fetching down
    the predicted (possibly wrong) path, the critic's BOR is assembled
    from the trace's *actual* outcomes — including the branch's own, the
    exact information leak the paper warns a correct-path trace-driven
    evaluation commits. The returned accuracy is therefore inflated and
    unreal; the ``ablations`` experiment quantifies the gap.

    ``records`` may be any iterable of committed
    :class:`~repro.workloads.trace.BranchRecord`\\ s — an in-memory
    :class:`~repro.workloads.trace.BranchTrace` or a streaming
    :class:`~repro.workloads.trace_io.TraceReader`; only a
    ``future_bits``-deep lookahead window is ever held in memory.

    The oracle future mask is maintained incrementally: sliding the
    window shifts the previous mask up one and inserts the newly buffered
    outcome at bit 0, rather than rebuilding the mask from the deque —
    O(1) per branch instead of O(future_bits).
    """
    from repro.core.history import HistoryRegister

    if future_bits < 0:
        raise ValueError("future_bits must be non-negative")
    mask = (1 << 64) - 1
    future_mask = (1 << future_bits) - 1
    bhr = HistoryRegister(max(prophet.history_length, 1))
    stats = RunStats(system="oracle-replay")
    window: deque[BranchRecord] = deque()
    iterator = iter(records)
    exhausted = False
    past = 0
    #: Bit i of `future` is window[future_bits - 1 - i]'s outcome — the
    #: branch under evaluation occupies the top bit, successors below it,
    #: zeros beyond the end of a draining window (same layout the old
    #: per-branch rescan produced).
    future = 0
    index = 0
    while True:
        # Keep the branch under evaluation plus its future_bits - 1
        # successors buffered (the branch's own outcome is bit
        # future_bits - 1 of the oracle BOR, mirroring
        # BranchTrace.future_bits).
        while not exhausted and len(window) < max(1, future_bits):
            try:
                record = next(iterator)
            except StopIteration:
                exhausted = True
                break
            window.append(record)
            if future_bits:
                # The newcomer sits `len(window) - 1` slots ahead of the
                # window head, i.e. at bit future_bits - len(window).
                future |= int(record.taken) << (future_bits - len(window))
        if not window:
            break
        record = window[0]
        prophet_pred = prophet.predict(record.pc, bhr.value)
        oracle_bor = ((past << future_bits) | future) & mask
        lookup = critic.lookup(record.pc, oracle_bor)
        final = lookup.prediction if lookup.hit else prophet_pred
        if index >= warmup:
            stats.branches += 1
            stats.committed_uops += record.uops
            stats.taken_branches += int(record.taken)
            if prophet_pred != record.taken:
                stats.prophet_mispredicts += 1
            if final != record.taken:
                stats.mispredicts += 1
        prophet.update(record.pc, bhr.value, record.taken, prophet_pred)
        critic.train(record.pc, oracle_bor, record.taken, final != record.taken)
        bhr.insert(record.taken)
        past = ((past << 1) | int(record.taken)) & mask
        window.popleft()
        # Slide the oracle mask: drop the evaluated branch's (top) bit,
        # promote every successor one slot; the refill loop above inserts
        # the next buffered outcome at the vacated low end.
        future = (future << 1) & future_mask
        index += 1
    return stats
