"""Parallel sweep execution engine.

Every experiment in §7 is a grid of (prophet × critic × size × future
bits × benchmark) cells. Cells are perfectly independent — each gets a
fresh program and fresh predictor state — so the grid is embarrassingly
parallel. This module turns a list of :class:`~repro.sim.specs.SweepCell`
descriptions into results through three cooperating pieces:

* :func:`run_cell` — the worker function: rebuilds program and system
  from the cell's specs and runs the appropriate simulator. Module-level
  and closure-free, so it pickles cleanly into worker processes.
* **Executors** — :class:`SerialExecutor` runs cells in-process (the
  reference semantics); :class:`ProcessPoolExecutor` fans them out over a
  ``concurrent.futures`` process pool. Both implement ``map_cells`` and
  are interchangeable: cells are deterministic in their specs, so the
  executor choice can never change a result, only the wall clock.
* :class:`SweepEngine` — executor + optional
  :class:`~repro.sim.cache.ResultCache`. Before running, each cell's
  content hash is probed in the cache; only missing cells are executed,
  and their results are written back. Duplicate cells inside one sweep
  (same hash under different labels) are simulated once.

The equivalence of the three paths — serial, process pool, cold cache
then warm cache — is not an aspiration but a tested invariant
(``tests/sim/test_execution.py`` asserts field-by-field equality of the
resulting :class:`~repro.sim.sweep.SweepResult`\\ s).

Experiments pick up the process-wide default engine (see
:func:`get_default_engine`), which the CLI configures from ``--jobs``,
``--cache-dir`` and ``--no-cache``.
"""

from __future__ import annotations

import contextlib
import copy
import os
from concurrent import futures
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Sequence, Union

from repro.sim.cache import ResultCache
from repro.sim.driver import simulate
from repro.sim.metrics import RunStats
from repro.sim.specs import MODE_TIMING, SweepCell
from repro.sim.sweep import SweepResult

if TYPE_CHECKING:  # pipeline imports sim.driver; keep the runtime DAG acyclic
    from repro.pipeline.machine import PipelineResult

    CellResult = Union[RunStats, "PipelineResult"]


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one sweep cell from scratch (the process-pool work unit).

    Rebuilds the program and prediction system from their specs so the
    result depends only on the cell's content — never on which process or
    in which order it runs — then stamps the cell's display labels.
    """
    program = cell.program.build()
    system = cell.system.build()
    if cell.mode == MODE_TIMING:
        from repro.pipeline.machine import TimedMachine

        result: CellResult = TimedMachine(program, system).run(
            cell.config.n_branches, warmup=cell.config.warmup
        )
    else:
        result = simulate(program, system, cell.config)
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


def _stamp(result: CellResult, cell: SweepCell) -> CellResult:
    """Re-apply a cell's labels (cache entries may carry another label)."""
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


class SerialExecutor:
    """Runs cells one after another in the calling process."""

    jobs = 1

    def map_cells(self, cells: Sequence[SweepCell]) -> list[CellResult]:
        return [run_cell(cell) for cell in cells]


class ProcessPoolExecutor:
    """Fans cells out over a ``concurrent.futures`` process pool.

    Results come back in submission order, so a sweep's outcome is
    independent of worker scheduling. Worker processes import the cell
    specs and rebuild everything locally; nothing stateful crosses the
    pickle boundary.
    """

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs or os.cpu_count() or 1

    def map_cells(self, cells: Sequence[SweepCell]) -> list[CellResult]:
        if len(cells) <= 1 or self.jobs == 1:
            # Not worth a pool; keep the semantics identical regardless.
            return SerialExecutor().map_cells(cells)
        workers = min(self.jobs, len(cells))
        chunksize = max(1, len(cells) // (workers * 4))
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_cell, cells, chunksize=chunksize))


@dataclass
class SweepEngine:
    """Executor + cache: the one place sweep cells get turned into results.

    ``run_cells`` is the primitive — results in cell order, cache
    consulted per cell, duplicates coalesced. ``run`` additionally files
    accuracy results into a :class:`SweepResult` keyed by the cells'
    (system label, benchmark name).
    """

    executor: SerialExecutor | ProcessPoolExecutor = field(default_factory=SerialExecutor)
    cache: ResultCache | None = None

    def run_cells(self, cells: Sequence[SweepCell]) -> list[CellResult]:
        results: dict[int, CellResult] = {}
        pending: list[tuple[int, str, SweepCell]] = []
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, str]] = []
        for index, cell in enumerate(cells):
            key = cell.content_hash()
            if key in first_index:
                duplicates.append((index, key))
                continue
            first_index[key] = index
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[index] = _stamp(cached, cell)
            else:
                pending.append((index, key, cell))
        if pending:
            fresh = self.executor.map_cells([cell for _, _, cell in pending])
            for (index, key, _cell), result in zip(pending, fresh):
                if self.cache is not None:
                    self.cache.put(key, result)
                results[index] = result
        for index, key in duplicates:
            twin = results[first_index[key]]
            results[index] = _stamp(copy.deepcopy(twin), cells[index])
        return [results[index] for index in range(len(cells))]

    def run(self, cells: Sequence[SweepCell]) -> SweepResult:
        """Run accuracy cells and index the stats by (label, benchmark)."""
        sweep = SweepResult()
        for cell, result in zip(cells, self.run_cells(cells)):
            if not isinstance(result, RunStats):
                raise TypeError(
                    "SweepEngine.run expects accuracy cells; use run_cells "
                    "for timing cells"
                )
            sweep.add(cell.system_label, cell.bench_name, result)
        return sweep


def make_engine(
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
) -> SweepEngine:
    """Build an engine from CLI-shaped knobs.

    ``jobs`` ≤ 1 selects the in-process serial executor; larger values a
    process pool of that size. ``cache_dir`` of None disables caching.
    """
    executor = SerialExecutor() if jobs <= 1 else ProcessPoolExecutor(jobs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return SweepEngine(executor=executor, cache=cache)


# --- process-wide default engine ------------------------------------------
#
# Experiment modules route their grids through whatever engine is current,
# so `python -m repro run figure5 --jobs 8 --cache-dir .cache` accelerates
# every experiment without threading parameters through each signature.

_default_engine: SweepEngine | None = None


def get_default_engine() -> SweepEngine:
    """The engine experiments use when none is passed explicitly.

    Serial and cacheless unless :func:`set_default_engine` or
    :func:`use_engine` installed something else — the exact semantics of
    the original single-process sweep loop.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = SweepEngine()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> None:
    """Install (or with None, reset) the process-wide default engine."""
    global _default_engine
    _default_engine = engine


@contextlib.contextmanager
def use_engine(engine: SweepEngine | None) -> Iterator[SweepEngine]:
    """Temporarily install ``engine`` as the default (None = no change)."""
    if engine is None:
        yield get_default_engine()
        return
    previous = _default_engine
    set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
