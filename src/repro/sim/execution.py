"""Sweep-scale parallel execution engine.

Every experiment in §7 is a grid of (prophet × critic × size × future
bits × benchmark) cells. Cells are perfectly independent — each gets a
fresh program and fresh predictor state — so the grid is embarrassingly
parallel. This module turns a list of :class:`~repro.sim.specs.SweepCell`
descriptions into results through three cooperating pieces:

* :func:`run_cell` — the from-scratch work unit: rebuilds program and
  system from the cell's specs and runs the appropriate simulator. It is
  the *reference semantics* every faster path must match bit for bit.
* **Executors** — :class:`SerialExecutor` runs cells in the calling
  process; :class:`ProcessPoolExecutor` fans them out over a
  **persistent** ``concurrent.futures`` process pool that survives
  across ``map_cells`` calls, so interpreter spawn and imports are paid
  once per worker rather than once per grid. Both memoise program
  builds (:class:`ProgramBuildCache`): a worker compiles each distinct
  workload once and replays it for every system swept over it, resetting
  behaviour state between runs (compiled CFG transition tables survive —
  the expensive part). Both stream results as cells finish instead of
  returning one ordered batch.
* :class:`SweepEngine` — executor + optional
  :class:`~repro.sim.cache.ResultCache`. Before running, each cell's
  content hash is probed in the cache; only missing cells are executed.
  Fresh results are written back **incrementally as each cell finishes**
  (pool workers write their own results), so a killed sweep resumes from
  everything already computed. Duplicate cells inside one sweep (same
  hash under different labels) are simulated once and cloned through the
  cache's lossless codec. An optional progress callback fires per
  completed cell (the CLI's ``--progress``).

The equivalence of every path — serial, persistent pool, memoized
builds, cold cache then warm cache — is not an aspiration but a tested
invariant (``tests/sim/test_execution.py`` asserts field-by-field
equality of the resulting results against :func:`run_cell`, on mixed
accuracy/timing grids with trace-backed and duplicate cells).

A cell that raises does not surface as a bare pickled traceback from a
nameless worker: executors wrap the failure in
:class:`CellExecutionError`, which names the cell's labels and carries
its full spec (and the worker traceback), and the engine cancels
outstanding work.

Experiments pick up the process-wide default engine (see
:func:`get_default_engine`), which the CLI configures from ``--jobs``,
``--cache-dir``, ``--no-cache`` and ``--progress``.
"""

from __future__ import annotations

import contextlib
import json
import math
import os
import traceback
from collections import OrderedDict
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence, Union

from repro.sim.cache import ResultCache, clone_result
from repro.sim.driver import simulate
from repro.sim.metrics import RunStats
from repro.sim.specs import MODE_TIMING, ProgramSpec, SweepCell
from repro.sim.sweep import SweepResult

if TYPE_CHECKING:  # pipeline imports sim.driver; keep the runtime DAG acyclic
    from repro.pipeline.machine import PipelineResult
    from repro.workloads.program import Program

    CellResult = Union[RunStats, "PipelineResult"]
    #: Streaming hook: called with (index, result) as each cell finishes.
    OnResult = Callable[[int, "CellResult"], None]
    #: Progress hook: called with (done, total, cell) per finished cell.
    ProgressFn = Callable[[int, int, SweepCell], None]

#: Default per-process cap on memoized program builds (override with the
#: ``REPRO_BUILD_CACHE`` environment variable; ``0`` disables
#: memoization entirely, e.g. when bisecting a suspected stale-build
#: issue). Programs are a few MB each; eight covers a Table-1 suite
#: half without unbounded growth.
DEFAULT_BUILD_CACHE_CAPACITY = 8

# --- persistent trace-column cache ------------------------------------------
#
# The batched kernel's architectural-trace columns are a pure function of
# the program build key and prefix-stable in the branch count, so they
# can outlive the process. When ``REPRO_TRACE_CACHE`` names a cache URL
# (same grammar as result caches: a directory, ``http://...`` or
# ``tiered:local|remote``), every executor — including pool workers,
# which inherit the environment rather than pickling a handle — spills
# the trace memo through that backend and skips the one-time CFG walk on
# later runs.

_trace_store_ready = False


def _ensure_trace_store() -> None:
    global _trace_store_ready
    if _trace_store_ready:
        return
    _trace_store_ready = True
    url = os.environ.get("REPRO_TRACE_CACHE")
    if not url:
        return
    from repro.sim.batched import set_trace_store
    from repro.sim.cache import TraceColumnStore, cache_from_url

    set_trace_store(TraceColumnStore(cache_from_url(url)))


class CellExecutionError(RuntimeError):
    """A sweep cell failed: names the cell, carries its spec and traceback.

    Raised by every executor path in place of the cell's bare exception
    (which, from a pool worker, would otherwise surface as an unlabelled
    pickled traceback). The original cause is preserved via exception
    chaining in-process and as formatted text from workers.
    """

    def __init__(
        self,
        system_label: str,
        bench_name: str,
        spec_config: dict,
        cause: str,
        worker_traceback: str | None = None,
        cause_types: tuple[str, ...] = (),
    ) -> None:
        self.system_label = system_label
        self.bench_name = bench_name
        self.spec_config = spec_config
        self.cause = cause
        self.worker_traceback = worker_traceback
        #: Class names in the original exception's MRO (most derived
        #: first) — lets callers match on base classes (e.g. "OSError"
        #: catches FileNotFoundError) even across the pickle boundary,
        #: where the original exception object is not available.
        self.cause_types = tuple(cause_types)
        message = (
            f"sweep cell {system_label!r} × {bench_name!r} failed: {cause}\n"
            f"  cell spec: {json.dumps(spec_config, sort_keys=True)}"
        )
        if worker_traceback:
            message += f"\n  worker traceback:\n{worker_traceback}"
        super().__init__(message)

    def caused_by(self, *type_names: str) -> bool:
        """Whether the original exception is (a subclass of) any name."""
        return any(name in self.cause_types for name in type_names)

    def __reduce__(self):  # pickles across the pool boundary, losslessly
        return (
            CellExecutionError,
            (
                self.system_label,
                self.bench_name,
                self.spec_config,
                self.cause,
                self.worker_traceback,
                self.cause_types,
            ),
        )


def _wrap_cell_error(
    cell: SweepCell, exc: Exception, *, in_worker: bool = False
) -> CellExecutionError:
    # In-process failures chain the original exception (``raise ... from``),
    # which already carries the real traceback; only failures crossing the
    # pool's pickle boundary need it captured as text.
    return CellExecutionError(
        system_label=cell.system_label,
        bench_name=cell.bench_name,
        spec_config=cell.to_config(),
        cause=f"{type(exc).__name__}: {exc}",
        worker_traceback=traceback.format_exc() if in_worker else None,
        cause_types=tuple(base.__name__ for base in type(exc).__mro__),
    )


class WorkerPoolError(RuntimeError):
    """The worker pool itself died (a worker was killed or crashed).

    Unlike :class:`CellExecutionError` there is no single cell to blame —
    the interpreter hosting it vanished (OOM kill, segfault, machine
    signal). Raised in place of the raw
    :class:`~concurrent.futures.process.BrokenProcessPool` so sweeps fail
    with context; the engine respawns a healthy pool on its next use, and
    results already computed remain in the cache.
    """


class ProgramBuildCache:
    """Per-process LRU of built programs, keyed by build identity.

    ``program_for(spec)`` returns a ready-to-run
    :class:`~repro.workloads.program.Program` for the spec, building it
    only when no behaviourally identical program (equal
    :meth:`~repro.sim.specs.ProgramSpec.build_key`) is cached. Reused
    programs are ``reset()`` — behaviour state and replay cursors rewind,
    while the lazily compiled CFG transition tables (the expensive part
    of a build) survive. :func:`simulate` and the timing machine reset
    again on entry, so a cached program is indistinguishable from a fresh
    build; the differential tests pin that down.

    Capacity-evicted programs are reset too, which closes any open trace
    reader they hold.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            raw = os.environ.get("REPRO_BUILD_CACHE")
            if raw is None or raw == "":
                capacity = DEFAULT_BUILD_CACHE_CAPACITY
            else:
                try:
                    capacity = int(raw)
                except ValueError:
                    # Loud, not silent: a malformed override must never
                    # masquerade as the default (the knob exists for
                    # stale-build bisection, where that would mislead).
                    raise ValueError(
                        f"REPRO_BUILD_CACHE must be an integer >= 0, got {raw!r}"
                    ) from None
        if capacity < 0:
            raise ValueError("build cache capacity must be >= 0 (0 disables memoization)")
        self.capacity = capacity
        self._programs: OrderedDict[str, Program] = OrderedDict()
        #: Telemetry (reported by tools/profile_sweep.py).
        self.builds = 0
        self.reuses = 0
        _ensure_trace_store()

    def program_for(self, spec: ProgramSpec) -> "Program":
        key = spec.build_key()
        program = self._programs.get(key)
        if program is None:
            program = spec.build()
            # Annotate the build identity so the batched kernel's trace
            # memo can spill through the persistent trace-column store
            # (ad-hoc programs without the stamp never touch it). The
            # fused replay context rides on the program object itself,
            # so same-program cells in a chunk share all per-program
            # precompute automatically.
            program._build_key = key
            self.builds += 1
            self._programs[key] = program
            while len(self._programs) > self.capacity:
                _, evicted = self._programs.popitem(last=False)
                evicted.reset()
        else:
            self.reuses += 1
            self._programs.move_to_end(key)
            program.reset()
        return program

    def clear(self) -> None:
        for program in self._programs.values():
            program.reset()
        self._programs.clear()

    def __len__(self) -> int:
        return len(self._programs)


def _compute_cell(cell: SweepCell, builds: ProgramBuildCache) -> CellResult:
    """Run one cell against a (possibly memoized) program build."""
    program = builds.program_for(cell.program)
    system = cell.system.build()
    if cell.mode == MODE_TIMING:
        from repro.pipeline.machine import TimedMachine

        result: CellResult = TimedMachine(program, system).run(
            cell.config.n_branches, warmup=cell.config.warmup
        )
    else:
        result = simulate(program, system, cell.config)
    # Release per-run resources now, not at reuse/eviction time: for
    # trace-backed programs this closes the replay reader, so a finished
    # sweep holds no open handles on the trace files it read.
    program.reset()
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one sweep cell entirely from scratch (reference semantics).

    Rebuilds the program and prediction system from their specs so the
    result depends only on the cell's content — never on which process,
    in which order, or against which cached build it runs — then stamps
    the cell's display labels. The memoized executor paths are proven
    field-by-field identical to this function.
    """
    program = cell.program.build()
    system = cell.system.build()
    if cell.mode == MODE_TIMING:
        from repro.pipeline.machine import TimedMachine

        result: CellResult = TimedMachine(program, system).run(
            cell.config.n_branches, warmup=cell.config.warmup
        )
    else:
        result = simulate(program, system, cell.config)
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


def _stamp(result: CellResult, cell: SweepCell) -> CellResult:
    """Re-apply a cell's labels (cache entries may carry another label)."""
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


# --- worker side -----------------------------------------------------------
#
# One build cache per worker process, created lazily on the first chunk.
# With cells grouped by program before submission, a worker compiles each
# distinct workload at most once per sweep — a 12-system × 8-benchmark
# grid costs ~8 builds per worker instead of 96 total.

_worker_builds: ProgramBuildCache | None = None


def _worker_build_cache() -> ProgramBuildCache:
    global _worker_builds
    if _worker_builds is None:
        _worker_builds = ProgramBuildCache()
    return _worker_builds


def _run_chunk(
    cells: Sequence[SweepCell],
    cache: ResultCache | None,
    keys: Sequence[str] | None,
) -> list[CellResult]:
    """Pool work unit: run a same-program chunk, writing results back.

    Each finished cell is written to the shared result cache *before* the
    chunk returns (atomic, last-writer-wins), so a sweep killed mid-chunk
    loses at most the one cell in flight per worker.
    """
    builds = _worker_build_cache()
    results: list[CellResult] = []
    for position, cell in enumerate(cells):
        try:
            result = _compute_cell(cell, builds)
            if cache is not None:
                # Inside the wrap: a full disk / read-only cache dir must
                # surface with the cell's name too, not as a bare OSError.
                cache.put(keys[position] if keys else cell.content_hash(), result)
        except Exception as exc:
            raise _wrap_cell_error(cell, exc, in_worker=True) from exc
        results.append(result)
    return results


class SerialExecutor:
    """Runs cells one after another in the calling process.

    Builds are memoized exactly as in pool workers (an engine-owned
    :class:`ProgramBuildCache`), results stream through ``on_result`` in
    cell order, and fresh results are written to ``cache`` as they
    finish.
    """

    jobs = 1

    def __init__(self) -> None:
        self.builds = ProgramBuildCache()

    def map_cells(
        self,
        cells: Sequence[SweepCell],
        on_result: OnResult | None = None,
        cache: ResultCache | None = None,
        keys: Sequence[str] | None = None,
    ) -> list[CellResult]:
        results: list[CellResult] = []
        for index, cell in enumerate(cells):
            try:
                result = _compute_cell(cell, self.builds)
                if cache is not None:
                    cache.put(keys[index] if keys else cell.content_hash(), result)
            except CellExecutionError:
                raise
            except Exception as exc:
                raise _wrap_cell_error(cell, exc) from exc
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    def shutdown(self) -> None:
        """Release memoized builds (symmetry with the pool executor)."""
        self.builds.clear()


class ProcessPoolExecutor:
    """Fans cells out over a **persistent** process pool.

    The underlying ``concurrent.futures`` pool is created lazily on first
    use and survives across ``map_cells`` calls (and therefore across the
    grids of a whole experiment run), so worker spawn and module imports
    are paid once per ``jobs`` — not once per grid. Call
    :meth:`shutdown` (or use the owning engine as a context manager) to
    release the workers; a broken pool is discarded and respawned on the
    next call.

    Scheduling is dynamic: cells are grouped by program build identity,
    split into small same-program chunks, and consumed by whichever
    worker frees up first (``as_completed``), so a long timing cell no
    longer straggles behind a static chunk assignment. Grouping keeps
    each worker's :class:`ProgramBuildCache` hot: in the worst case every
    worker builds every distinct workload once; in the common case far
    fewer.

    Nothing stateful crosses the pickle boundary except the cells, the
    (path-only) result-cache handle and the finished results; results are
    reassembled in submission order, so a sweep's outcome is independent
    of worker scheduling.
    """

    #: Upper bound on cells per submitted chunk. Small enough that
    #: streaming write-back and progress stay responsive; large enough
    #: to amortise per-task pickling on big grids.
    MAX_CHUNK = 8

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs or os.cpu_count() or 1
        self._pool: futures.ProcessPoolExecutor | None = None
        self._serial: SerialExecutor | None = None

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = futures.ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def shutdown(self) -> None:
        """Stop the persistent workers (idempotent; pool respawns on use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._serial is not None:
            self._serial.shutdown()
            self._serial = None

    # -- scheduling ---------------------------------------------------------

    def _chunks(self, cells: Sequence[SweepCell]) -> list[list[int]]:
        """Indices grouped by program build key, split into small chunks."""
        groups: OrderedDict[str, list[int]] = OrderedDict()
        for index, cell in enumerate(cells):
            groups.setdefault(cell.program.build_key(), []).append(index)
        chunks: list[list[int]] = []
        for indices in groups.values():
            per_chunk = min(self.MAX_CHUNK, max(1, math.ceil(len(indices) / self.jobs)))
            for start in range(0, len(indices), per_chunk):
                chunks.append(indices[start : start + per_chunk])
        return chunks

    def map_cells(
        self,
        cells: Sequence[SweepCell],
        on_result: OnResult | None = None,
        cache: ResultCache | None = None,
        keys: Sequence[str] | None = None,
    ) -> list[CellResult]:
        if not cells:
            return []
        if self.jobs == 1 or len(cells) == 1:
            # A 1-job "pool" (or a 1-cell grid) is just ceremony; keep
            # semantics identical (memoized, streaming) without worker
            # spawn and pickle round trips.
            if self._serial is None:
                self._serial = SerialExecutor()
            return self._serial.map_cells(cells, on_result=on_result, cache=cache, keys=keys)
        pool = self._ensure_pool()
        results: list[CellResult | None] = [None] * len(cells)
        submitted: dict[futures.Future, list[int]] = {}
        try:
            for chunk in self._chunks(cells):
                chunk_keys = [keys[i] for i in chunk] if keys is not None else None
                future = pool.submit(
                    _run_chunk, [cells[i] for i in chunk], cache, chunk_keys
                )
                submitted[future] = chunk
            for future in futures.as_completed(submitted):
                for index, result in zip(submitted[future], future.result()):
                    results[index] = result
                    if on_result is not None:
                        on_result(index, result)
        except BrokenProcessPool as exc:
            # A dead worker poisons the whole pool; shut the remains
            # down (joins the management thread) and respawn on next use.
            for future in submitted:
                future.cancel()
            pool.shutdown(wait=False)
            self._pool = None
            raise WorkerPoolError(
                f"a sweep worker process died unexpectedly ({exc}) — likely "
                "killed by the OS (out of memory?) or crashed; the pool will "
                "respawn on the next run, and results already computed remain "
                "in the cache"
            ) from exc
        except BaseException:
            # Fail fast: a cell error (or interrupt) cancels every chunk
            # that has not started; already-running chunks finish in the
            # background and their results stay in the cache.
            for future in submitted:
                future.cancel()
            raise
        return results  # type: ignore[return-value]


@dataclass
class SweepEngine:
    """Executor + cache: the one place sweep cells get turned into results.

    ``run_cells`` is the primitive — results in cell order, cache
    consulted per cell, duplicates coalesced, fresh results streamed to
    the cache as they finish. ``run`` additionally files accuracy results
    into a :class:`SweepResult` keyed by the cells' (system label,
    benchmark name).

    ``progress`` (or the per-call override) is called as
    ``progress(done, total, cell)`` for every finished cell — cache hits,
    fresh runs and duplicates alike. The engine is a context manager;
    leaving the ``with`` block shuts down a persistent worker pool.
    """

    executor: SerialExecutor | ProcessPoolExecutor = field(default_factory=SerialExecutor)
    cache: ResultCache | None = None
    progress: ProgressFn | None = None

    def run_cells(
        self,
        cells: Sequence[SweepCell],
        progress: ProgressFn | None = None,
    ) -> list[CellResult]:
        progress = progress if progress is not None else self.progress
        total = len(cells)
        done = 0
        results: dict[int, CellResult] = {}
        pending: list[int] = []
        keys: list[str] = []
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, str]] = []
        for index, cell in enumerate(cells):
            try:
                key = cell.content_hash()
            except Exception as exc:
                # A spec that cannot even be described (unknown benchmark,
                # unreadable trace) fails here in the parent; name the
                # cell instead of leaking a bare KeyError/OSError.
                raise _wrap_cell_error(cell, exc) from exc
            keys.append(key)
            if key in first_index:
                duplicates.append((index, key))
                continue
            first_index[key] = index
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[index] = _stamp(cached, cell)
                done += 1
                if progress is not None:
                    progress(done, total, cell)
            else:
                pending.append(index)
        if pending:

            def on_result(position: int, result: CellResult) -> None:
                nonlocal done
                done += 1
                if progress is not None:
                    progress(done, total, cells[pending[position]])

            fresh = self.executor.map_cells(
                [cells[i] for i in pending],
                on_result=on_result,
                cache=self.cache,
                keys=[keys[i] for i in pending],
            )
            for index, result in zip(pending, fresh):
                results[index] = result
        for index, key in duplicates:
            # Duplicates reuse their twin through the cache's lossless
            # codec — the same cheap reconstruction a cache hit performs,
            # far cheaper than deepcopying a stats object.
            twin = results[first_index[key]]
            results[index] = _stamp(clone_result(twin), cells[index])
            done += 1
            if progress is not None:
                progress(done, total, cells[index])
        return [results[index] for index in range(total)]

    def run(
        self,
        cells: Sequence[SweepCell],
        progress: ProgressFn | None = None,
    ) -> SweepResult:
        """Run accuracy cells and index the stats by (label, benchmark)."""
        sweep = SweepResult()
        for cell, result in zip(cells, self.run_cells(cells, progress=progress)):
            if not isinstance(result, RunStats):
                raise TypeError(
                    "SweepEngine.run expects accuracy cells; use run_cells "
                    "for timing cells"
                )
            sweep.add(cell.system_label, cell.bench_name, result)
        return sweep

    def close(self) -> None:
        """Shut down persistent workers / release memoized builds."""
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


def make_engine(
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    progress: ProgressFn | None = None,
) -> SweepEngine:
    """Build an engine from CLI-shaped knobs.

    ``jobs`` ≤ 1 selects the in-process serial executor; larger values a
    persistent process pool of that size. ``cache_dir`` of None disables
    caching. ``progress`` installs a per-cell completion callback.
    """
    executor = SerialExecutor() if jobs <= 1 else ProcessPoolExecutor(jobs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return SweepEngine(executor=executor, cache=cache, progress=progress)


# --- process-wide default engine ------------------------------------------
#
# Experiment modules route their grids through whatever engine is current,
# so `python -m repro run figure5 --jobs 8 --cache-dir .cache` accelerates
# every experiment without threading parameters through each signature.
# Because the engine (and with it the worker pool and the per-process
# build caches) persists between calls, consecutive experiments in one
# process share warm workers and warm builds.

_default_engine: SweepEngine | None = None


def get_default_engine() -> SweepEngine:
    """The engine experiments use when none is passed explicitly.

    Serial and cacheless unless :func:`set_default_engine` or
    :func:`use_engine` installed something else — the exact semantics of
    the original single-process sweep loop.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = SweepEngine()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> None:
    """Install (or with None, reset) the process-wide default engine."""
    global _default_engine
    _default_engine = engine


@contextlib.contextmanager
def use_engine(engine: SweepEngine | None) -> Iterator[SweepEngine]:
    """Temporarily install ``engine`` as the default (None = no change)."""
    if engine is None:
        yield get_default_engine()
        return
    previous = _default_engine
    set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
