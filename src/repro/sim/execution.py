"""Sweep-scale parallel execution engine.

Every experiment in §7 is a grid of (prophet × critic × size × future
bits × benchmark) cells. Cells are perfectly independent — each gets a
fresh program and fresh predictor state — so the grid is embarrassingly
parallel. This module turns a list of :class:`~repro.sim.specs.SweepCell`
descriptions into results through three cooperating pieces:

* :func:`run_cell` — the from-scratch work unit: rebuilds program and
  system from the cell's specs and runs the appropriate simulator. It is
  the *reference semantics* every faster path must match bit for bit.
* **Executors** — :class:`SerialExecutor` runs cells in the calling
  process; :class:`ProcessPoolExecutor` fans them out over a
  **persistent** ``concurrent.futures`` process pool that survives
  across ``map_cells`` calls, so interpreter spawn and imports are paid
  once per worker rather than once per grid. Both memoise program
  builds (:class:`ProgramBuildCache`): a worker compiles each distinct
  workload once and replays it for every system swept over it, resetting
  behaviour state between runs (compiled CFG transition tables survive —
  the expensive part). Both stream results as cells finish instead of
  returning one ordered batch.
* :class:`SweepEngine` — executor + optional
  :class:`~repro.sim.cache.ResultCache`. Before running, each cell's
  content hash is probed in the cache; only missing cells are executed.
  Fresh results are written back **incrementally as each cell finishes**
  (pool workers write their own results), so a killed sweep resumes from
  everything already computed. Duplicate cells inside one sweep (same
  hash under different labels) are simulated once and cloned through the
  cache's lossless codec. An optional progress callback fires per
  completed cell (the CLI's ``--progress``).

The equivalence of every path — serial, persistent pool, memoized
builds, cold cache then warm cache — is not an aspiration but a tested
invariant (``tests/sim/test_execution.py`` asserts field-by-field
equality of the resulting results against :func:`run_cell`, on mixed
accuracy/timing grids with trace-backed and duplicate cells).

A cell that raises does not surface as a bare pickled traceback from a
nameless worker: executors wrap the failure in
:class:`CellExecutionError`, which names the cell's labels and carries
its full spec (and the worker traceback), and the engine cancels
outstanding work.

Experiments pick up the process-wide default engine (see
:func:`get_default_engine`), which the CLI configures from ``--jobs``,
``--cache-dir``, ``--no-cache`` and ``--progress``.
"""

from __future__ import annotations

import contextlib
import inspect
import json
import math
import os
import traceback
from collections import OrderedDict
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence, Union

from repro.faults.workers import maybe_crash
from repro.sim.cache import ResultCache, clone_result
from repro.sim.driver import simulate
from repro.sim.metrics import RunStats
from repro.sim.specs import MODE_TIMING, ProgramSpec, SweepCell
from repro.sim.sweep import SweepResult

if TYPE_CHECKING:  # pipeline imports sim.driver; keep the runtime DAG acyclic
    from repro.pipeline.machine import PipelineResult
    from repro.workloads.program import Program

    CellResult = Union[RunStats, "PipelineResult"]
    #: Streaming hook: called with (index, result) as each cell finishes.
    OnResult = Callable[[int, "CellResult"], None]
    #: Progress hook: called with (done, total, cell) per finished cell.
    ProgressFn = Callable[[int, int, SweepCell], None]

#: Default per-process cap on memoized program builds (override with the
#: ``REPRO_BUILD_CACHE`` environment variable; ``0`` disables
#: memoization entirely, e.g. when bisecting a suspected stale-build
#: issue). Programs are a few MB each; eight covers a Table-1 suite
#: half without unbounded growth.
DEFAULT_BUILD_CACHE_CAPACITY = 8

# --- persistent trace-column cache ------------------------------------------
#
# The batched kernel's architectural-trace columns are a pure function of
# the program build key and prefix-stable in the branch count, so they
# can outlive the process. When ``REPRO_TRACE_CACHE`` names a cache URL
# (same grammar as result caches: a directory, ``http://...`` or
# ``tiered:local|remote``), every executor — including pool workers,
# which inherit the environment rather than pickling a handle — spills
# the trace memo through that backend and skips the one-time CFG walk on
# later runs.

_trace_store_ready = False


def _ensure_trace_store() -> None:
    global _trace_store_ready
    if _trace_store_ready:
        return
    _trace_store_ready = True
    url = os.environ.get("REPRO_TRACE_CACHE")
    if not url:
        return
    from repro.sim.batched import set_trace_store
    from repro.sim.cache import TraceColumnStore, cache_from_url

    set_trace_store(TraceColumnStore(cache_from_url(url)))


class CellExecutionError(RuntimeError):
    """A sweep cell failed: names the cell, carries its spec and traceback.

    Raised by every executor path in place of the cell's bare exception
    (which, from a pool worker, would otherwise surface as an unlabelled
    pickled traceback). The original cause is preserved via exception
    chaining in-process and as formatted text from workers.
    """

    def __init__(
        self,
        system_label: str,
        bench_name: str,
        spec_config: dict,
        cause: str,
        worker_traceback: str | None = None,
        cause_types: tuple[str, ...] = (),
    ) -> None:
        self.system_label = system_label
        self.bench_name = bench_name
        self.spec_config = spec_config
        self.cause = cause
        self.worker_traceback = worker_traceback
        #: Class names in the original exception's MRO (most derived
        #: first) — lets callers match on base classes (e.g. "OSError"
        #: catches FileNotFoundError) even across the pickle boundary,
        #: where the original exception object is not available.
        self.cause_types = tuple(cause_types)
        message = (
            f"sweep cell {system_label!r} × {bench_name!r} failed: {cause}\n"
            f"  cell spec: {json.dumps(spec_config, sort_keys=True)}"
        )
        if worker_traceback:
            message += f"\n  worker traceback:\n{worker_traceback}"
        super().__init__(message)

    def caused_by(self, *type_names: str) -> bool:
        """Whether the original exception is (a subclass of) any name."""
        return any(name in self.cause_types for name in type_names)

    def __reduce__(self):  # pickles across the pool boundary, losslessly
        return (
            CellExecutionError,
            (
                self.system_label,
                self.bench_name,
                self.spec_config,
                self.cause,
                self.worker_traceback,
                self.cause_types,
            ),
        )


def _wrap_cell_error(
    cell: SweepCell, exc: Exception, *, in_worker: bool = False
) -> CellExecutionError:
    # In-process failures chain the original exception (``raise ... from``),
    # which already carries the real traceback; only failures crossing the
    # pool's pickle boundary need it captured as text.
    return CellExecutionError(
        system_label=cell.system_label,
        bench_name=cell.bench_name,
        spec_config=cell.to_config(),
        cause=f"{type(exc).__name__}: {exc}",
        worker_traceback=traceback.format_exc() if in_worker else None,
        cause_types=tuple(base.__name__ for base in type(exc).__mro__),
    )


class WorkerPoolError(RuntimeError):
    """The worker pool died and bounded retry could not contain it.

    Unlike :class:`CellExecutionError` there is no single cell to blame —
    the interpreter hosting it vanished (OOM kill, segfault, machine
    signal). After a pool break the executor respawns the pool and
    re-runs the unfinished cells one at a time (so repeat crashes become
    attributable to a cell); only when a cell exceeds its
    :class:`FailurePolicy` crash budget — and quarantine is off — does
    this error surface. The pool respawns on the next use either way,
    and results already computed remain in the cache.
    """


@dataclass(frozen=True)
class FailurePolicy:
    """How the pool executor responds when workers die mid-sweep.

    ``worker_crash_retries`` bounds how many times one cell may be
    re-run after taking a worker down with it (so recovery always
    terminates). A cell that exhausts the budget either aborts the sweep
    with :class:`WorkerPoolError` (``quarantine=False``, the historical
    behaviour) or is **quarantined**: reported as a
    :class:`CellFailure` in the sweep result while every other cell
    completes normally (``quarantine=True`` — what the daemon and the
    chaos harness use, so one poisoned cell cannot sink a whole job).
    """

    worker_crash_retries: int = 2
    quarantine: bool = False


DEFAULT_FAILURE_POLICY = FailurePolicy()

#: The daemon-side default: contain a poisoned cell, finish the job.
QUARANTINE_FAILURE_POLICY = FailurePolicy(quarantine=True)


@dataclass(frozen=True)
class CellFailure:
    """A quarantined cell: what it was, how it died, how often we tried.

    Appears *in place of* a result in ``map_cells``/``run_cells`` output
    (and under :attr:`~repro.sim.sweep.SweepResult.failures`) when a
    quarantining :class:`FailurePolicy` gave up on the cell. Carries the
    cell's labels and spec so a report names the culprit precisely.
    """

    system_label: str
    bench_name: str
    kind: str
    attempts: int
    message: str
    spec_config: dict

    @classmethod
    def worker_crash(cls, cell: SweepCell, attempts: int, message: str) -> "CellFailure":
        return cls(
            system_label=cell.system_label,
            bench_name=cell.bench_name,
            kind="worker-crash",
            attempts=attempts,
            message=message,
            spec_config=cell.to_config(),
        )

    def relabel(self, cell: SweepCell) -> "CellFailure":
        """The same failure filed under another (duplicate) cell's labels."""
        from dataclasses import replace

        return replace(
            self, system_label=cell.system_label, bench_name=cell.bench_name
        )

    def describe(self) -> dict:
        """JSON-safe record for job results and chaos reports."""
        return {
            "system": self.system_label,
            "benchmark": self.bench_name,
            "kind": self.kind,
            "attempts": self.attempts,
            "message": self.message,
        }


class ProgramBuildCache:
    """Per-process LRU of built programs, keyed by build identity.

    ``program_for(spec)`` returns a ready-to-run
    :class:`~repro.workloads.program.Program` for the spec, building it
    only when no behaviourally identical program (equal
    :meth:`~repro.sim.specs.ProgramSpec.build_key`) is cached. Reused
    programs are ``reset()`` — behaviour state and replay cursors rewind,
    while the lazily compiled CFG transition tables (the expensive part
    of a build) survive. :func:`simulate` and the timing machine reset
    again on entry, so a cached program is indistinguishable from a fresh
    build; the differential tests pin that down.

    Capacity-evicted programs are reset too, which closes any open trace
    reader they hold.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is None:
            raw = os.environ.get("REPRO_BUILD_CACHE")
            if raw is None or raw == "":
                capacity = DEFAULT_BUILD_CACHE_CAPACITY
            else:
                try:
                    capacity = int(raw)
                except ValueError:
                    # Loud, not silent: a malformed override must never
                    # masquerade as the default (the knob exists for
                    # stale-build bisection, where that would mislead).
                    raise ValueError(
                        f"REPRO_BUILD_CACHE must be an integer >= 0, got {raw!r}"
                    ) from None
        if capacity < 0:
            raise ValueError("build cache capacity must be >= 0 (0 disables memoization)")
        self.capacity = capacity
        self._programs: OrderedDict[str, Program] = OrderedDict()
        #: Telemetry (reported by tools/profile_sweep.py).
        self.builds = 0
        self.reuses = 0
        _ensure_trace_store()

    def program_for(self, spec: ProgramSpec) -> "Program":
        key = spec.build_key()
        program = self._programs.get(key)
        if program is None:
            program = spec.build()
            # Annotate the build identity so the batched kernel's trace
            # memo can spill through the persistent trace-column store
            # (ad-hoc programs without the stamp never touch it). The
            # fused replay context rides on the program object itself,
            # so same-program cells in a chunk share all per-program
            # precompute automatically.
            program._build_key = key
            self.builds += 1
            self._programs[key] = program
            while len(self._programs) > self.capacity:
                _, evicted = self._programs.popitem(last=False)
                evicted.reset()
        else:
            self.reuses += 1
            self._programs.move_to_end(key)
            program.reset()
        return program

    def clear(self) -> None:
        for program in self._programs.values():
            program.reset()
        self._programs.clear()

    def __len__(self) -> int:
        return len(self._programs)


def _compute_cell(cell: SweepCell, builds: ProgramBuildCache) -> CellResult:
    """Run one cell against a (possibly memoized) program build."""
    program = builds.program_for(cell.program)
    system = cell.system.build()
    if cell.mode == MODE_TIMING:
        from repro.pipeline.machine import TimedMachine

        result: CellResult = TimedMachine(program, system).run(
            cell.config.n_branches, warmup=cell.config.warmup
        )
    else:
        result = simulate(program, system, cell.config)
    # Release per-run resources now, not at reuse/eviction time: for
    # trace-backed programs this closes the replay reader, so a finished
    # sweep holds no open handles on the trace files it read.
    program.reset()
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


def run_cell(cell: SweepCell) -> CellResult:
    """Execute one sweep cell entirely from scratch (reference semantics).

    Rebuilds the program and prediction system from their specs so the
    result depends only on the cell's content — never on which process,
    in which order, or against which cached build it runs — then stamps
    the cell's display labels. The memoized executor paths are proven
    field-by-field identical to this function.
    """
    program = cell.program.build()
    system = cell.system.build()
    if cell.mode == MODE_TIMING:
        from repro.pipeline.machine import TimedMachine

        result: CellResult = TimedMachine(program, system).run(
            cell.config.n_branches, warmup=cell.config.warmup
        )
    else:
        result = simulate(program, system, cell.config)
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


def _stamp(result: CellResult, cell: SweepCell) -> CellResult:
    """Re-apply a cell's labels (cache entries may carry another label)."""
    result.system = cell.system_label
    result.benchmark = cell.bench_name
    return result


# --- worker side -----------------------------------------------------------
#
# One build cache per worker process, created lazily on the first chunk.
# With cells grouped by program before submission, a worker compiles each
# distinct workload at most once per sweep — a 12-system × 8-benchmark
# grid costs ~8 builds per worker instead of 96 total.

_worker_builds: ProgramBuildCache | None = None


def _worker_build_cache() -> ProgramBuildCache:
    global _worker_builds
    if _worker_builds is None:
        _worker_builds = ProgramBuildCache()
    return _worker_builds


def _run_chunk(
    cells: Sequence[SweepCell],
    cache: ResultCache | None,
    keys: Sequence[str] | None,
) -> list[CellResult]:
    """Pool work unit: run a same-program chunk, writing results back.

    Each finished cell is written to the shared result cache *before* the
    chunk returns (atomic, last-writer-wins), so a sweep killed mid-chunk
    loses at most the one cell in flight per worker.
    """
    builds = _worker_build_cache()
    results: list[CellResult] = []
    for position, cell in enumerate(cells):
        # Fault-injection hook (no-op unless REPRO_FAULTS is set): fires
        # at cell start, before compute and write-back, so a killed
        # worker has published nothing and the retry is bit-identical.
        maybe_crash(cell)
        try:
            result = _compute_cell(cell, builds)
            if cache is not None:
                # Inside the wrap: a full disk / read-only cache dir must
                # surface with the cell's name too, not as a bare OSError.
                cache.put(keys[position] if keys else cell.content_hash(), result)
        except Exception as exc:
            raise _wrap_cell_error(cell, exc, in_worker=True) from exc
        results.append(result)
    return results


class SerialExecutor:
    """Runs cells one after another in the calling process.

    Builds are memoized exactly as in pool workers (an engine-owned
    :class:`ProgramBuildCache`), results stream through ``on_result`` in
    cell order, and fresh results are written to ``cache`` as they
    finish.
    """

    jobs = 1

    def __init__(self) -> None:
        self.builds = ProgramBuildCache()

    def map_cells(
        self,
        cells: Sequence[SweepCell],
        on_result: OnResult | None = None,
        cache: ResultCache | None = None,
        keys: Sequence[str] | None = None,
        failure_policy: "FailurePolicy | None" = None,
    ) -> list[CellResult]:
        # ``failure_policy`` is accepted for interface symmetry with the
        # pool executor; in-process cells cannot take a worker down.
        results: list[CellResult] = []
        for index, cell in enumerate(cells):
            try:
                result = _compute_cell(cell, self.builds)
                if cache is not None:
                    cache.put(keys[index] if keys else cell.content_hash(), result)
            except CellExecutionError:
                raise
            except Exception as exc:
                raise _wrap_cell_error(cell, exc) from exc
            if on_result is not None:
                on_result(index, result)
            results.append(result)
        return results

    def shutdown(self) -> None:
        """Release memoized builds (symmetry with the pool executor)."""
        self.builds.clear()


class ProcessPoolExecutor:
    """Fans cells out over a **persistent** process pool.

    The underlying ``concurrent.futures`` pool is created lazily on first
    use and survives across ``map_cells`` calls (and therefore across the
    grids of a whole experiment run), so worker spawn and module imports
    are paid once per ``jobs`` — not once per grid. Call
    :meth:`shutdown` (or use the owning engine as a context manager) to
    release the workers; a broken pool is discarded and respawned on the
    next call.

    Scheduling is dynamic: cells are grouped by program build identity,
    split into small same-program chunks, and consumed by whichever
    worker frees up first (``as_completed``), so a long timing cell no
    longer straggles behind a static chunk assignment. Grouping keeps
    each worker's :class:`ProgramBuildCache` hot: in the worst case every
    worker builds every distinct workload once; in the common case far
    fewer.

    Nothing stateful crosses the pickle boundary except the cells, the
    (path-only) result-cache handle and the finished results; results are
    reassembled in submission order, so a sweep's outcome is independent
    of worker scheduling.
    """

    #: Upper bound on cells per submitted chunk. Small enough that
    #: streaming write-back and progress stay responsive; large enough
    #: to amortise per-task pickling on big grids.
    MAX_CHUNK = 8

    def __init__(self, jobs: int | None = None) -> None:
        if jobs is not None and jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs or os.cpu_count() or 1
        self._pool: futures.ProcessPoolExecutor | None = None
        self._serial: SerialExecutor | None = None
        #: Crash-recovery telemetry, cumulative over the executor's life
        #: (read by the chaos harness and the daemon's /stats).
        self.worker_crashes = 0
        self.cells_retried = 0
        self.cells_quarantined = 0

    # -- pool lifecycle -----------------------------------------------------

    def _ensure_pool(self) -> futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = futures.ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def _discard_pool(self) -> None:
        """Drop a broken pool (joins the manager thread; respawn on use)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False)
            self._pool = None

    def shutdown(self) -> None:
        """Stop the persistent workers (idempotent; pool respawns on use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._serial is not None:
            self._serial.shutdown()
            self._serial = None

    def terminate(self) -> None:
        """Forcibly kill the worker processes (the job-timeout path).

        Unlike :meth:`shutdown`, does not wait for in-flight cells: each
        worker gets SIGTERM, the broken pool is discarded, and the next
        ``map_cells`` respawns a healthy one. Reaches into the pool's
        ``_processes`` map — a private but long-stable attribute; if a
        future stdlib drops it, this degrades to a plain discard and the
        zombie workers die with the daemon process instead.
        """
        pool = self._pool
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except (OSError, ValueError):
                pass  # already dead or never started
        self._discard_pool()

    # -- scheduling ---------------------------------------------------------

    def _chunks(self, cells: Sequence[SweepCell]) -> list[list[int]]:
        """Indices grouped by program build key, split into small chunks."""
        groups: OrderedDict[str, list[int]] = OrderedDict()
        for index, cell in enumerate(cells):
            groups.setdefault(cell.program.build_key(), []).append(index)
        chunks: list[list[int]] = []
        for indices in groups.values():
            per_chunk = min(self.MAX_CHUNK, max(1, math.ceil(len(indices) / self.jobs)))
            for start in range(0, len(indices), per_chunk):
                chunks.append(indices[start : start + per_chunk])
        return chunks

    def map_cells(
        self,
        cells: Sequence[SweepCell],
        on_result: OnResult | None = None,
        cache: ResultCache | None = None,
        keys: Sequence[str] | None = None,
        failure_policy: FailurePolicy | None = None,
    ) -> list[CellResult]:
        if not cells:
            return []
        if self.jobs == 1 or len(cells) == 1:
            # A 1-job "pool" (or a 1-cell grid) is just ceremony; keep
            # semantics identical (memoized, streaming) without worker
            # spawn and pickle round trips.
            if self._serial is None:
                self._serial = SerialExecutor()
            return self._serial.map_cells(cells, on_result=on_result, cache=cache, keys=keys)
        policy = failure_policy if failure_policy is not None else DEFAULT_FAILURE_POLICY
        pool = self._ensure_pool()
        results: list[CellResult | None] = [None] * len(cells)
        finished: set[int] = set()
        submitted: dict[futures.Future, list[int]] = {}

        def harvest(index: int, result: CellResult) -> None:
            results[index] = result
            finished.add(index)
            if on_result is not None:
                on_result(index, result)

        try:
            for chunk in self._chunks(cells):
                chunk_keys = [keys[i] for i in chunk] if keys is not None else None
                future = pool.submit(
                    _run_chunk, [cells[i] for i in chunk], cache, chunk_keys
                )
                submitted[future] = chunk
            for future in futures.as_completed(submitted):
                for index, result in zip(submitted[future], future.result()):
                    harvest(index, result)
        except BrokenProcessPool:
            # A dead worker poisons the whole pool. Salvage every chunk
            # that finished before the break, discard the remains, then
            # contain the damage: re-run the unfinished cells one at a
            # time so a repeat crash is attributable to a single cell.
            self.worker_crashes += 1
            for future, chunk in submitted.items():
                if not future.done() or future.cancelled():
                    continue
                if future.exception() is not None:
                    continue
                for index, result in zip(chunk, future.result()):
                    if index not in finished:
                        harvest(index, result)
            for future in submitted:
                future.cancel()
            self._discard_pool()
            remaining = [i for i in range(len(cells)) if i not in finished]
            self._contain_crashes(cells, remaining, harvest, cache, keys, policy)
        except BaseException:
            # Fail fast: a cell error (or interrupt) cancels every chunk
            # that has not started; already-running chunks finish in the
            # background and their results stay in the cache.
            for future in submitted:
                future.cancel()
            raise
        return results  # type: ignore[return-value]

    def _contain_crashes(
        self,
        cells: Sequence[SweepCell],
        remaining: Sequence[int],
        harvest: Callable[[int, "CellResult"], None],
        cache: ResultCache | None,
        keys: Sequence[str] | None,
        policy: FailurePolicy,
    ) -> None:
        """Finish ``remaining`` cells after a pool break, one at a time.

        Singleton chunks trade the tail's parallelism for attribution:
        when a worker dies here, exactly one cell was in flight, so the
        crash count lands on the right cell. A cell that exceeds
        ``policy.worker_crash_retries`` is quarantined (reported as a
        :class:`CellFailure`) or, without quarantine, aborts with
        :class:`WorkerPoolError` naming it.
        """
        for index in remaining:
            cell = cells[index]
            attempts = 0
            while True:
                attempts += 1
                key_arg = [keys[index]] if keys is not None else None
                future = self._ensure_pool().submit(_run_chunk, [cell], cache, key_arg)
                try:
                    (result,) = future.result()
                except BrokenProcessPool as exc:
                    self.worker_crashes += 1
                    self._discard_pool()
                    if attempts <= policy.worker_crash_retries:
                        self.cells_retried += 1
                        continue
                    message = (
                        f"cell {cell.system_label!r} × {cell.bench_name!r} "
                        f"killed a sweep worker {attempts} time(s) ({exc})"
                    )
                    if policy.quarantine:
                        self.cells_quarantined += 1
                        harvest(index, CellFailure.worker_crash(cell, attempts, message))
                        break
                    raise WorkerPoolError(
                        f"{message} — likely killed by the OS (out of memory?) "
                        "or crashed; the pool will respawn on the next run, and "
                        "results already computed remain in the cache"
                    ) from exc
                harvest(index, result)
                break


@dataclass
class SweepEngine:
    """Executor + cache: the one place sweep cells get turned into results.

    ``run_cells`` is the primitive — results in cell order, cache
    consulted per cell, duplicates coalesced, fresh results streamed to
    the cache as they finish. ``run`` additionally files accuracy results
    into a :class:`SweepResult` keyed by the cells' (system label,
    benchmark name).

    ``progress`` (or the per-call override) is called as
    ``progress(done, total, cell)`` for every finished cell — cache hits,
    fresh runs and duplicates alike. The engine is a context manager;
    leaving the ``with`` block shuts down a persistent worker pool.
    """

    executor: SerialExecutor | ProcessPoolExecutor = field(default_factory=SerialExecutor)
    cache: ResultCache | None = None
    progress: ProgressFn | None = None
    #: How worker crashes are contained (bounded retry, quarantine).
    failure_policy: FailurePolicy = DEFAULT_FAILURE_POLICY

    def run_cells(
        self,
        cells: Sequence[SweepCell],
        progress: ProgressFn | None = None,
    ) -> list[CellResult]:
        progress = progress if progress is not None else self.progress
        total = len(cells)
        done = 0
        results: dict[int, CellResult] = {}
        pending: list[int] = []
        keys: list[str] = []
        first_index: dict[str, int] = {}
        duplicates: list[tuple[int, str]] = []
        for index, cell in enumerate(cells):
            try:
                key = cell.content_hash()
            except Exception as exc:
                # A spec that cannot even be described (unknown benchmark,
                # unreadable trace) fails here in the parent; name the
                # cell instead of leaking a bare KeyError/OSError.
                raise _wrap_cell_error(cell, exc) from exc
            keys.append(key)
            if key in first_index:
                duplicates.append((index, key))
                continue
            first_index[key] = index
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                results[index] = _stamp(cached, cell)
                done += 1
                if progress is not None:
                    progress(done, total, cell)
            else:
                pending.append(index)
        if pending:

            def on_result(position: int, result: CellResult) -> None:
                nonlocal done
                done += 1
                if progress is not None:
                    progress(done, total, cells[pending[position]])

            # Duck-typed executors predating FailurePolicy (tests, user
            # harnesses) keep working: only pass the policy to map_cells
            # signatures that declare it.
            extra: dict = {}
            try:
                map_params = inspect.signature(self.executor.map_cells).parameters
            except (TypeError, ValueError):
                map_params = {}
            if "failure_policy" in map_params:
                extra["failure_policy"] = self.failure_policy
            fresh = self.executor.map_cells(
                [cells[i] for i in pending],
                on_result=on_result,
                cache=self.cache,
                keys=[keys[i] for i in pending],
                **extra,
            )
            for index, result in zip(pending, fresh):
                results[index] = result
        for index, key in duplicates:
            twin = results[first_index[key]]
            if isinstance(twin, CellFailure):
                # A duplicate of a quarantined cell would fail the same
                # way; file the failure under its own labels.
                results[index] = twin.relabel(cells[index])
            else:
                # Duplicates reuse their twin through the cache's lossless
                # codec — the same cheap reconstruction a cache hit performs,
                # far cheaper than deepcopying a stats object.
                results[index] = _stamp(clone_result(twin), cells[index])
            done += 1
            if progress is not None:
                progress(done, total, cells[index])
        return [results[index] for index in range(total)]

    def run(
        self,
        cells: Sequence[SweepCell],
        progress: ProgressFn | None = None,
    ) -> SweepResult:
        """Run accuracy cells and index the stats by (label, benchmark).

        Quarantined cells (see :class:`FailurePolicy`) are filed under
        ``SweepResult.failures`` instead of aborting the sweep.
        """
        sweep = SweepResult()
        for cell, result in zip(cells, self.run_cells(cells, progress=progress)):
            if isinstance(result, CellFailure):
                sweep.add_failure(cell.system_label, cell.bench_name, result)
                continue
            if not isinstance(result, RunStats):
                raise TypeError(
                    "SweepEngine.run expects accuracy cells; use run_cells "
                    "for timing cells"
                )
            sweep.add(cell.system_label, cell.bench_name, result)
        return sweep

    def close(self) -> None:
        """Shut down persistent workers / release memoized builds."""
        shutdown = getattr(self.executor, "shutdown", None)
        if shutdown is not None:
            shutdown()

    def __enter__(self) -> "SweepEngine":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()


def make_engine(
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    progress: ProgressFn | None = None,
    failure_policy: FailurePolicy | None = None,
) -> SweepEngine:
    """Build an engine from CLI-shaped knobs.

    ``jobs`` ≤ 1 selects the in-process serial executor; larger values a
    persistent process pool of that size. ``cache_dir`` of None disables
    caching. ``progress`` installs a per-cell completion callback.
    ``failure_policy`` overrides the default crash containment (the
    daemon passes :data:`QUARANTINE_FAILURE_POLICY`).
    """
    executor = SerialExecutor() if jobs <= 1 else ProcessPoolExecutor(jobs)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    return SweepEngine(
        executor=executor,
        cache=cache,
        progress=progress,
        failure_policy=failure_policy or DEFAULT_FAILURE_POLICY,
    )


# --- process-wide default engine ------------------------------------------
#
# Experiment modules route their grids through whatever engine is current,
# so `python -m repro run figure5 --jobs 8 --cache-dir .cache` accelerates
# every experiment without threading parameters through each signature.
# Because the engine (and with it the worker pool and the per-process
# build caches) persists between calls, consecutive experiments in one
# process share warm workers and warm builds.

_default_engine: SweepEngine | None = None


def get_default_engine() -> SweepEngine:
    """The engine experiments use when none is passed explicitly.

    Serial and cacheless unless :func:`set_default_engine` or
    :func:`use_engine` installed something else — the exact semantics of
    the original single-process sweep loop.
    """
    global _default_engine
    if _default_engine is None:
        _default_engine = SweepEngine()
    return _default_engine


def set_default_engine(engine: SweepEngine | None) -> None:
    """Install (or with None, reset) the process-wide default engine."""
    global _default_engine
    _default_engine = engine


@contextlib.contextmanager
def use_engine(engine: SweepEngine | None) -> Iterator[SweepEngine]:
    """Temporarily install ``engine`` as the default (None = no change)."""
    if engine is None:
        yield get_default_engine()
        return
    previous = _default_engine
    set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
