"""Parameter sweeps over (benchmark × system configuration).

Experiments in §7 are grids: prophets × critics × sizes × future bits ×
benchmarks. :func:`run_sweep` executes such a grid with fresh predictor
state per cell and returns a :class:`SweepResult` that experiment modules
turn into the paper's tables and series.

Execution and caching model
---------------------------

Cells are independent — each gets a freshly generated program and fresh
predictor tables — and deterministic in their description, so a sweep
can be decomposed into self-describing
:class:`~repro.sim.specs.SweepCell` tasks and handed to the
:class:`~repro.sim.execution.SweepEngine`:

* **Executor** — cells run either in-process
  (:class:`~repro.sim.execution.SerialExecutor`) or across a
  ``concurrent.futures`` process pool
  (:class:`~repro.sim.execution.ProcessPoolExecutor`, ``--jobs N`` on
  the CLI). The executor cannot change results, only the wall clock; the
  differential tests assert bit-for-bit equality between both paths.
* **Cache** — with a :class:`~repro.sim.cache.ResultCache` attached
  (``--cache-dir`` on the CLI), each cell is keyed by a SHA-256 over its
  content (system spec, resolved workload profile, simulation config,
  format version). Re-running an experiment only simulates cells whose
  content changed; everything else is served from disk, bit-for-bit
  identical to a fresh run.

Describe sweeps with :class:`~repro.sim.specs.SystemSpec` /
:class:`~repro.sim.specs.ProgramSpec` values to get both behaviours.
Specs reach every predictor in the registry at any geometry and
round-trip through JSON (``docs/CONFIG.md``); the CLI's ``sweep`` verb
runs whole config-file grids this way. Plain factory callables are
still accepted for ad-hoc sweeps, but they cannot be pickled or
content-hashed, so they always run serially in-process with no caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import SimpleNamespace
from typing import Callable

from repro.core.hybrid import PredictionSystem
from repro.sim.driver import SimulationConfig, simulate
from repro.sim.metrics import RunStats
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec
from repro.workloads.program import Program

#: A sweep cell's system: a spec (parallelisable, cacheable) or a bare
#: factory producing a *fresh* system (legacy, in-process only).
SystemFactory = Callable[[], PredictionSystem]
ProgramFactory = Callable[[], Program]


@dataclass
class SweepResult:
    """Results of a sweep, indexed by (system label, benchmark name).

    ``failures`` holds cells the engine *quarantined* instead of running
    to completion (a cell that repeatedly killed pool workers, under a
    quarantining :class:`~repro.sim.execution.FailurePolicy`); every
    other cell's result is present and unaffected. Values are
    :class:`~repro.sim.execution.CellFailure` records.
    """

    runs: dict[tuple[str, str], RunStats] = field(default_factory=dict)
    failures: dict[tuple[str, str], object] = field(default_factory=dict)

    def add(self, system_label: str, bench_name: str, stats: RunStats) -> None:
        self.runs[(system_label, bench_name)] = stats

    def add_failure(self, system_label: str, bench_name: str, failure) -> None:
        self.failures[(system_label, bench_name)] = failure

    def get(self, system_label: str, bench_name: str) -> RunStats:
        try:
            return self.runs[(system_label, bench_name)]
        except KeyError:
            if (system_label, bench_name) in self.failures:
                failure = self.failures[(system_label, bench_name)]
                raise KeyError(
                    f"cell {system_label!r} × {bench_name!r} was quarantined "
                    f"instead of run: {getattr(failure, 'message', failure)}"
                ) from None
            raise KeyError(
                f"no run for system {system_label!r} on benchmark {bench_name!r}; "
                f"systems: {self.system_labels()}; benchmarks: {self.bench_names()}"
            ) from None

    def system_labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for system_label, _ in self.runs:
            seen.setdefault(system_label)
        return list(seen)

    def bench_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for _, bench in self.runs:
            seen.setdefault(bench)
        return list(seen)

    def average_misp_per_kuops(self, system_label: str) -> float:
        """Arithmetic mean of misp/Kuops across benchmarks (paper's AVG)."""
        values = [
            stats.misp_per_kuops
            for (label, _), stats in self.runs.items()
            if label == system_label
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def aggregate(self, system_label: str) -> RunStats:
        """Merge all benchmarks' counters for one system (pooled rates)."""
        merged = RunStats(system=system_label, benchmark="ALL")
        for (label, _), stats in self.runs.items():
            if label == system_label:
                merged.merge(stats)
        return merged


def _as_program_spec(value: ProgramSpec | str) -> ProgramSpec:
    return ProgramSpec(benchmark=value) if isinstance(value, str) else value


def run_sweep(
    systems: dict[str, SystemSpec | SystemFactory],
    benchmarks: dict[str, ProgramSpec | str | ProgramFactory],
    config: SimulationConfig | None = None,
    engine=None,
    progress=None,
) -> SweepResult:
    """Run every system on every benchmark, fresh state per cell.

    When every system is a :class:`SystemSpec` and every benchmark a
    :class:`ProgramSpec` or benchmark name, the grid routes through the
    sweep engine (``engine``, or the process-wide default — see
    :func:`repro.sim.execution.get_default_engine`) and gains parallel
    execution, result caching and streaming per-cell ``progress``
    callbacks. Grids containing bare factory callables fall back to the
    in-process serial loop (``progress`` still fires per cell).
    """
    config = config or SimulationConfig()
    spec_based = all(isinstance(s, SystemSpec) for s in systems.values()) and all(
        isinstance(b, (ProgramSpec, str)) for b in benchmarks.values()
    )
    if spec_based:
        from repro.sim.execution import get_default_engine

        cells = [
            SweepCell(
                system_label=system_label,
                bench_name=bench_name,
                system=system,
                program=_as_program_spec(program),
                config=config,
            )
            for bench_name, program in benchmarks.items()
            for system_label, system in systems.items()
        ]
        engine = engine if engine is not None else get_default_engine()
        return engine.run(cells, progress=progress)

    result = SweepResult()
    done = 0
    total = len(benchmarks) * len(systems)
    for bench_name, program_factory in benchmarks.items():
        for system_label, system_factory in systems.items():
            program = (
                _as_program_spec(program_factory).build()
                if isinstance(program_factory, (ProgramSpec, str))
                else program_factory()
            )
            system = (
                system_factory.build()
                if isinstance(system_factory, SystemSpec)
                else system_factory()
            )
            stats = simulate(program, system, config)
            stats.system = system_label
            result.add(system_label, bench_name, stats)
            done += 1
            if progress is not None:
                # Factory cells have no spec; progress consumers are
                # promised (at least) the two display labels.
                progress(done, total, SimpleNamespace(
                    system_label=system_label, bench_name=bench_name,
                ))
    return result
