"""Parameter sweeps over (benchmark × system configuration).

Experiments in §7 are grids: prophets × critics × sizes × future bits ×
benchmarks. :func:`run_sweep` executes such a grid with fresh predictor
state per cell and returns a :class:`SweepResult` that experiment modules
turn into the paper's tables and series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.hybrid import PredictionSystem
from repro.sim.driver import SimulationConfig, simulate
from repro.sim.metrics import RunStats
from repro.workloads.program import Program

#: A sweep cell: label → factory producing a *fresh* system.
SystemFactory = Callable[[], PredictionSystem]
ProgramFactory = Callable[[], Program]


@dataclass
class SweepResult:
    """Results of a sweep, indexed by (system label, benchmark name)."""

    runs: dict[tuple[str, str], RunStats] = field(default_factory=dict)

    def add(self, system_label: str, bench_name: str, stats: RunStats) -> None:
        self.runs[(system_label, bench_name)] = stats

    def get(self, system_label: str, bench_name: str) -> RunStats:
        return self.runs[(system_label, bench_name)]

    def system_labels(self) -> list[str]:
        seen: dict[str, None] = {}
        for system_label, _ in self.runs:
            seen.setdefault(system_label)
        return list(seen)

    def bench_names(self) -> list[str]:
        seen: dict[str, None] = {}
        for _, bench in self.runs:
            seen.setdefault(bench)
        return list(seen)

    def average_misp_per_kuops(self, system_label: str) -> float:
        """Arithmetic mean of misp/Kuops across benchmarks (paper's AVG)."""
        values = [
            stats.misp_per_kuops
            for (label, _), stats in self.runs.items()
            if label == system_label
        ]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def aggregate(self, system_label: str) -> RunStats:
        """Merge all benchmarks' counters for one system (pooled rates)."""
        merged = RunStats(system=system_label, benchmark="ALL")
        for (label, _), stats in self.runs.items():
            if label == system_label:
                merged.merge(stats)
        return merged


def run_sweep(
    systems: dict[str, SystemFactory],
    benchmarks: dict[str, ProgramFactory],
    config: SimulationConfig | None = None,
) -> SweepResult:
    """Run every system on every benchmark, fresh state per cell."""
    result = SweepResult()
    for bench_name, program_factory in benchmarks.items():
        for system_label, system_factory in systems.items():
            program = program_factory()
            system = system_factory()
            stats = simulate(program, system, config)
            stats.system = system_label
            result.add(system_label, bench_name, stats)
    return result
