"""Batched structure-of-arrays simulation kernel.

An alternative backend for :func:`repro.sim.driver.simulate`, selected
via ``SimulationConfig.backend = "batched"``. Same machines, same event
order, same numbers — the differential tests pin it bit-for-bit against
the scalar loop and the frozen reference kernel — but organised around
flat parallel arrays instead of pooled handle objects:

* the committed branch stream is prediction-independent, so the
  architectural executor resolves it **once, up front**, into
  structure-of-arrays trace columns; per-branch quantities that depend
  only on the branch pc — BTB set/tag pairs, each predictor's pc-side
  index constants — are then precomputed in one vectorized numpy pass;
* the in-flight window lives in **structure-of-arrays rings** (one plain
  list per field) instead of a ring of ``InflightBranch`` objects;
* predictor/BTB/RAS/walker operations are **fused into the kernel**: per
  branch the loop does raw list indexing and integer arithmetic instead
  of a stack of method calls;
* while the front end sits on the committed path, a fetch is pure column
  reads plus one table probe — the CFG walk and RAS maintenance only
  run for wrong-path fetches between a divergence and its flush.

Memory note: the trace columns make a batched run O(n_branches) in
memory (a handful of machine words per branch) where the scalar loop is
O(window). That is the deliberate trade for throughput.

``simulate_batched`` specializes the system shapes the sweeps actually
run — :class:`SinglePredictorSystem` and :class:`ProphetCriticSystem`
over the table predictors (2bc-gskew, gshare, gas, bimodal) plus the
perceptron, with the tagged-gshare and filtered-perceptron critics —
and returns None for anything else (including when numpy is
unavailable), telling the driver to fall back to the scalar loop.

Two amortization layers sit on top of the kernels:

* :class:`FusedReplayContext` — shared precompute (trace-derived
  columns, flat CFG tables, fused per-branch rows) for replaying many
  systems over one program in a sweep, plumbed in via
  ``simulate_batched(..., shared=ctx)`` / :func:`fused_replay`;
* a process-wide :func:`set_trace_store` hook that spills the memoized
  architectural-trace columns through a persistent
  :class:`repro.sim.cache.CacheBackend`, keyed by the program's build
  key and prefix-stable in branch count.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    np = None

from repro.core.critiques import CritiqueKind
from repro.core.hybrid import ProphetCriticSystem, SinglePredictorSystem
from repro.engine.btb import BranchTargetBuffer
from repro.engine.executor import ArchitecturalExecutor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.filtered_perceptron import FilteredPerceptronPredictor
from repro.predictors.gas import GAsPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tagged_gshare import TaggedGsharePredictor
from repro.sim.driver import SimulationDesyncError
from repro.sim.metrics import RunStats

#: Must match SpeculativeWalker/ArchitecturalExecutor defaults: the
#: compiled-CFG pair limit and the drop-oldest RAS bound.
_RAS_CAPACITY = 64

_GSKEW, _GSHARE, _GAS, _BIMODAL, _PERC = 1, 2, 3, 4, 5

#: Exact-type dispatch: subclasses may override behaviour the fused
#: kernels inline, so they fall back to the scalar loop.
_PROPHET_KINDS = {
    TwoBcGskewPredictor: _GSKEW,
    GsharePredictor: _GSHARE,
    GAsPredictor: _GAS,
    BimodalPredictor: _BIMODAL,
    PerceptronPredictor: _PERC,
}

_CR_TAGGED, _CR_FPERC = 1, 2

#: Critic shapes the hybrid kernel fuses (exact types, like the prophets).
_CRITIC_KINDS = {
    TaggedGsharePredictor: _CR_TAGGED,
    FilteredPerceptronPredictor: _CR_FPERC,
}

#: Registered predictor kinds that *intentionally* run on the scalar
#: fallback: no batched arm exists for them, and silently falling back
#: is the documented behaviour rather than an oversight. REP004
#: (``repro lint``) enforces that every registered kind either appears
#: in the dispatch tables above (via a class imported from its module)
#: or is named here — so adding a predictor without deciding its
#: backend story is a commit-time error. Remove a kind from this set
#: when it gains a batched kernel.
SCALAR_FALLBACK_KINDS = frozenset({
    "always-taken",      # zero-state; scalar loop is already optimal
    "always-not-taken",  # zero-state; scalar loop is already optimal
    "local",             # per-branch history table defeats SoA batching
    "tage",              # variable-length tagged walk; no SoA arm yet
    "tournament",        # chooser over nested components; shapes vary
    "yags",              # choice+direction caches; no SoA arm yet
})


# -- structure-of-arrays predictor helpers ----------------------------------
#
# Each batch helper evaluates one predictor over parallel (pc, history)
# arrays, reading the predictor's live counter lists. Index math runs in
# numpy; counter gathers go through listcomp/fromiter on the raw Python
# lists (converting a whole table to an array per call would cost more
# than the batch saves). Constant hash tables are cached on the
# predictor as numpy arrays on first use.


def _np_table(predictor, attr: str, values) -> "np.ndarray":
    """Cache a constant lookup table on the predictor as int64 ndarray."""
    cached = getattr(predictor, attr, None)
    if cached is None:
        cached = np.asarray(values, dtype=np.int64)
        setattr(predictor, attr, cached)
    return cached


def batch_predict_gskew(predictor, pcs, histories):
    """Vectorized ``TwoBcGskewPredictor.predict_packed``.

    Returns ``(preds, packed)``: a bool ndarray of predictions and the
    list of packed bank-index states (Python ints — the packed word can
    exceed 63 bits at large geometries).
    """
    n = predictor._index_bits
    imask = predictor._index_mask
    h_np = _np_table(predictor, "_h_np", predictor._h_table)
    hinv_np = _np_table(predictor, "_hinv_np", predictor._hinv_table)
    v1 = (pcs >> 2) & imask
    v2 = ((histories & predictor._history_mask) ^ (pcs >> predictor._pc_high_shift)) & imask
    hv1 = h_np[v1]
    hinv_v2 = hinv_np[v2]
    g0_idx = hv1 ^ hinv_v2 ^ v2
    g1_idx = hv1 ^ hinv_v2 ^ v1
    meta_idx = hinv_np[v1] ^ h_np[v2] ^ v2
    v1_l = v1.tolist()
    g0_l = g0_idx.tolist()
    g1_l = g1_idx.tolist()
    meta_l = meta_idx.tolist()
    count = len(v1_l)
    bim_raw = predictor._bim_raw
    g0_raw = predictor._g0_raw
    g1_raw = predictor._g1_raw
    meta_raw = predictor._meta_raw
    bim_t = np.fromiter((bim_raw[i] for i in v1_l), dtype=np.int64, count=count) > 1
    g0_t = np.fromiter((g0_raw[i] for i in g0_l), dtype=np.int64, count=count) > 1
    g1_t = np.fromiter((g1_raw[i] for i in g1_l), dtype=np.int64, count=count) > 1
    meta_t = np.fromiter((meta_raw[i] for i in meta_l), dtype=np.int64, count=count) > 1
    majority = (bim_t.astype(np.int64) + g0_t + g1_t) >= 2
    preds = np.where(meta_t, majority, bim_t)
    n2 = 2 * n
    n3 = 3 * n
    packed = [
        v1_l[i] | (g0_l[i] << n) | (g1_l[i] << n2) | (meta_l[i] << n3)
        for i in range(count)
    ]
    return preds, packed


def batch_predict_gshare(predictor, pcs, histories):
    """Vectorized ``GsharePredictor.predict_packed`` → (preds, indices)."""
    idx = ((pcs >> 2) ^ (histories & predictor._history_mask)) & predictor._index_mask
    idx_l = idx.tolist()
    raw = predictor._raw
    mid = predictor._midpoint
    preds = np.fromiter((raw[i] for i in idx_l), dtype=np.int64, count=len(idx_l)) > mid
    return preds, idx_l


def batch_predict_gas(predictor, pcs, histories):
    """Vectorized ``GAsPredictor.predict_packed`` → (preds, indices)."""
    hmask = (1 << predictor.history_length) - 1
    smask = (1 << predictor.set_bits) - 1
    idx = ((histories & hmask) << predictor.set_bits) | ((pcs >> 2) & smask)
    idx_l = idx.tolist()
    raw = predictor.table.raw
    mid = predictor.table.midpoint
    preds = np.fromiter((raw[i] for i in idx_l), dtype=np.int64, count=len(idx_l)) > mid
    return preds, idx_l


def batch_predict_bimodal(predictor, pcs, histories):
    """Vectorized ``BimodalPredictor.predict_packed`` → (preds, indices)."""
    idx = (pcs >> 2) & ((1 << predictor._index_bits) - 1)
    idx_l = idx.tolist()
    raw = predictor.table.raw
    mid = predictor.table.midpoint
    preds = np.fromiter((raw[i] for i in idx_l), dtype=np.int64, count=len(idx_l)) > mid
    return preds, idx_l


def batch_predict_perceptron(predictor, pcs, histories):
    """Vectorized ``PerceptronPredictor.predict_packed``.

    Returns ``(preds, states)``: a bool ndarray of predictions and the
    list of ±1 input vectors (the packed state ``update_packed``
    expects). Histories wider than 62 bits fall back to the scalar
    ``_inputs`` per element (the int64 shift table would overflow).
    """
    h = predictor.history_length
    rows = ((pcs >> 2) % predictor.n_perceptrons).tolist()
    count = len(rows)
    if h < 63:
        bits = (histories[:, None] >> np.arange(h, dtype=np.int64)) & 1
        x = np.empty((count, h + 1), dtype=np.int16)
        x[:, 0] = 1
        x[:, 1:] = bits.astype(np.int16) * 2 - 1
        states = list(x)
    else:
        inputs = predictor._inputs
        states = [inputs(int(histories[i])) for i in range(count)]
        x = np.stack(states) if count else np.zeros((0, h + 1), np.int16)
    weights = predictor.weights
    y = (
        np.stack([weights[r] for r in rows]).astype(np.int32)
        * x.astype(np.int32)
    ).sum(axis=1) if count else np.zeros(0, np.int32)
    return y >= 0, states


_BATCH_PREDICT = {
    _GSKEW: batch_predict_gskew,
    _GSHARE: batch_predict_gshare,
    _GAS: batch_predict_gas,
    _BIMODAL: batch_predict_bimodal,
    _PERC: batch_predict_perceptron,
}


def batch_hash_tagged_gshare(critic, pcs, histories):
    """Vectorized ``TaggedGsharePredictor._hash_pair``.

    Returns ``(set_indices, tags)`` as Python int lists. The rotated tag
    fold reads the *raw* history (before masking), exactly like the
    scalar hash.
    """
    values = histories & critic._history_mask
    fi = pcs >> 2
    for shift in critic._set_fold_shifts:
        fi = fi ^ (values >> shift)
    ftag = np.zeros_like(pcs)
    for shift in critic._tag_fold_shifts:
        ftag = ftag ^ (values >> shift)
    ft2 = np.zeros_like(pcs)
    if critic._tag_fold_shifts:
        rotated = ((histories >> 1) | ((histories & 1) << critic._rotate_shift)) & critic._history_mask
        for shift in critic._tag_fold_shifts:
            ft2 = ft2 ^ (rotated >> shift)
    tags = (
        (pcs >> 5) ^ (pcs >> (5 + critic.tag_bits)) ^ ftag ^ (ft2 << 1)
    ) & critic._tag_mask
    sets = fi & critic._set_mask
    return sets.tolist(), tags.tolist()


def batch_hash_filtered_perceptron(critic, pcs, histories):
    """Vectorized filter hashes of ``FilteredPerceptronPredictor``.

    Mirrors ``_set_index``/``_tag`` (``index_hash``/``tag_hash`` over the
    ``filter_history_length`` slice of the BOR) with the same fold
    structure as the tagged-gshare hash. Returns ``(set_indices, tags)``
    as Python int lists.
    """
    fhl = critic.filter_history_length
    set_bits = critic.filter.set_bits
    tag_bits = critic.tag_bits
    hmask = (1 << fhl) - 1 if fhl > 0 else 0
    tag_shifts = range(0, fhl, max(tag_bits, 1))
    values = histories & hmask
    fi = pcs >> 2
    for shift in range(0, fhl, max(set_bits, 1)):
        fi = fi ^ (values >> shift)
    ftag = np.zeros_like(pcs)
    for shift in tag_shifts:
        ftag = ftag ^ (values >> shift)
    ft2 = np.zeros_like(pcs)
    if fhl > 0:
        rotated = ((histories >> 1) | ((histories & 1) << (fhl - 1))) & hmask
        for shift in tag_shifts:
            ft2 = ft2 ^ (rotated >> shift)
    tags = (
        (pcs >> 5) ^ (pcs >> (5 + tag_bits)) ^ ftag ^ (ft2 << 1)
    ) & ((1 << tag_bits) - 1)
    sets = fi & ((1 << set_bits) - 1)
    return sets.tolist(), tags.tolist()


# -- flat CFG segments ------------------------------------------------------
#
# The kernels walk a per-block table of flat tuples instead of
# CompiledSegment objects + BasicBlock attribute chains. Slot layout:
#
#   0 uops   1 ras_ops|None   2 pc|None (None = no terminating branch)
#   3 taken_target   4 fallthrough   5 next_block
#   6 btb set index  7 btb tag
#   8..11 prophet per-pc constants (kind-specific)
#   12 critic fold seed (pc >> 2)   13 critic tag pc-part


def _make_pc_consts(predictor, kind: int, critic):
    """Per-branch-pc constant extractor for the flat segment table."""
    tb5 = 5 + critic.tag_bits if critic is not None else 5
    if kind == _GSKEW:
        imask = predictor._index_mask
        shift = predictor._pc_high_shift
        h = predictor._h_table
        hinv = predictor._hinv_table

        def pc_consts(pc):
            v1 = (pc >> 2) & imask
            return v1, pc >> shift, h[v1], hinv[v1], pc >> 2, (pc >> 5) ^ (pc >> tb5)
    elif kind == _GSHARE:

        def pc_consts(pc):
            return pc >> 2, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)
    elif kind == _GAS:
        smask = (1 << predictor.set_bits) - 1

        def pc_consts(pc):
            return (pc >> 2) & smask, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)
    elif kind == _PERC:
        n_perc = predictor.n_perceptrons

        def pc_consts(pc):
            return (pc >> 2) % n_perc, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)
    else:
        imask = (1 << predictor._index_bits) - 1

        def pc_consts(pc):
            return (pc >> 2) & imask, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)

    return pc_consts


# -- precomputed hash-image tables -------------------------------------------
#
# The critic fold hash and the gskew skewing functions are pure functions
# of a bounded-width input, so their images are precomputed once per
# geometry and the per-critique / per-fetch hash collapses to one table
# lookup. Cached module-level, not per run: geometries repeat across a
# sweep and the images are immutable.

_FOLD_TBL_CACHE: dict = {}


def _critic_fold_tables(c_hmask, c_rot, c_set_shifts, c_tag_shifts):
    """Set/tag fold images over the (history_bits + 1)-wide BOR window.

    Indexed by ``bor & vmask`` where ``vmask = (c_hmask << 1) | 1``: the
    rotated tag fold reads one bit above the history mask, so the image
    tables carry that extra input bit. The tag image folds the plain and
    rotated hashes together (``ftag ^ (ft2 << 1)``) so the critique's
    whole tag computation is ``(k1 ^ ftt[w]) & c_tag_mask``.
    """
    key = (c_hmask, c_rot, c_set_shifts, c_tag_shifts)
    hit = _FOLD_TBL_CACHE.get(key)
    if hit is None:
        w = np.arange((c_hmask << 1) + 2, dtype=np.int64)
        value = w & c_hmask
        fs_img = np.zeros(w.shape[0], dtype=np.int64)
        for sh in c_set_shifts:
            fs_img ^= value >> sh
        ft_img = np.zeros_like(fs_img)
        for sh in c_tag_shifts:
            ft_img ^= value >> sh
        if c_tag_shifts:
            rotated = ((w >> 1) | ((w & 1) << c_rot)) & c_hmask
            f2 = np.zeros_like(fs_img)
            for sh in c_tag_shifts:
                f2 ^= rotated >> sh
            ft_img ^= f2 << 1
        if len(_FOLD_TBL_CACHE) >= 3:
            _FOLD_TBL_CACHE.clear()
        _FOLD_TBL_CACHE[key] = hit = (fs_img.tolist(), ft_img.tolist())
    return hit


_GSKEW_XOR_CACHE: dict = {}


def _gskew_xor_tables(prophet):
    """``hinv[v] ^ v`` / ``h[v] ^ v`` images for the skewed indices.

    With these, ``g0 = h1 ^ hx[v2]``, ``g1 = g0 ^ v2 ^ v1`` and
    ``meta = hi1 ^ hv[v2]`` — four xors instead of seven per prediction.
    Pure functions of the index width, so keyed by it.
    """
    n = prophet._index_bits
    hit = _GSKEW_XOR_CACHE.get(n)
    if hit is None:
        h = prophet._h_table
        hinv = prophet._hinv_table
        hx = [hinv[v] ^ v for v in range(len(hinv))]
        hv = [h[v] ^ v for v in range(len(h))]
        if len(_GSKEW_XOR_CACHE) >= 8:
            _GSKEW_XOR_CACHE.clear()
        _GSKEW_XOR_CACHE[n] = hit = (hx, hv)
    return hit


def _make_flattener(compiled, use_btb: bool, set_mask: int, set_bits: int, pc_consts):
    """Return ``(flat, flatten)``: the lazy per-block flat-tuple table.

    Straight-line ``next_block`` chains are collapsed into the entry of
    their starting block — uop counts summed, RAS op lists concatenated
    in walk order — so the walker reaches the next conditional branch
    (or dynamic return) in a single table hit. ``next_block`` (slot 5)
    is therefore always None in collapsed entries.
    """
    segments = compiled._segments
    flat: dict = {}

    def flatten(bid):
        uops = 0
        ops: list = []
        cur = bid
        while True:
            seg = segments.get(cur)
            if seg is None:
                seg = compiled.segment(cur)
            uops += seg.uops
            if seg.ras_ops:
                ops.extend(seg.ras_ops)
            branch = seg.branch
            if branch is not None:
                pc = branch.pc
                word = pc >> 2
                c0, c1, c2, c3, k0, k1 = pc_consts(pc)
                entry = (
                    uops, tuple(ops) or None, pc,
                    branch.taken_target, branch.fallthrough, None,
                    word & set_mask if use_btb else 0,
                    word >> set_bits if use_btb else 0,
                    c0, c1, c2, c3, k0, k1,
                )
                break
            nxt = seg.next_block
            if nxt is None:
                # Chain ends at a dynamic return: the next block comes
                # off the walker's RAS.
                entry = (
                    uops, tuple(ops) or None, None, 0, 0, None,
                    0, 0, 0, 0, 0, 0, 0, 0,
                )
                break
            cur = nxt
        flat[bid] = entry
        return entry

    return flat, flatten


# -- fused multi-system replay ----------------------------------------------
#
# A sweep replays many systems over the *same* program: the trace
# columns, the flat CFG table, the BTB set/tag columns and every
# pc-derived per-branch row are pure functions of (program, predictor
# geometry, BTB geometry) — not of predictor *state* — so K same-program
# cells can share them. The kernels ask for each artifact through
# `_ctx_get(shared, key, build)`: with no context the artifact is built
# per run exactly as before; with a context the first run pays and the
# rest reuse.


class FusedReplayContext:
    """Memoized per-program precompute shared across batched replays.

    One context is valid for exactly one program (one ``build_key``);
    the execution layer keeps a context per chunk of same-program cells.
    Keys embed every geometry input the artifact depends on, so systems
    with different predictor/BTB shapes coexist in one context.
    """

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: dict = {}

    def get(self, key, build):
        store = self._store
        hit = store.get(key)
        if hit is None:
            store[key] = hit = build()
        return hit

    def __len__(self) -> int:
        return len(self._store)


def _ctx_get(shared, key, build):
    if shared is None:
        return build()
    return shared.get(key, build)


def _prophet_geometry(predictor, kind: int) -> tuple:
    """Geometry key: everything the per-pc prophet columns depend on."""
    if kind == _GSKEW:
        return (predictor._index_bits, predictor._pc_high_shift)
    if kind == _GSHARE:
        return ()
    if kind == _GAS:
        return (predictor.set_bits,)
    if kind == _PERC:
        return (predictor.n_perceptrons,)
    return (predictor._index_bits,)


# -- persistent trace-column store ------------------------------------------
#
# Process-wide hook: when installed (see ``repro.sim.execution``), the
# in-memory trace memo spills through a persistent cache backend keyed
# by the program's build key, so pool workers and daemon restarts skip
# the one-time architectural CFG walk. Only programs carrying a
# ``_build_key`` annotation (stamped by the execution layer's build
# cache) participate — ad-hoc programs never touch the store.

_trace_store = None


def set_trace_store(store) -> None:
    """Install (or clear, with None) the persistent trace-column store."""
    global _trace_store
    _trace_store = store


def get_trace_store():
    return _trace_store


# -- dispatch ---------------------------------------------------------------


def simulate_batched(program, system, config, shared=None):
    """Run the batched kernel, or return None for unsupported shapes."""
    if shared is None:
        # Sequential replays of one program reuse the same memoized
        # precompute the fused path shares across a chunk; every key
        # embeds the geometry it depends on, so mixed systems coexist.
        shared = getattr(program, "_replay_ctx", None)
        if shared is None:
            shared = FusedReplayContext()
            program._replay_ctx = shared
    if type(system) is SinglePredictorSystem:
        kind = _PROPHET_KINDS.get(type(system.predictor))
        if kind is None:
            return None
        return _simulate_single(program, system, config, kind, shared)
    if type(system) is ProphetCriticSystem:
        kind = _PROPHET_KINDS.get(type(system.prophet))
        ckind = _CRITIC_KINDS.get(type(system.critic))
        if kind is None or ckind is None:
            return None
        return _simulate_hybrid(program, system, config, kind, ckind, shared)
    return None


def fused_replay(program, runs, shared=None):
    """Replay ``runs`` — an iterable of ``(system, config)`` — over one
    program with all per-program precompute shared.

    Returns one result per run, in order; entries are None where the
    batched kernel does not support the shape (callers fall back to the
    scalar loop for those, exactly like ``simulate`` does).
    """
    if shared is None:
        shared = FusedReplayContext()
    return [
        simulate_batched(program, system, config, shared)
        for system, config in runs
    ]


# -- single-predictor kernel ------------------------------------------------
#
# With future_bits == 0 every critique is trivially eligible the moment
# its branch is fetched, produces final == prophet (never a redirect)
# and has no side effects, so the scalar driver's three-arm loop
# provably collapses to: fetch one branch while the window holds at most
# `depth` entries, otherwise resolve one. Fetch bursts are single-fetch
# (the just-fetched branch immediately satisfies its own target_seq),
# resolve bursts are single-resolve, the census can only ever contain
# CORRECT_NONE / INCORRECT_NONE, and seq bookkeeping drops out.
#
# The kernel then exploits one more structural fact: the architectural
# executor never observes the front end, so the committed branch stream
# is a pure function of the program. It is resolved once, up front, into
# structure-of-arrays trace columns, and everything derivable from the
# trace pcs alone — BTB set/tag pairs, each predictor's pc-side index
# constants — is precomputed in one vectorized numpy pass. While the
# front end is on the committed path ("aligned", which is everywhere
# except between a divergent fetch and the flush that follows it) a
# fetch needs no CFG walk and no RAS maintenance at all: it reads trace
# columns, probes the BTB, and predicts from the precomputed constants.
# Only wrong-path fetches (at most depth+1 per flush) walk the flat CFG
# table, and every flush re-aligns the front end with the trace.


def _architectural_trace(program, n: int):
    """Columns of the first ``n`` committed branches, memoized.

    The architectural stream never observes the front end, so the trace
    is a pure function of the (deterministic) program — independent of
    predictor, BTB, and window configuration — and prefix-stable in
    ``n``. The longest trace built so far is cached on the program
    object and shorter requests are served as slices, so sweeping many
    systems over one program pays for the executor walk once. Memory is
    O(n) per program; ``Program.reset()`` leaves the cache intact (the
    replay is deterministic from reset state by construction).

    Returns ``(t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)``: per-branch pc,
    outcome, uop count, taken target, fallthrough, and post-resolve RAS
    snapshot.
    """
    cached = getattr(program, "_trace_cache", None)
    if cached is not None and cached[0] >= n:
        if cached[0] == n:
            return cached[1]
        return tuple(col[:n] for col in cached[1])
    store = _trace_store
    build_key = getattr(program, "_build_key", None)
    if store is not None and build_key is not None:
        hit = store.get(build_key, n)
        if hit is not None:
            stored_n, cols = hit
            program._trace_cache = (stored_n, cols)
            if stored_n == n:
                return cols
            return tuple(col[:n] for col in cols)
    program.reset()
    executor = ArchitecturalExecutor(program)
    t_pc = [0] * n
    t_tk = [False] * n
    t_uops = [0] * n
    t_tt = [0] * n
    t_ft = [0] * n
    t_snap = [()] * n
    resolve_next = executor.resolve_next
    ras_snapshot = executor._ras.snapshot
    for i in range(n):
        pc, taken, uops = resolve_next()
        br = executor._last_branch
        t_pc[i] = pc
        t_tk[i] = taken
        t_uops[i] = uops
        t_tt[i] = br.taken_target
        t_ft[i] = br.fallthrough
        t_snap[i] = ras_snapshot()
    cols = (t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)
    program._trace_cache = (n, cols)
    if store is not None and build_key is not None:
        store.put(build_key, n, cols)
    return cols


def _simulate_single(program, system, config, kind: int, shared=None):
    if np is None:
        return None
    program.reset()
    compiled = program.compiled(pair_limit=_RAS_CAPACITY)
    entry = program.entry
    n_branches = config.n_branches

    # Architectural trace: SoA columns of the committed stream, built by
    # exactly n_branches resolve_next() calls (memoized across runs).
    t_pc, t_tk, t_uops, t_tt, t_ft, t_snap = _architectural_trace(
        program, n_branches
    )

    use_btb = config.use_btb
    if use_btb:
        btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        b_sets = btb._sets
        b_set_mask = btb._set_mask
        b_set_bits = btb._set_bits
        b_ways = btb.ways
    else:
        b_sets = b_set_mask = b_set_bits = b_ways = None

    predictor = system.predictor
    update_packed = system._update_packed
    geom = _prophet_geometry(predictor, kind)
    pc_consts = _make_pc_consts(predictor, kind, None)
    flat, flatten = _ctx_get(
        shared,
        ("flat", kind, geom, use_btb, b_set_mask or 0, b_set_bits or 0, 5),
        lambda: _make_flattener(
            compiled, use_btb, b_set_mask or 0, b_set_bits or 0, pc_consts
        ),
    )

    # ---- vectorized precompute over the trace pcs ----------------------
    def _build_pcs():
        if n_branches:
            return np.fromiter(t_pc, dtype=np.int64, count=n_branches)
        return np.zeros(0, dtype=np.int64)

    pcs = _ctx_get(shared, ("pcs", n_branches), _build_pcs)
    if use_btb:

        def _build_btb_cols():
            words = pcs >> 2
            return (words & b_set_mask).tolist(), (words >> b_set_bits).tolist()

        a_si, a_tag = _ctx_get(
            shared, ("btb", n_branches, b_set_mask, b_set_bits), _build_btb_cols
        )
    else:
        a_si = a_tag = [0] * n_branches

    # Per-kind hoisted constants + per-branch pc-side index columns.
    if kind == _GSKEW:
        gk_n = predictor._index_bits
        gk_n2 = 2 * gk_n
        gk_n3 = 3 * gk_n
        gk_imask = predictor._index_mask
        gk_hmask = predictor._history_mask
        gk_h = predictor._h_table
        gk_hinv = predictor._hinv_table
        gk_bim = predictor._bim_raw
        gk_g0 = predictor._g0_raw
        gk_g1 = predictor._g1_raw
        gk_meta = predictor._meta_raw
        def _build_rows():
            v1_np = (pcs >> 2) & gk_imask
            a_v1 = v1_np.tolist()
            a_pch = (pcs >> predictor._pc_high_shift).tolist()
            a_h1 = _np_table(predictor, "_h_np", gk_h)[v1_np].tolist()
            a_hi1 = _np_table(predictor, "_hinv_np", gk_hinv)[v1_np].tolist()
            return list(zip(t_uops, t_tk, a_si, a_tag, a_v1, a_pch, a_h1, a_hi1))
    elif kind == _GSHARE:
        gs_hmask = predictor._history_mask
        gs_imask = predictor._index_mask
        gs_raw = predictor._raw
        gs_mid = predictor._midpoint

        def _build_rows():
            a_c = (pcs >> 2).tolist()
            return list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    elif kind == _GAS:
        ga_hmask = (1 << predictor.history_length) - 1
        ga_sb = predictor.set_bits
        ga_raw = predictor.table.raw
        ga_mid = predictor.table.midpoint

        def _build_rows():
            a_c = ((pcs >> 2) & ((1 << ga_sb) - 1)).tolist()
            return list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    elif kind == _PERC:
        pp_w = predictor.weights
        pp_inputs = predictor._inputs
        np_dot = np.dot
        np_int32 = np.int32

        def _build_rows():
            a_c = ((pcs >> 2) % predictor.n_perceptrons).tolist()
            return list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    else:
        bm_raw = predictor.table.raw
        bm_mid = predictor.table.midpoint

        def _build_rows():
            a_c = ((pcs >> 2) & ((1 << predictor._index_bits) - 1)).tolist()
            return list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    # Fused per-branch rows: one tuple unpack per event in the hot loops
    # instead of half a dozen list indexings.
    f_rows = _ctx_get(
        shared,
        ("frows1", kind, geom, n_branches, use_btb, b_set_mask or 0, b_set_bits or 0),
        _build_rows,
    )
    res_rows = _ctx_get(
        shared,
        ("res1", n_branches, use_btb, b_set_mask or 0, b_set_bits or 0),
        lambda: list(zip(t_pc, t_tk, t_uops, a_si, a_tag)),
    )

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    depth = config.effective_depth(0)
    warmup = config.warmup
    collect_per_site = config.collect_per_site

    # Structure-of-arrays in-flight ring (pending never exceeds depth+1).
    # Only aligned-fetched entries are stored: the ring row at `head` is
    # trace row `resolved` by construction, so no pc column is kept.
    cap = depth + 8
    r_pred = [False] * cap
    r_bhr = [0] * cap
    r_state = [0] * cap
    r_static = [False] * cap
    head = 0
    tail = 0
    resolved = 0
    warmup_fetched = 0
    fetched_uops = 0

    bhr = system.bhr
    bhr_val = bhr._value
    bhr_mask = bhr._mask

    # Flat walker state, materialised only while off the committed path:
    # current block and RAS list. (Wrong-path ring entries are only ever
    # flushed, never resolved, so no snapshots need to be kept for them.)
    w_block = entry
    ras: list = []
    #: True while the front end walks the committed path; `tail` is then
    #: the absolute trace index of the next fetch and the ring holds
    #: trace branches head..tail-1.
    aligned = True

    # Measurement counters (flushed into stats at the end).
    st_branches = st_uops = st_taken = st_static = st_misp = st_pmisp = 0
    c_cn = c_in = 0
    site: dict = {}

    if not config.collect_predictor_stats:
        system.set_stats_enabled(False)
    gk_stats_on = kind == _GSKEW and predictor.stats_enabled
    gk_sn = gk_sc = 0
    flat_get = flat.get
    try:
        while resolved < n_branches:
            if tail - head <= depth:
                # ---- fetch arm -------------------------------------------
                # The window is open; fill it completely (the scalar loop
                # also fetches back-to-back until pending == depth+1, so
                # bursting keeps the exact event order).
                if aligned:
                    # Aligned burst: the walker provably sits on the
                    # committed path, so the trace columns *are* the walk
                    # — no CFG traversal, no RAS bookkeeping.
                    fill = head + depth + 1
                    if fill > n_branches:
                        fill = n_branches
                    m = tail
                    s = m % cap
                    if kind == _GSKEW:
                        while m < fill:
                            uops, taken, si, tag, v1, pch, h1, hi1 = f_rows[m]
                            fetched_uops += uops
                            if use_btb:
                                row = b_sets[si]
                                if tag in row:
                                    if row[-1] != tag:
                                        row.remove(tag)
                                        row.append(tag)
                                    dyn = True
                                else:
                                    dyn = False
                            else:
                                dyn = True
                            r_bhr[s] = bhr_val
                            if dyn:
                                v2 = ((bhr_val & gk_hmask) ^ pch) & gk_imask
                                hinv_v2 = gk_hinv[v2]
                                g0 = h1 ^ hinv_v2 ^ v2
                                g1 = h1 ^ hinv_v2 ^ v1
                                meta = hi1 ^ gk_h[v2] ^ v2
                                bim = gk_bim[v1] > 1
                                if gk_meta[meta] > 1:
                                    pred = (bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)) >= 2
                                else:
                                    pred = bim
                                r_static[s] = False
                                r_pred[s] = pred
                                r_state[s] = (
                                    v1 | (g0 << gk_n) | (g1 << gk_n2) | (meta << gk_n3)
                                )
                                bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                                if pred != taken:
                                    # Divergent fetch: materialise the
                                    # walker at the wrongly chosen target.
                                    aligned = False
                                    w_block = t_tt[m] if pred else t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            else:
                                r_static[s] = True
                                r_pred[s] = False
                                if taken:
                                    # Static (BTB-miss) branch taken: the
                                    # walker falls through, off the path.
                                    aligned = False
                                    w_block = t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            m += 1
                            s += 1
                            if s == cap:
                                s = 0
                    else:
                        while m < fill:
                            uops, taken, si, tag, c = f_rows[m]
                            fetched_uops += uops
                            if use_btb:
                                row = b_sets[si]
                                if tag in row:
                                    if row[-1] != tag:
                                        row.remove(tag)
                                        row.append(tag)
                                    dyn = True
                                else:
                                    dyn = False
                            else:
                                dyn = True
                            r_bhr[s] = bhr_val
                            if dyn:
                                if kind == _GSHARE:
                                    state = (c ^ (bhr_val & gs_hmask)) & gs_imask
                                    pred = gs_raw[state] > gs_mid
                                elif kind == _GAS:
                                    state = ((bhr_val & ga_hmask) << ga_sb) | c
                                    pred = ga_raw[state] > ga_mid
                                elif kind == _PERC:
                                    state = pp_inputs(bhr_val)
                                    pred = int(np_dot(pp_w[c].astype(np_int32), state)) >= 0
                                else:
                                    state = c
                                    pred = bm_raw[state] > bm_mid
                                r_static[s] = False
                                r_pred[s] = pred
                                r_state[s] = state
                                bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                                if pred != taken:
                                    aligned = False
                                    w_block = t_tt[m] if pred else t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            else:
                                r_static[s] = True
                                r_pred[s] = False
                                if taken:
                                    aligned = False
                                    w_block = t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            m += 1
                            s += 1
                            if s == cap:
                                s = 0
                    tail = m
                    if aligned and m >= n_branches and tail - head <= depth:
                        # Trace exhausted while aligned: speculative
                        # fetches beyond branch n continue on the live
                        # walker.
                        aligned = False
                        last = m - 1
                        if r_static[last % cap]:
                            w_block = t_ft[last]
                        else:
                            w_block = t_tt[last] if t_tk[last] else t_ft[last]
                        ras[:] = t_snap[last]
                if not aligned:
                    # Wrong-path (or post-trace) fill: walk the flat CFG.
                    # These entries are discarded by the coming flush and
                    # never resolved, so nothing is stored in the ring —
                    # only their observable side effects happen: fetched
                    # uops, BTB LRU refreshes, and the speculative BHR
                    # bits that steer further wrong-path predictions.
                    limit = head + depth + 1
                    while tail < limit:
                        bid = w_block
                        uops = 0
                        while True:
                            fs = flat_get(bid)
                            if fs is None:
                                fs = flatten(bid)
                            uops += fs[0]
                            ops = fs[1]
                            if ops is not None:
                                for op in ops:
                                    if op >= 0:
                                        if len(ras) >= _RAS_CAPACITY:
                                            del ras[0]
                                        ras.append(op)
                                    else:
                                        ras.pop()
                            if fs[2] is not None:
                                break
                            if ras:
                                bid = ras.pop()
                            else:
                                bid = entry
                        fetched_uops += uops
                        tail += 1
                        _, _, _, tkb, ftb, _, si, tag, c0, c1, c2, c3, _k0, _k1 = fs
                        if use_btb:
                            row = b_sets[si]
                            if tag in row:
                                if row[-1] != tag:
                                    row.remove(tag)
                                    row.append(tag)
                                dyn = True
                            else:
                                dyn = False
                        else:
                            dyn = True
                        if dyn:
                            if kind == _GSKEW:
                                v2 = ((bhr_val & gk_hmask) ^ c1) & gk_imask
                                bim = gk_bim[c0] > 1
                                if gk_meta[c3 ^ gk_h[v2] ^ v2] > 1:
                                    hinv_v2 = gk_hinv[v2]
                                    g0 = c2 ^ hinv_v2 ^ v2
                                    g1 = c2 ^ hinv_v2 ^ c0
                                    pred = (
                                        bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)
                                    ) >= 2
                                else:
                                    pred = bim
                            elif kind == _GSHARE:
                                pred = gs_raw[(c0 ^ (bhr_val & gs_hmask)) & gs_imask] > gs_mid
                            elif kind == _GAS:
                                pred = ga_raw[((bhr_val & ga_hmask) << ga_sb) | c0] > ga_mid
                            elif kind == _PERC:
                                pred = int(
                                    np_dot(pp_w[c0].astype(np_int32), pp_inputs(bhr_val))
                                ) >= 0
                            else:
                                pred = bm_raw[c0] > bm_mid
                            bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                        else:
                            pred = False
                        w_block = tkb if pred else ftb

            # ---- resolve arm --------------------------------------------
            # Only aligned-fetched entries ever reach the head (the
            # divergent entry flushes everything fetched after it), so the
            # ring row at `head` is trace row `resolved` by construction.
            s = head % cap
            i = resolved
            pc, taken, uops, si, tag = res_rows[i]
            statc = r_static[s]
            if i >= warmup:
                st_branches += 1
                st_uops += uops
                if taken:
                    st_taken += 1
                if statc:
                    st_static += 1
                    if taken:
                        st_misp += 1
                        st_pmisp += 1
                else:
                    p = r_pred[s]
                    if p == taken:
                        c_cn += 1
                    else:
                        c_in += 1
                        st_misp += 1
                        st_pmisp += 1
                    if collect_per_site:
                        row = site.get(pc)
                        if row is None:
                            site[pc] = row = [0, 0, 0, 0, 0]
                        row[0] += 1
                        if p != taken:
                            row[1] += 1
                            row[2] += 1
            if statc:
                if use_btb:
                    row = b_sets[si]
                    if tag in row:
                        row.remove(tag)
                    elif len(row) >= b_ways:
                        row.pop(0)
                    row.append(tag)
                mispredicted = taken

            else:
                p = r_pred[s]
                if kind == _GSKEW:
                    # Inlined TwoBcGskewPredictor.update_packed.
                    if gk_stats_on:
                        gk_sn += 1
                        if p == taken:
                            gk_sc += 1
                    packed = r_state[s]
                    bi = packed & gk_imask
                    g0i = (packed >> gk_n) & gk_imask
                    g1i = (packed >> gk_n2) & gk_imask
                    mi = packed >> gk_n3
                    bv = gk_bim[bi]
                    g0v = gk_g0[g0i]
                    g1v = gk_g1[g1i]
                    bim = bv > 1
                    g0 = g0v > 1
                    g1 = g1v > 1
                    mm = gk_meta[mi] > 1
                    majority = (bim + g0 + g1) >= 2
                    overall = majority if mm else bim
                    if taken:
                        if overall:
                            if mm:
                                if bim and bv < 3:
                                    gk_bim[bi] = bv + 1
                                if g0 and g0v < 3:
                                    gk_g0[g0i] = g0v + 1
                                if g1 and g1v < 3:
                                    gk_g1[g1i] = g1v + 1
                            elif bv < 3:
                                gk_bim[bi] = bv + 1
                        else:
                            if bv < 3:
                                gk_bim[bi] = bv + 1
                            if g0v < 3:
                                gk_g0[g0i] = g0v + 1
                            if g1v < 3:
                                gk_g1[g1i] = g1v + 1
                    else:
                        if not overall:
                            if mm:
                                if not bim and bv > 0:
                                    gk_bim[bi] = bv - 1
                                if not g0 and g0v > 0:
                                    gk_g0[g0i] = g0v - 1
                                if not g1 and g1v > 0:
                                    gk_g1[g1i] = g1v - 1
                            elif bv > 0:
                                gk_bim[bi] = bv - 1
                        else:
                            if bv > 0:
                                gk_bim[bi] = bv - 1
                            if g0v > 0:
                                gk_g0[g0i] = g0v - 1
                            if g1v > 0:
                                gk_g1[g1i] = g1v - 1
                    if bim != majority:
                        mv = gk_meta[mi]
                        if majority == taken:
                            if mv < 3:
                                gk_meta[mi] = mv + 1
                        elif mv > 0:
                            gk_meta[mi] = mv - 1
                else:
                    update_packed(pc, r_bhr[s], taken, p, r_state[s])
                mispredicted = p != taken
            head += 1
            resolved = i + 1
            if resolved == warmup:
                warmup_fetched = fetched_uops
            if mispredicted:
                bhr_val = ((r_bhr[s] << 1) | (1 if taken else 0)) & bhr_mask
                # Flush re-aligns the front end with the trace; the
                # walker state is rebuilt from trace columns at the next
                # divergence, so nothing else to restore.
                aligned = True
                tail = head
    finally:
        if not config.collect_predictor_stats:
            system.set_stats_enabled(True)
        bhr._value = bhr_val
        if gk_sn:
            pstats = predictor.stats
            pstats.predictions += gk_sn
            pstats.correct += gk_sc

    stats.branches = st_branches
    stats.committed_uops = st_uops
    stats.taken_branches = st_taken
    stats.static_branches = st_static
    stats.mispredicts = st_misp
    stats.prophet_mispredicts = st_pmisp
    counts = stats.census.counts
    counts[CritiqueKind.CORRECT_NONE] = c_cn
    counts[CritiqueKind.INCORRECT_NONE] = c_in
    if site:
        stats.per_site = site
    stats.fetched_uops = max(0, fetched_uops - warmup_fetched)
    return stats


# -- prophet/critic hybrid kernel -------------------------------------------
#
# The hybrid keeps the scalar driver's full three-arm event loop
# (critique / fetch burst / resolve burst) verbatim — future bits make
# the arm interleaving data-dependent — but fuses every operation the
# arms perform: walker traversal, BTB, prophet predict, the critic's
# fold hash + tag filter + counter train, and both history registers as
# plain local ints. The in-flight window is the same structure-of-arrays
# ring as the single kernel, widened with the critique-time fields.


def _simulate_hybrid(program, system, config, kind: int, ckind: int, shared=None):
    if np is None:
        return None
    program.reset()
    compiled = program.compiled(pair_limit=_RAS_CAPACITY)
    entry = program.entry
    n_resolved = config.n_branches

    # Architectural trace, resolved up front (the executor never observes
    # the front end): exactly n_branches resolve_next() calls, memoized.
    t_pc, t_tk, t_uops, t_tt, t_ft, t_snap = _architectural_trace(
        program, n_resolved
    )

    use_btb = config.use_btb
    if use_btb:
        btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        b_sets = btb._sets
        b_set_mask = btb._set_mask
        b_set_bits = btb._set_bits
        b_ways = btb.ways
    else:
        b_sets = b_set_mask = b_set_bits = b_ways = None

    prophet = system.prophet
    critic = system.critic
    prophet_update = prophet.update_packed
    geom = _prophet_geometry(prophet, kind)
    tb5 = 5 + critic.tag_bits
    pc_consts = _make_pc_consts(prophet, kind, critic)
    flat, flatten = _ctx_get(
        shared,
        ("flat", kind, geom, use_btb, b_set_mask or 0, b_set_bits or 0, tb5),
        lambda: _make_flattener(
            compiled, use_btb, b_set_mask or 0, b_set_bits or 0, pc_consts
        ),
    )

    # ---- vectorized precompute over the trace pcs ----------------------
    def _build_pcs():
        if n_resolved:
            return np.fromiter(t_pc, dtype=np.int64, count=n_resolved)
        return np.zeros(0, dtype=np.int64)

    pcs = _ctx_get(shared, ("pcs", n_resolved), _build_pcs)
    if use_btb:

        def _build_btb_cols():
            words = pcs >> 2
            return (words & b_set_mask).tolist(), (words >> b_set_bits).tolist()

        a_si, a_tag = _ctx_get(
            shared, ("btb", n_resolved, b_set_mask, b_set_bits), _build_btb_cols
        )
    else:
        a_si = a_tag = [0] * n_resolved

    a_k0, a_k1 = _ctx_get(
        shared,
        ("critic-pc", n_resolved, tb5),
        lambda: ((pcs >> 2).tolist(), ((pcs >> 5) ^ (pcs >> tb5)).tolist()),
    )

    def _build_snapc():
        # Trace RAS snapshots in the walker's cons-list form, deduped by
        # identity of the source tuple run (snaps repeat between calls).
        out = []
        ap = out.append
        memo = {}
        for st in t_snap:
            c = memo.get(st)
            if c is None:
                chain = None
                for x in st:
                    chain = (x, chain)
                memo[st] = c = (chain, len(st))
            ap(c)
        return out

    t_snap_c = _ctx_get(shared, ("snapc", n_resolved), _build_snapc)

    np_dot = np.dot
    np_int32 = np.int32
    np_clip = np.clip

    if kind == _GSKEW:
        gk_imask = prophet._index_mask
        gk_hmask = prophet._history_mask
        gk_h = prophet._h_table
        gk_bim = prophet._bim_raw
        gk_g0 = prophet._g0_raw
        gk_g1 = prophet._g1_raw
        gk_meta = prophet._meta_raw
        gk_hx, gk_hv = _gskew_xor_tables(prophet)

        def _build_rows():
            v1_np = (pcs >> 2) & gk_imask
            a_v1 = v1_np.tolist()
            a_pch = (pcs >> prophet._pc_high_shift).tolist()
            a_h1 = _np_table(prophet, "_h_np", gk_h)[v1_np].tolist()
            a_hi1 = _np_table(prophet, "_hinv_np", prophet._hinv_table)[v1_np].tolist()
            return list(zip(
                t_uops, t_tk, a_si, a_tag, t_pc, t_tt, t_ft, t_snap_c,
                a_k0, a_k1, a_v1, a_pch, a_h1, a_hi1,
            ))
    elif kind == _GSHARE:
        gs_hmask = prophet._history_mask
        gs_imask = prophet._index_mask
        gs_raw = prophet._raw
        gs_mid = prophet._midpoint

        def _build_rows():
            a_c = (pcs >> 2).tolist()
            return list(zip(
                t_uops, t_tk, a_si, a_tag, t_pc, t_tt, t_ft, t_snap_c,
                a_k0, a_k1, a_c,
            ))
    elif kind == _GAS:
        ga_hmask = (1 << prophet.history_length) - 1
        ga_sb = prophet.set_bits
        ga_raw = prophet.table.raw
        ga_mid = prophet.table.midpoint

        def _build_rows():
            a_c = ((pcs >> 2) & ((1 << ga_sb) - 1)).tolist()
            return list(zip(
                t_uops, t_tk, a_si, a_tag, t_pc, t_tt, t_ft, t_snap_c,
                a_k0, a_k1, a_c,
            ))
    elif kind == _PERC:
        pp_w = prophet.weights
        pp_inputs = prophet._inputs

        def _build_rows():
            a_c = ((pcs >> 2) % prophet.n_perceptrons).tolist()
            return list(zip(
                t_uops, t_tk, a_si, a_tag, t_pc, t_tt, t_ft, t_snap_c,
                a_k0, a_k1, a_c,
            ))
    else:
        bm_raw = prophet.table.raw
        bm_mid = prophet.table.midpoint

        def _build_rows():
            a_c = ((pcs >> 2) & ((1 << prophet._index_bits) - 1)).tolist()
            return list(zip(
                t_uops, t_tk, a_si, a_tag, t_pc, t_tt, t_ft, t_snap_c,
                a_k0, a_k1, a_c,
            ))

    f_rows = _ctx_get(
        shared,
        ("frows2", kind, geom, n_resolved, use_btb,
         b_set_mask or 0, b_set_bits or 0, tb5),
        _build_rows,
    )

    # Critic constants: fold-hash geometry + tag filter, plus either the
    # 2-bit counter bank (tagged gshare) or the perceptron weight table
    # (filtered perceptron). Both critics share the TagFilter and the
    # same fold-hash structure, so the critique arm's inline hash is
    # common; only the opinion/train bodies dispatch on ``ckind``.
    filt = critic.filter
    f_tags = filt._tags
    f_lru = filt._lru
    # Tag->way mirror of the filter rows: one dict probe per critique
    # instead of two linear scans; the (inlined) inserts keep it in sync.
    f_ways = filt.ways
    f_maps = []
    for _row in f_tags:
        _m = {}
        for _w, _t in enumerate(_row):
            if _t is not None:
                _m[_t] = _w
        f_maps.append(_m)
    f_ins = f_evc = 0
    if ckind == _CR_TAGGED:
        c_ways = critic.ways
        c_set_mask = critic._set_mask
        c_tag_mask = critic._tag_mask
        c_hmask = critic._history_mask
        c_rot = critic._rotate_shift
        c_set_shifts = critic._set_fold_shifts
        c_tag_shifts = critic._tag_fold_shifts
        c_counters = critic._counters_raw
    else:
        fhl = critic.filter_history_length
        c_set_mask = (1 << filt.set_bits) - 1
        c_tag_mask = (1 << critic.tag_bits) - 1
        c_hmask = (1 << fhl) - 1 if fhl > 0 else 0
        c_rot = fhl - 1
        c_set_shifts = tuple(range(0, fhl, max(filt.set_bits, 1)))
        c_tag_shifts = tuple(range(0, fhl, max(critic.tag_bits, 1)))
        fp = critic.perceptron
        fp_w = fp.weights
        fp_n = fp.n_perceptrons
        fp_thresh = fp.threshold
        fp_inputs = fp._inputs
        fp_wmin = fp.WEIGHT_MIN
        fp_wmax = fp.WEIGHT_MAX

    # Fold-image tables for the critique hash (both critics share the
    # fold structure). Gated by width: the image spans one bit above the
    # history mask, and degenerate zero-history shapes keep the loop path.
    if 0 < c_hmask.bit_length() <= 19:
        fst, ftt = _critic_fold_tables(c_hmask, c_rot, c_set_shifts, c_tag_shifts)
        vmask = (c_hmask << 1) | 1
    else:
        fst = ftt = None
        vmask = 0

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    required_bits = max(system.future_bits, 0)
    use_live_bor = system.future_bits >= 1
    insert_final = system._insert_on_final
    depth = config.effective_depth(required_bits)
    hard_cap = depth + 8
    n_branches = config.n_branches
    warmup = config.warmup
    collect_per_site = config.collect_per_site

    # In-flight ring. Power-of-two capacity so every ring index is a
    # mask (``& cmask``) instead of a modulo, and each entry packs its
    # fetch-time fields into ONE tuple store (``r_fe``) and its
    # critique-time fields into another (``r_cq``): the fetch loop is
    # the hottest code in the kernel and a single BUILD_TUPLE +
    # STORE_SUBSCR beats a dozen separate list stores.
    #
    #   r_fe[s] = (pc, bhrb, borb, tkb, ftb, k0, k1, snap, seq,
    #              static, pred, state)
    #   r_cq[s] = (final, chit, cpred, cset, ctag, borc)
    cap = 1 << (hard_cap - 1).bit_length()
    cmask = cap - 1
    r_fe = [()] * cap
    r_cq = [()] * cap
    head = 0
    tail = 0
    critiqued = 0
    next_seq = 0
    resolved = 0
    warmup_fetched = 0
    fetched_uops = 0

    bhr = system.bhr
    bor = system.bor
    bhr_val = bhr._value
    bhr_mask = bhr._mask
    bor_val = bor._value
    bor_mask = bor._mask

    w_block = entry
    ras_c = None  # immutable cons-list: (block, rest) | None
    ras_n = 0  # live depth (overflow drops-oldest without trimming)
    ras_ver = 1
    snap_ver = 0
    ras_snap = (None, 0)
    #: True while the front end tracks the committed trace: fetches are
    #: then pure column reads (no CFG walk, no RAS maintenance) and the
    #: walker state above is dormant. While False, ``n_aligned`` counts
    #: the trace-correspondent ring prefix — ring offsets 0..n_aligned-1
    #: hold trace rows resolved..resolved+n_aligned-1; everything past
    #: that prefix is wrong-path and will be flushed, never resolved.
    fe_aligned = True
    n_aligned = 0

    st_branches = st_uops = st_taken = st_static = st_misp = st_pmisp = 0
    st_forced = st_credir = 0
    n_ca = n_cd = n_ia = n_id = n_cn = n_in = 0
    f_lookups = f_hits = 0
    site: dict = {}

    if not config.collect_predictor_stats:
        system.set_stats_enabled(False)
    # Hoist after the toggle so the critic's stats gate is the live one.
    # (``set_stats_enabled`` does not reach into the filtered critic's
    # inner perceptron, so its gate is hoisted on its own.)
    c_stats_on = critic.stats_enabled
    c_sn = c_sc = 0
    if kind == _GSKEW:
        gk_stats_on = prophet.stats_enabled
        gk_sn = gk_sc = 0
    if ckind == _CR_FPERC:
        fp_stats_on = fp.stats_enabled
        fp_sn = fp_sc = 0
    else:
        fp_stats_on = False
        fp_sn = fp_sc = 0
    depth1 = depth + 1
    try:
        while resolved < n_branches:
            pending = tail - head
            # 1) Critique arm (ordinary or forced, same eligibility logic
            #    as the scalar driver).
            if critiqued < pending:
                s = (head + critiqued) & cmask
                fe = r_fe[s]
                go = fe[9] or next_seq - fe[8] >= required_bits
                if not go and pending >= hard_cap and not (
                    critiqued > 0 and pending > depth
                ):
                    go = True
                    if resolved >= warmup:
                        st_forced += 1
            else:
                go = False
            if go:
                # Drain every consecutively-eligible critique in one
                # visit. Between back-to-back eligible critiques the
                # scalar loop does nothing else -- the fetch guard stays
                # blocked (pending unchanged, and a forced critique
                # can't follow an ordinary one in the same window) and
                # the resolve arm is never reached -- so draining here is
                # order-identical to one critique per outer iteration.
                while True:
                    if fe[9]:
                        # Static: no critic consult, nothing the resolve
                        # arm reads back.
                        critiqued += 1
                    else:
                        k0 = fe[5]
                        ppred = fe[10]
                        bor_value = bor_val if use_live_bor else fe[2]
                        if fst is not None:
                            w = bor_value & vmask
                            si = (k0 ^ fst[w]) & c_set_mask
                            tg = (fe[6] ^ ftt[w]) & c_tag_mask
                        else:
                            # Inline TaggedGsharePredictor._hash_pair.
                            value = bor_value & c_hmask
                            fi = k0
                            for sh in c_set_shifts:
                                fi ^= value >> sh
                            ftag = 0
                            for sh in c_tag_shifts:
                                ftag ^= value >> sh
                            ft2 = 0
                            if c_tag_shifts:
                                rotated = (
                                    (bor_value >> 1) | ((bor_value & 1) << c_rot)
                                ) & c_hmask
                                for sh in c_tag_shifts:
                                    ft2 ^= rotated >> sh
                            tg = (fe[6] ^ ftag ^ (ft2 << 1)) & c_tag_mask
                            si = fi & c_set_mask
                        f_lookups += 1
                        way = f_maps[si].get(tg)
                        if way is not None:
                            f_hits += 1
                            order = f_lru[si]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                            if ckind == _CR_TAGGED:
                                final = c_counters[si * c_ways + way] > 1
                            else:
                                final = int(np_dot(
                                    fp_w[k0 % fp_n].astype(np_int32),
                                    fp_inputs(bor_value),
                                )) >= 0
                            r_cq[s] = (final, True, final, si, tg, bor_value)
                        else:
                            final = ppred
                            r_cq[s] = (ppred, False, None, si, tg, bor_value)
                        critiqued += 1
                        if final != ppred:
                            # Critic override: FTQ-confined flush +
                            # redirect.
                            bhrb = fe[1]
                            borb = fe[2]
                            tkb = fe[3]
                            ftb = fe[4]
                            snap = fe[7]
                            seq = fe[8]
                            tail = head + critiqued
                            bhr_val = ((bhrb << 1) | final) & bhr_mask
                            bor_val = ((borb << 1) | final) & bor_mask
                            next_seq = seq + 1
                            if resolved >= warmup:
                                st_credir += 1
                            # Re-point the front end. While it tracks the
                            # trace the walker is dormant: a redirect
                            # whose corrected direction lands back on the
                            # committed outcome keeps (or repairs)
                            # alignment and costs nothing; only a
                            # redirect onto the wrong path materialises
                            # walker state -- from the ring, where aligned
                            # entries carry the free trace-column RAS
                            # snapshot.
                            off = critiqued - 1
                            if fe_aligned:
                                if final != t_tk[resolved + off]:
                                    fe_aligned = False
                                    n_aligned = critiqued
                                    ras_c, ras_n = snap
                                    ras_ver += 1
                                    ras_snap = snap
                                    snap_ver = ras_ver
                                    w_block = tkb if final else ftb
                            elif off < n_aligned:
                                n_aligned = critiqued
                                if final == t_tk[resolved + off]:
                                    # The override undoes the divergence:
                                    # the surviving window prefix is
                                    # exactly the trace again, so
                                    # re-align instead of restoring the
                                    # walker.
                                    fe_aligned = True
                                else:
                                    ras_c, ras_n = snap
                                    ras_ver += 1
                                    ras_snap = snap
                                    snap_ver = ras_ver
                                    w_block = tkb if final else ftb
                            else:
                                ras_c, ras_n = snap
                                ras_ver += 1
                                ras_snap = snap
                                snap_ver = ras_ver
                                w_block = tkb if final else ftb
                            break
                    if critiqued >= tail - head:
                        break
                    s = (head + critiqued) & cmask
                    fe = r_fe[s]
                    if not (fe[9] or next_seq - fe[8] >= required_bits):
                        break
                continue

            # 3) Fused fetch/critique burst. The scalar driver alternates
            #    one-entry fetch bursts with critique dispatches through
            #    its outer loop; here the critique runs inline the moment
            #    its candidate goes bits-ready, so the outer loop is only
            #    re-entered for forced critiques, redirects, and resolve
            #    bursts. The operation ORDER is identical to the scalar
            #    loop's -- fetch until the candidate is eligible, critique,
            #    resume fetching -- which is what keeps the replay
            #    bit-identical.
            if pending < hard_cap and not (critiqued > 0 and pending > depth):
                if critiqued < pending:
                    have_candidate = True
                    target_seq = r_fe[(head + critiqued) & cmask][8] + required_bits
                else:
                    have_candidate = False
                    target_seq = 0
                # ``head`` is constant for the whole burst (only the
                # resolve arm advances it), so the scalar loop's two
                # fetch-exit conditions (pending >= hard_cap; critiqued
                # > 0 and pending > depth) collapse into one precomputed
                # tail bound per critiqued-regime: ONE compare per fetch.
                head_cap = head + hard_cap
                head_depth1 = head + depth1
                fetch_limit = head_depth1 if critiqued else head_cap
                burst_done = False
                while True:
                    # -- fetch one entry --------------------------------
                    if fe_aligned:
                        i = resolved + tail - head
                        if i >= n_branches:
                            # Trace exhausted mid-window: keep fetching
                            # speculatively past the last committed
                            # branch, following its committed direction
                            # (an override-repaired entry's pred may
                            # disagree with the direction the front end
                            # actually took, so read the trace column).
                            fe_aligned = False
                            n_aligned = tail - head
                            fe = r_fe[(tail - 1) & cmask]
                            snap = fe[7]
                            ras_c, ras_n = snap
                            ras_ver += 1
                            ras_snap = snap
                            snap_ver = ras_ver
                            w_block = fe[3] if t_tk[i - 1] else fe[4]
                    if fe_aligned:
                        # Aligned fetch: the front end provably sits on
                        # the committed path, so this is pure column
                        # reads plus one BTB probe -- no CFG walk, no RAS
                        # maintenance, and the ring's RAS snapshot comes
                        # free out of the trace column. The walker below
                        # only runs between a divergence (or an override
                        # onto the wrong path) and its flush.
                        if kind == _GSKEW:
                            (uops, taken, si, btag, pc, tkb, ftb, snap,
                             k0, k1, v1, pch, h1, hi1) = f_rows[i]
                        else:
                            (uops, taken, si, btag, pc, tkb, ftb, snap,
                             k0, k1, c) = f_rows[i]
                        fetched_uops += uops
                        s = tail & cmask
                        tail += 1
                        if use_btb:
                            brow = b_sets[si]
                            if brow and brow[-1] == btag:
                                dyn = True
                            elif btag in brow:
                                brow.remove(btag)
                                brow.append(btag)
                                dyn = True
                            else:
                                dyn = False
                        else:
                            dyn = True
                        if dyn:
                            if kind == _GSKEW:
                                v2 = ((bhr_val & gk_hmask) ^ pch) & gk_imask
                                g0 = h1 ^ gk_hx[v2]
                                g1 = g0 ^ v2 ^ v1
                                meta = hi1 ^ gk_hv[v2]
                                state = (v1, g0, g1, meta)
                                bim = gk_bim[v1] > 1
                                if gk_meta[meta] > 1:
                                    pred = (
                                        bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)
                                    ) >= 2
                                else:
                                    pred = bim
                            elif kind == _GSHARE:
                                state = (c ^ (bhr_val & gs_hmask)) & gs_imask
                                pred = gs_raw[state] > gs_mid
                            elif kind == _GAS:
                                state = ((bhr_val & ga_hmask) << ga_sb) | c
                                pred = ga_raw[state] > ga_mid
                            elif kind == _PERC:
                                state = pp_inputs(bhr_val)
                                pred = int(
                                    np_dot(pp_w[c].astype(np_int32), state)
                                ) >= 0
                            else:
                                state = c
                                pred = bm_raw[state] > bm_mid
                            r_fe[s] = (pc, bhr_val, bor_val, tkb, ftb, k0, k1,
                                       snap, next_seq, False, pred, state)
                            bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                            bor_val = ((bor_val << 1) | pred) & bor_mask
                            next_seq += 1
                            if pred != taken:
                                # Divergence: leave the trace; the walker
                                # picks up at the predicted target.
                                fe_aligned = False
                                n_aligned = tail - head
                                ras_c, ras_n = snap
                                ras_ver += 1
                                ras_snap = snap
                                snap_ver = ras_ver
                                w_block = tkb if pred else ftb
                        else:
                            # No BOR bit for statics: seq stored without
                            # incrementing next_seq.
                            r_fe[s] = (pc, bhr_val, bor_val, tkb, ftb, k0, k1,
                                       snap, next_seq, True, False, 0)
                            if taken:
                                # Static taken: the walker falls off-path
                                # at the fallthrough.
                                fe_aligned = False
                                n_aligned = tail - head
                                ras_c, ras_n = snap
                                ras_ver += 1
                                ras_snap = snap
                                snap_ver = ras_ver
                                w_block = ftb
                    else:
                        # Wrong-path (or post-trace) fill: walk the flat
                        # CFG one fetch at a time.
                        try:
                            fs = flat[w_block]
                        except KeyError:
                            fs = flatten(w_block)
                        pc = fs[2]
                        if pc is not None and fs[1] is None:
                            # Common case: the collapsed chain ends at a
                            # conditional branch with no RAS traffic.
                            uops = fs[0]
                        else:
                            uops = 0
                            while True:
                                uops += fs[0]
                                ops = fs[1]
                                if ops is not None:
                                    for op in ops:
                                        if op >= 0:
                                            ras_c = (op, ras_c)
                                            if ras_n < _RAS_CAPACITY:
                                                ras_n += 1
                                        else:
                                            ras_c = ras_c[1]
                                            ras_n -= 1
                                    ras_ver += 1
                                pc = fs[2]
                                if pc is not None:
                                    break
                                nb = fs[5]
                                if nb is not None:
                                    bid = nb
                                elif ras_n:
                                    bid, ras_c = ras_c
                                    ras_n -= 1
                                    ras_ver += 1
                                else:
                                    bid = entry
                                try:
                                    fs = flat[bid]
                                except KeyError:
                                    fs = flatten(bid)
                        fetched_uops += uops
                        s = tail & cmask
                        tail += 1
                        if use_btb:
                            row = b_sets[fs[6]]
                            t = fs[7]
                            if row and row[-1] == t:
                                dyn = True
                            elif t in row:
                                row.remove(t)
                                row.append(t)
                                dyn = True
                            else:
                                dyn = False
                        else:
                            dyn = True
                        tkb = fs[3]
                        ftb = fs[4]
                        if snap_ver != ras_ver:
                            ras_snap = (ras_c, ras_n)
                            snap_ver = ras_ver
                        if dyn:
                            if kind == _GSKEW:
                                v1 = fs[8]
                                v2 = ((bhr_val & gk_hmask) ^ fs[9]) & gk_imask
                                g0 = fs[10] ^ gk_hx[v2]
                                g1 = g0 ^ v2 ^ v1
                                meta = fs[11] ^ gk_hv[v2]
                                state = (v1, g0, g1, meta)
                                bim = gk_bim[v1] > 1
                                if gk_meta[meta] > 1:
                                    pred = (
                                        bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)
                                    ) >= 2
                                else:
                                    pred = bim
                            elif kind == _GSHARE:
                                state = (fs[8] ^ (bhr_val & gs_hmask)) & gs_imask
                                pred = gs_raw[state] > gs_mid
                            elif kind == _GAS:
                                state = ((bhr_val & ga_hmask) << ga_sb) | fs[8]
                                pred = ga_raw[state] > ga_mid
                            elif kind == _PERC:
                                state = pp_inputs(bhr_val)
                                pred = int(
                                    np_dot(pp_w[fs[8]].astype(np_int32), state)
                                ) >= 0
                            else:
                                state = fs[8]
                                pred = bm_raw[state] > bm_mid
                            r_fe[s] = (pc, bhr_val, bor_val, tkb, ftb, fs[12],
                                       fs[13], ras_snap, next_seq, False, pred,
                                       state)
                            bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                            bor_val = ((bor_val << 1) | pred) & bor_mask
                            next_seq += 1
                        else:
                            pred = False
                            # No BOR bit for statics: seq stored without
                            # incrementing next_seq.
                            r_fe[s] = (pc, bhr_val, bor_val, tkb, ftb, fs[12],
                                       fs[13], ras_snap, next_seq, True, False,
                                       0)
                        w_block = tkb if pred else ftb
                    # -- burst exit checks (same order as scalar) -------
                    if tail >= fetch_limit:
                        break
                    if not have_candidate:
                        have_candidate = True
                        if dyn:
                            target_seq = next_seq - 1 + required_bits
                        else:
                            target_seq = next_seq  # static: eligible now
                    if next_seq < target_seq:
                        continue
                    # -- candidate went bits-ready: drain every critique
                    #    that is now eligible, then resume fetching ------
                    s = (head + critiqued) & cmask
                    fe = r_fe[s]
                    fetch_limit = head_depth1
                    while True:
                        if fe[9]:
                            critiqued += 1
                        else:
                            k0 = fe[5]
                            ppred = fe[10]
                            bor_value = bor_val if use_live_bor else fe[2]
                            if fst is not None:
                                w = bor_value & vmask
                                si = (k0 ^ fst[w]) & c_set_mask
                                tg = (fe[6] ^ ftt[w]) & c_tag_mask
                            else:
                                # Inline TaggedGsharePredictor._hash_pair.
                                value = bor_value & c_hmask
                                fi = k0
                                for sh in c_set_shifts:
                                    fi ^= value >> sh
                                ftag = 0
                                for sh in c_tag_shifts:
                                    ftag ^= value >> sh
                                ft2 = 0
                                if c_tag_shifts:
                                    rotated = (
                                        (bor_value >> 1)
                                        | ((bor_value & 1) << c_rot)
                                    ) & c_hmask
                                    for sh in c_tag_shifts:
                                        ft2 ^= rotated >> sh
                                tg = (fe[6] ^ ftag ^ (ft2 << 1)) & c_tag_mask
                                si = fi & c_set_mask
                            f_lookups += 1
                            way = f_maps[si].get(tg)
                            if way is not None:
                                f_hits += 1
                                order = f_lru[si]
                                if order[-1] != way:
                                    order.remove(way)
                                    order.append(way)
                                if ckind == _CR_TAGGED:
                                    final = c_counters[si * c_ways + way] > 1
                                else:
                                    final = int(np_dot(
                                        fp_w[k0 % fp_n].astype(np_int32),
                                        fp_inputs(bor_value),
                                    )) >= 0
                                r_cq[s] = (final, True, final, si, tg, bor_value)
                            else:
                                final = ppred
                                r_cq[s] = (ppred, False, None, si, tg, bor_value)
                            critiqued += 1
                            if final != ppred:
                                # Critic override: FTQ-confined flush +
                                # redirect, then re-dispatch through the
                                # outer loop.
                                bhrb = fe[1]
                                borb = fe[2]
                                tkb = fe[3]
                                ftb = fe[4]
                                snap = fe[7]
                                seq = fe[8]
                                tail = head + critiqued
                                bhr_val = ((bhrb << 1) | final) & bhr_mask
                                bor_val = ((borb << 1) | final) & bor_mask
                                next_seq = seq + 1
                                if resolved >= warmup:
                                    st_credir += 1
                                off = critiqued - 1
                                if fe_aligned:
                                    if final != t_tk[resolved + off]:
                                        fe_aligned = False
                                        n_aligned = critiqued
                                        ras_c, ras_n = snap
                                        ras_ver += 1
                                        ras_snap = snap
                                        snap_ver = ras_ver
                                        w_block = tkb if final else ftb
                                elif off < n_aligned:
                                    n_aligned = critiqued
                                    if final == t_tk[resolved + off]:
                                        # The override undoes the
                                        # divergence: the surviving
                                        # window prefix is exactly the
                                        # trace again, so re-align
                                        # instead of restoring the
                                        # walker.
                                        fe_aligned = True
                                    else:
                                        ras_c, ras_n = snap
                                        ras_ver += 1
                                        ras_snap = snap
                                        snap_ver = ras_ver
                                        w_block = tkb if final else ftb
                                else:
                                    ras_c, ras_n = snap
                                    ras_ver += 1
                                    ras_snap = snap
                                    snap_ver = ras_ver
                                    w_block = tkb if final else ftb
                                burst_done = True
                                break
                        if tail >= head_depth1:
                            burst_done = 2
                            break
                        if critiqued >= tail - head:
                            have_candidate = False
                            break
                        s = (head + critiqued) & cmask
                        fe = r_fe[s]
                        if fe[9]:
                            continue
                        target_seq = fe[8] + required_bits
                        if next_seq < target_seq:
                            break
                    if burst_done:
                        break
                if burst_done != 2:
                    continue
                # Depth-full exit: the scalar loop's next action is a
                # resolve unless the arm has an eligible candidate (a
                # forced critique needs pending >= hard_cap, impossible
                # at depth + 1), so fall straight through to the resolve
                # burst instead of re-dispatching through the outer loop.
                if critiqued < tail - head:
                    fe = r_fe[(head + critiqued) & cmask]
                    if fe[9] or next_seq - fe[8] >= required_bits:
                        continue

            # 2) Resolve burst.
            while True:
                s = head & cmask
                pc = t_pc[resolved]
                taken = t_tk[resolved]
                uops = t_uops[resolved]
                (fpc, bhrb, borb, tkb, ftb, k0, k1, snap, seq, statc,
                 ppred, state) = r_fe[s]
                if pc != fpc:
                    raise SimulationDesyncError(
                        f"committed branch {pc:#x} but front end fetched "
                        f"{fpc:#x} (branch #{resolved})"
                    )
                if statc:
                    if resolved >= warmup:
                        st_branches += 1
                        st_uops += uops
                        if taken:
                            st_taken += 1
                        st_static += 1
                        if taken:
                            st_misp += 1
                            st_pmisp += 1
                    if use_btb:
                        word = pc >> 2
                        t = word >> b_set_bits
                        row = b_sets[word & b_set_mask]
                        if t in row:
                            row.remove(t)
                        elif len(row) >= b_ways:
                            row.pop(0)
                        row.append(t)
                    mispredicted = taken
                else:
                    (final, chit, cpred, si, tg, borc) = r_cq[s]
                    if resolved >= warmup:
                        st_branches += 1
                        st_uops += uops
                        if taken:
                            st_taken += 1
                        pcorr = ppred == taken
                        if not chit:
                            if pcorr:
                                n_cn += 1
                            else:
                                n_in += 1
                        elif cpred == ppred:
                            if pcorr:
                                n_ca += 1
                            else:
                                n_ia += 1
                        elif pcorr:
                            n_cd += 1
                        else:
                            n_id += 1
                        fm = final != taken
                        if not pcorr:
                            st_pmisp += 1
                        if fm:
                            st_misp += 1
                        if collect_per_site:
                            row = site.get(pc)
                            if row is None:
                                site[pc] = row = [0, 0, 0, 0, 0]
                            row[0] += 1
                            if not pcorr:
                                row[1] += 1
                                if not fm:
                                    row[3] += 1
                            if fm:
                                row[2] += 1
                                if pcorr:
                                    row[4] += 1
                    if kind == _GSKEW:
                        # Inlined TwoBcGskewPredictor.update_packed —
                        # ``state`` carries the four bank indices
                        # unpacked, so no shift/mask decode here.
                        if gk_stats_on:
                            gk_sn += 1
                            if ppred == taken:
                                gk_sc += 1
                        bi, g0i, g1i, mi = state
                        bv = gk_bim[bi]
                        g0v = gk_g0[g0i]
                        g1v = gk_g1[g1i]
                        bim = bv > 1
                        g0 = g0v > 1
                        g1 = g1v > 1
                        mm = gk_meta[mi] > 1
                        majority = (bim + g0 + g1) >= 2
                        overall = majority if mm else bim
                        if taken:
                            if overall:
                                if mm:
                                    if bim and bv < 3:
                                        gk_bim[bi] = bv + 1
                                    if g0 and g0v < 3:
                                        gk_g0[g0i] = g0v + 1
                                    if g1 and g1v < 3:
                                        gk_g1[g1i] = g1v + 1
                                elif bv < 3:
                                    gk_bim[bi] = bv + 1
                            else:
                                if bv < 3:
                                    gk_bim[bi] = bv + 1
                                if g0v < 3:
                                    gk_g0[g0i] = g0v + 1
                                if g1v < 3:
                                    gk_g1[g1i] = g1v + 1
                        else:
                            if not overall:
                                if mm:
                                    if not bim and bv > 0:
                                        gk_bim[bi] = bv - 1
                                    if not g0 and g0v > 0:
                                        gk_g0[g0i] = g0v - 1
                                    if not g1 and g1v > 0:
                                        gk_g1[g1i] = g1v - 1
                                elif bv > 0:
                                    gk_bim[bi] = bv - 1
                            else:
                                if bv > 0:
                                    gk_bim[bi] = bv - 1
                                if g0v > 0:
                                    gk_g0[g0i] = g0v - 1
                                if g1v > 0:
                                    gk_g1[g1i] = g1v - 1
                        if bim != majority:
                            mv = gk_meta[mi]
                            if majority == taken:
                                if mv < 3:
                                    gk_meta[mi] = mv + 1
                            elif mv > 0:
                                gk_meta[mi] = mv - 1
                    else:
                        prophet_update(pc, bhrb, taken, ppred, state)
                    fmt = (final != taken) if insert_final else (ppred != taken)
                    # Inline train_hashed: probe (no LRU/stats side
                    # effects), train + touch on hit, insert on
                    # final-mispredict miss.
                    if ckind == _CR_TAGGED:
                        way = f_maps[si].get(tg)
                        if way is not None:
                            idx = si * c_ways + way
                            if c_stats_on:
                                c_sn += 1
                                if (c_counters[idx] > 1) == taken:
                                    c_sc += 1
                            v = c_counters[idx]
                            if taken:
                                if v < 3:
                                    c_counters[idx] = v + 1
                            elif v > 0:
                                c_counters[idx] = v - 1
                            order = f_lru[si]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                        elif fmt:
                            fmap = f_maps[si]
                            frow = f_tags[si]
                            if len(fmap) < f_ways:
                                way = frow.index(None)
                            else:
                                way = f_lru[si][0]
                                del fmap[frow[way]]
                                f_evc += 1
                            frow[way] = tg
                            fmap[tg] = way
                            f_ins += 1
                            order = f_lru[si]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                            c_counters[si * c_ways + way] = 2 if taken else 1
                    else:
                        # Filtered perceptron. The scalar path dots the
                        # weight row twice (predict, then update's
                        # recompute) against weights nothing mutates in
                        # between, so one dot is bit-identical.
                        way = f_maps[si].get(tg)
                        if way is not None:
                            x = fp_inputs(borc)
                            wi = k0 % fp_n
                            wrow = fp_w[wi]
                            y = int(np_dot(wrow.astype(np_int32), x))
                            predicted = y >= 0
                            if c_stats_on:
                                c_sn += 1
                                if predicted == taken:
                                    c_sc += 1
                            if fp_stats_on:
                                fp_sn += 1
                                if predicted == taken:
                                    fp_sc += 1
                            if predicted != taken or abs(y) <= fp_thresh:
                                t = 1 if taken else -1
                                updated = wrow + t * x
                                np_clip(updated, fp_wmin, fp_wmax, out=updated)
                                fp_w[wi] = updated
                            order = f_lru[si]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                        elif fmt:
                            # Allocate, then prime the perceptron toward
                            # the outcome (no critic stats, no touch).
                            fmap = f_maps[si]
                            frow = f_tags[si]
                            if len(fmap) < f_ways:
                                way = frow.index(None)
                            else:
                                way = f_lru[si][0]
                                del fmap[frow[way]]
                                f_evc += 1
                            frow[way] = tg
                            fmap[tg] = way
                            f_ins += 1
                            order = f_lru[si]
                            if order[-1] != way:
                                order.remove(way)
                                order.append(way)
                            x = fp_inputs(borc)
                            wi = k0 % fp_n
                            wrow = fp_w[wi]
                            y = int(np_dot(wrow.astype(np_int32), x))
                            if fp_stats_on:
                                fp_sn += 1
                                if (y >= 0) == taken:
                                    fp_sc += 1
                            if (y >= 0) != taken or abs(y) <= fp_thresh:
                                t = 1 if taken else -1
                                updated = wrow + t * x
                                np_clip(updated, fp_wmin, fp_wmax, out=updated)
                                fp_w[wi] = updated
                    mispredicted = final != taken
                head += 1
                resolved += 1
                if resolved == warmup:
                    warmup_fetched = fetched_uops
                if mispredicted:
                    bhr_val = ((bhrb << 1) | taken) & bhr_mask
                    bor_val = ((borb << 1) | taken) & bor_mask
                    # The refetch resumes at the committed outcome of the
                    # branch just resolved -- by definition back on the
                    # trace. Re-align instead of restoring walker state;
                    # the walker is rebuilt lazily from the ring only if
                    # the front end diverges again.
                    fe_aligned = True
                    tail = head
                    critiqued = 0
                    next_seq = seq + 1
                    break
                if not fe_aligned:
                    n_aligned -= 1
                critiqued -= 1
                if resolved >= n_branches:
                    break
                if not (critiqued > 0 and tail - head > depth):
                    break
    finally:
        if not config.collect_predictor_stats:
            system.set_stats_enabled(True)
        bhr._value = bhr_val
        bor._value = bor_val
        fstats = filt.stats
        fstats.lookups += f_lookups
        fstats.hits += f_hits
        fstats.inserts += f_ins
        fstats.evictions += f_evc
        if c_sn:
            cstats = critic.stats
            cstats.predictions += c_sn
            cstats.correct += c_sc
        if kind == _GSKEW and gk_sn:
            pstats = prophet.stats
            pstats.predictions += gk_sn
            pstats.correct += gk_sc
        if ckind == _CR_FPERC and fp_sn:
            fpstats = fp.stats
            fpstats.predictions += fp_sn
            fpstats.correct += fp_sc

    stats.branches = st_branches
    stats.committed_uops = st_uops
    stats.taken_branches = st_taken
    stats.static_branches = st_static
    stats.mispredicts = st_misp
    stats.prophet_mispredicts = st_pmisp
    stats.forced_critiques = st_forced
    stats.critic_redirects = st_credir
    counts = stats.census.counts
    counts[CritiqueKind.CORRECT_AGREE] = n_ca
    counts[CritiqueKind.CORRECT_DISAGREE] = n_cd
    counts[CritiqueKind.INCORRECT_AGREE] = n_ia
    counts[CritiqueKind.INCORRECT_DISAGREE] = n_id
    counts[CritiqueKind.CORRECT_NONE] = n_cn
    counts[CritiqueKind.INCORRECT_NONE] = n_in
    if site:
        stats.per_site = site
    stats.fetched_uops = max(0, fetched_uops - warmup_fetched)
    return stats
