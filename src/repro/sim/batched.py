"""Batched structure-of-arrays simulation kernel.

An alternative backend for :func:`repro.sim.driver.simulate`, selected
via ``SimulationConfig.backend = "batched"``. Same machines, same event
order, same numbers — the differential tests pin it bit-for-bit against
the scalar loop and the frozen reference kernel — but organised around
flat parallel arrays instead of pooled handle objects:

* the committed branch stream is prediction-independent, so the
  architectural executor resolves it **once, up front**, into
  structure-of-arrays trace columns; per-branch quantities that depend
  only on the branch pc — BTB set/tag pairs, each predictor's pc-side
  index constants — are then precomputed in one vectorized numpy pass;
* the in-flight window lives in **structure-of-arrays rings** (one plain
  list per field) instead of a ring of ``InflightBranch`` objects;
* predictor/BTB/RAS/walker operations are **fused into the kernel**: per
  branch the loop does raw list indexing and integer arithmetic instead
  of a stack of method calls;
* while the front end sits on the committed path, a fetch is pure column
  reads plus one table probe — the CFG walk and RAS maintenance only
  run for wrong-path fetches between a divergence and its flush.

Memory note: the trace columns make a batched run O(n_branches) in
memory (a handful of machine words per branch) where the scalar loop is
O(window). That is the deliberate trade for throughput.

``simulate_batched`` specializes the system shapes the sweeps actually
run — :class:`SinglePredictorSystem` and :class:`ProphetCriticSystem`
over the table predictors (2bc-gskew, gshare, gas, bimodal) with the
tagged-gshare critic — and returns None for anything else (including
when numpy is unavailable), telling the driver to fall back to the
scalar loop.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy is part of the toolchain
    np = None

from repro.core.critiques import CritiqueKind
from repro.core.hybrid import ProphetCriticSystem, SinglePredictorSystem
from repro.engine.btb import BranchTargetBuffer
from repro.engine.executor import ArchitecturalExecutor
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.gas import GAsPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.tagged_gshare import TaggedGsharePredictor
from repro.sim.driver import SimulationDesyncError
from repro.sim.metrics import RunStats

#: Must match SpeculativeWalker/ArchitecturalExecutor defaults: the
#: compiled-CFG pair limit and the drop-oldest RAS bound.
_RAS_CAPACITY = 64

_GSKEW, _GSHARE, _GAS, _BIMODAL = 1, 2, 3, 4

#: Exact-type dispatch: subclasses may override behaviour the fused
#: kernels inline, so they fall back to the scalar loop.
_PROPHET_KINDS = {
    TwoBcGskewPredictor: _GSKEW,
    GsharePredictor: _GSHARE,
    GAsPredictor: _GAS,
    BimodalPredictor: _BIMODAL,
}


# -- structure-of-arrays predictor helpers ----------------------------------
#
# Each batch helper evaluates one predictor over parallel (pc, history)
# arrays, reading the predictor's live counter lists. Index math runs in
# numpy; counter gathers go through listcomp/fromiter on the raw Python
# lists (converting a whole table to an array per call would cost more
# than the batch saves). Constant hash tables are cached on the
# predictor as numpy arrays on first use.


def _np_table(predictor, attr: str, values) -> "np.ndarray":
    """Cache a constant lookup table on the predictor as int64 ndarray."""
    cached = getattr(predictor, attr, None)
    if cached is None:
        cached = np.asarray(values, dtype=np.int64)
        setattr(predictor, attr, cached)
    return cached


def batch_predict_gskew(predictor, pcs, histories):
    """Vectorized ``TwoBcGskewPredictor.predict_packed``.

    Returns ``(preds, packed)``: a bool ndarray of predictions and the
    list of packed bank-index states (Python ints — the packed word can
    exceed 63 bits at large geometries).
    """
    n = predictor._index_bits
    imask = predictor._index_mask
    h_np = _np_table(predictor, "_h_np", predictor._h_table)
    hinv_np = _np_table(predictor, "_hinv_np", predictor._hinv_table)
    v1 = (pcs >> 2) & imask
    v2 = ((histories & predictor._history_mask) ^ (pcs >> predictor._pc_high_shift)) & imask
    hv1 = h_np[v1]
    hinv_v2 = hinv_np[v2]
    g0_idx = hv1 ^ hinv_v2 ^ v2
    g1_idx = hv1 ^ hinv_v2 ^ v1
    meta_idx = hinv_np[v1] ^ h_np[v2] ^ v2
    v1_l = v1.tolist()
    g0_l = g0_idx.tolist()
    g1_l = g1_idx.tolist()
    meta_l = meta_idx.tolist()
    count = len(v1_l)
    bim_raw = predictor._bim_raw
    g0_raw = predictor._g0_raw
    g1_raw = predictor._g1_raw
    meta_raw = predictor._meta_raw
    bim_t = np.fromiter((bim_raw[i] for i in v1_l), dtype=np.int64, count=count) > 1
    g0_t = np.fromiter((g0_raw[i] for i in g0_l), dtype=np.int64, count=count) > 1
    g1_t = np.fromiter((g1_raw[i] for i in g1_l), dtype=np.int64, count=count) > 1
    meta_t = np.fromiter((meta_raw[i] for i in meta_l), dtype=np.int64, count=count) > 1
    majority = (bim_t.astype(np.int64) + g0_t + g1_t) >= 2
    preds = np.where(meta_t, majority, bim_t)
    n2 = 2 * n
    n3 = 3 * n
    packed = [
        v1_l[i] | (g0_l[i] << n) | (g1_l[i] << n2) | (meta_l[i] << n3)
        for i in range(count)
    ]
    return preds, packed


def batch_predict_gshare(predictor, pcs, histories):
    """Vectorized ``GsharePredictor.predict_packed`` → (preds, indices)."""
    idx = ((pcs >> 2) ^ (histories & predictor._history_mask)) & predictor._index_mask
    idx_l = idx.tolist()
    raw = predictor._raw
    mid = predictor._midpoint
    preds = np.fromiter((raw[i] for i in idx_l), dtype=np.int64, count=len(idx_l)) > mid
    return preds, idx_l


def batch_predict_gas(predictor, pcs, histories):
    """Vectorized ``GAsPredictor.predict_packed`` → (preds, indices)."""
    hmask = (1 << predictor.history_length) - 1
    smask = (1 << predictor.set_bits) - 1
    idx = ((histories & hmask) << predictor.set_bits) | ((pcs >> 2) & smask)
    idx_l = idx.tolist()
    raw = predictor.table.raw
    mid = predictor.table.midpoint
    preds = np.fromiter((raw[i] for i in idx_l), dtype=np.int64, count=len(idx_l)) > mid
    return preds, idx_l


def batch_predict_bimodal(predictor, pcs, histories):
    """Vectorized ``BimodalPredictor.predict_packed`` → (preds, indices)."""
    idx = (pcs >> 2) & ((1 << predictor._index_bits) - 1)
    idx_l = idx.tolist()
    raw = predictor.table.raw
    mid = predictor.table.midpoint
    preds = np.fromiter((raw[i] for i in idx_l), dtype=np.int64, count=len(idx_l)) > mid
    return preds, idx_l


_BATCH_PREDICT = {
    _GSKEW: batch_predict_gskew,
    _GSHARE: batch_predict_gshare,
    _GAS: batch_predict_gas,
    _BIMODAL: batch_predict_bimodal,
}


def batch_hash_tagged_gshare(critic, pcs, histories):
    """Vectorized ``TaggedGsharePredictor._hash_pair``.

    Returns ``(set_indices, tags)`` as Python int lists. The rotated tag
    fold reads the *raw* history (before masking), exactly like the
    scalar hash.
    """
    values = histories & critic._history_mask
    fi = pcs >> 2
    for shift in critic._set_fold_shifts:
        fi = fi ^ (values >> shift)
    ftag = np.zeros_like(pcs)
    for shift in critic._tag_fold_shifts:
        ftag = ftag ^ (values >> shift)
    ft2 = np.zeros_like(pcs)
    if critic._tag_fold_shifts:
        rotated = ((histories >> 1) | ((histories & 1) << critic._rotate_shift)) & critic._history_mask
        for shift in critic._tag_fold_shifts:
            ft2 = ft2 ^ (rotated >> shift)
    tags = (
        (pcs >> 5) ^ (pcs >> (5 + critic.tag_bits)) ^ ftag ^ (ft2 << 1)
    ) & critic._tag_mask
    sets = fi & critic._set_mask
    return sets.tolist(), tags.tolist()


# -- flat CFG segments ------------------------------------------------------
#
# The kernels walk a per-block table of flat tuples instead of
# CompiledSegment objects + BasicBlock attribute chains. Slot layout:
#
#   0 uops   1 ras_ops|None   2 pc|None (None = no terminating branch)
#   3 taken_target   4 fallthrough   5 next_block
#   6 btb set index  7 btb tag
#   8..11 prophet per-pc constants (kind-specific)
#   12 critic fold seed (pc >> 2)   13 critic tag pc-part


def _make_pc_consts(predictor, kind: int, critic):
    """Per-branch-pc constant extractor for the flat segment table."""
    tb5 = 5 + critic.tag_bits if critic is not None else 5
    if kind == _GSKEW:
        imask = predictor._index_mask
        shift = predictor._pc_high_shift
        h = predictor._h_table
        hinv = predictor._hinv_table

        def pc_consts(pc):
            v1 = (pc >> 2) & imask
            return v1, pc >> shift, h[v1], hinv[v1], pc >> 2, (pc >> 5) ^ (pc >> tb5)
    elif kind == _GSHARE:

        def pc_consts(pc):
            return pc >> 2, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)
    elif kind == _GAS:
        smask = (1 << predictor.set_bits) - 1

        def pc_consts(pc):
            return (pc >> 2) & smask, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)
    else:
        imask = (1 << predictor._index_bits) - 1

        def pc_consts(pc):
            return (pc >> 2) & imask, 0, 0, 0, pc >> 2, (pc >> 5) ^ (pc >> tb5)

    return pc_consts


def _make_flattener(compiled, use_btb: bool, set_mask: int, set_bits: int, pc_consts):
    """Return ``(flat, flatten)``: the lazy per-block flat-tuple table.

    Straight-line ``next_block`` chains are collapsed into the entry of
    their starting block — uop counts summed, RAS op lists concatenated
    in walk order — so the walker reaches the next conditional branch
    (or dynamic return) in a single table hit. ``next_block`` (slot 5)
    is therefore always None in collapsed entries.
    """
    segments = compiled._segments
    flat: dict = {}

    def flatten(bid):
        uops = 0
        ops: list = []
        cur = bid
        while True:
            seg = segments.get(cur)
            if seg is None:
                seg = compiled.segment(cur)
            uops += seg.uops
            if seg.ras_ops:
                ops.extend(seg.ras_ops)
            branch = seg.branch
            if branch is not None:
                pc = branch.pc
                word = pc >> 2
                c0, c1, c2, c3, k0, k1 = pc_consts(pc)
                entry = (
                    uops, tuple(ops) or None, pc,
                    branch.taken_target, branch.fallthrough, None,
                    word & set_mask if use_btb else 0,
                    word >> set_bits if use_btb else 0,
                    c0, c1, c2, c3, k0, k1,
                )
                break
            nxt = seg.next_block
            if nxt is None:
                # Chain ends at a dynamic return: the next block comes
                # off the walker's RAS.
                entry = (
                    uops, tuple(ops) or None, None, 0, 0, None,
                    0, 0, 0, 0, 0, 0, 0, 0,
                )
                break
            cur = nxt
        flat[bid] = entry
        return entry

    return flat, flatten


# -- dispatch ---------------------------------------------------------------


def simulate_batched(program, system, config):
    """Run the batched kernel, or return None for unsupported shapes."""
    if type(system) is SinglePredictorSystem:
        kind = _PROPHET_KINDS.get(type(system.predictor))
        if kind is None:
            return None
        return _simulate_single(program, system, config, kind)
    if type(system) is ProphetCriticSystem:
        kind = _PROPHET_KINDS.get(type(system.prophet))
        if kind is None or type(system.critic) is not TaggedGsharePredictor:
            return None
        return _simulate_hybrid(program, system, config, kind)
    return None


# -- single-predictor kernel ------------------------------------------------
#
# With future_bits == 0 every critique is trivially eligible the moment
# its branch is fetched, produces final == prophet (never a redirect)
# and has no side effects, so the scalar driver's three-arm loop
# provably collapses to: fetch one branch while the window holds at most
# `depth` entries, otherwise resolve one. Fetch bursts are single-fetch
# (the just-fetched branch immediately satisfies its own target_seq),
# resolve bursts are single-resolve, the census can only ever contain
# CORRECT_NONE / INCORRECT_NONE, and seq bookkeeping drops out.
#
# The kernel then exploits one more structural fact: the architectural
# executor never observes the front end, so the committed branch stream
# is a pure function of the program. It is resolved once, up front, into
# structure-of-arrays trace columns, and everything derivable from the
# trace pcs alone — BTB set/tag pairs, each predictor's pc-side index
# constants — is precomputed in one vectorized numpy pass. While the
# front end is on the committed path ("aligned", which is everywhere
# except between a divergent fetch and the flush that follows it) a
# fetch needs no CFG walk and no RAS maintenance at all: it reads trace
# columns, probes the BTB, and predicts from the precomputed constants.
# Only wrong-path fetches (at most depth+1 per flush) walk the flat CFG
# table, and every flush re-aligns the front end with the trace.


def _architectural_trace(program, n: int):
    """Columns of the first ``n`` committed branches, memoized.

    The architectural stream never observes the front end, so the trace
    is a pure function of the (deterministic) program — independent of
    predictor, BTB, and window configuration — and prefix-stable in
    ``n``. The longest trace built so far is cached on the program
    object and shorter requests are served as slices, so sweeping many
    systems over one program pays for the executor walk once. Memory is
    O(n) per program; ``Program.reset()`` leaves the cache intact (the
    replay is deterministic from reset state by construction).

    Returns ``(t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)``: per-branch pc,
    outcome, uop count, taken target, fallthrough, and post-resolve RAS
    snapshot.
    """
    cached = getattr(program, "_trace_cache", None)
    if cached is not None and cached[0] >= n:
        if cached[0] == n:
            return cached[1]
        return tuple(col[:n] for col in cached[1])
    program.reset()
    executor = ArchitecturalExecutor(program)
    t_pc = [0] * n
    t_tk = [False] * n
    t_uops = [0] * n
    t_tt = [0] * n
    t_ft = [0] * n
    t_snap = [()] * n
    resolve_next = executor.resolve_next
    ras_snapshot = executor._ras.snapshot
    for i in range(n):
        pc, taken, uops = resolve_next()
        br = executor._last_branch
        t_pc[i] = pc
        t_tk[i] = taken
        t_uops[i] = uops
        t_tt[i] = br.taken_target
        t_ft[i] = br.fallthrough
        t_snap[i] = ras_snapshot()
    cols = (t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)
    program._trace_cache = (n, cols)
    return cols


def _simulate_single(program, system, config, kind: int):
    if np is None:
        return None
    program.reset()
    compiled = program.compiled(pair_limit=_RAS_CAPACITY)
    entry = program.entry
    n_branches = config.n_branches

    # Architectural trace: SoA columns of the committed stream, built by
    # exactly n_branches resolve_next() calls (memoized across runs).
    t_pc, t_tk, t_uops, t_tt, t_ft, t_snap = _architectural_trace(
        program, n_branches
    )

    use_btb = config.use_btb
    if use_btb:
        btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        b_sets = btb._sets
        b_set_mask = btb._set_mask
        b_set_bits = btb._set_bits
        b_ways = btb.ways
    else:
        b_sets = b_set_mask = b_set_bits = b_ways = None

    predictor = system.predictor
    update_packed = system._update_packed
    pc_consts = _make_pc_consts(predictor, kind, None)
    flat, flatten = _make_flattener(
        compiled, use_btb, b_set_mask or 0, b_set_bits or 0, pc_consts
    )

    # ---- vectorized precompute over the trace pcs ----------------------
    if n_branches:
        pcs = np.fromiter(t_pc, dtype=np.int64, count=n_branches)
    else:
        pcs = np.zeros(0, dtype=np.int64)
    if use_btb:
        words = pcs >> 2
        a_si = (words & b_set_mask).tolist()
        a_tag = (words >> b_set_bits).tolist()
    else:
        a_si = a_tag = [0] * n_branches

    # Per-kind hoisted constants + per-branch pc-side index columns.
    if kind == _GSKEW:
        gk_n = predictor._index_bits
        gk_n2 = 2 * gk_n
        gk_n3 = 3 * gk_n
        gk_imask = predictor._index_mask
        gk_hmask = predictor._history_mask
        gk_h = predictor._h_table
        gk_hinv = predictor._hinv_table
        gk_bim = predictor._bim_raw
        gk_g0 = predictor._g0_raw
        gk_g1 = predictor._g1_raw
        gk_meta = predictor._meta_raw
        v1_np = (pcs >> 2) & gk_imask
        a_v1 = v1_np.tolist()
        a_pch = (pcs >> predictor._pc_high_shift).tolist()
        a_h1 = _np_table(predictor, "_h_np", gk_h)[v1_np].tolist()
        a_hi1 = _np_table(predictor, "_hinv_np", gk_hinv)[v1_np].tolist()
        f_rows = list(zip(t_uops, t_tk, a_si, a_tag, a_v1, a_pch, a_h1, a_hi1))
    elif kind == _GSHARE:
        gs_hmask = predictor._history_mask
        gs_imask = predictor._index_mask
        gs_raw = predictor._raw
        gs_mid = predictor._midpoint
        a_c = (pcs >> 2).tolist()
        f_rows = list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    elif kind == _GAS:
        ga_hmask = (1 << predictor.history_length) - 1
        ga_sb = predictor.set_bits
        ga_raw = predictor.table.raw
        ga_mid = predictor.table.midpoint
        a_c = ((pcs >> 2) & ((1 << ga_sb) - 1)).tolist()
        f_rows = list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    else:
        bm_raw = predictor.table.raw
        bm_mid = predictor.table.midpoint
        a_c = ((pcs >> 2) & ((1 << predictor._index_bits) - 1)).tolist()
        f_rows = list(zip(t_uops, t_tk, a_si, a_tag, a_c))
    # Fused per-branch rows: one tuple unpack per event in the hot loops
    # instead of half a dozen list indexings.
    res_rows = list(zip(t_pc, t_tk, t_uops, a_si, a_tag))

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    depth = config.effective_depth(0)
    warmup = config.warmup
    collect_per_site = config.collect_per_site

    # Structure-of-arrays in-flight ring (pending never exceeds depth+1).
    # Only aligned-fetched entries are stored: the ring row at `head` is
    # trace row `resolved` by construction, so no pc column is kept.
    cap = depth + 8
    r_pred = [False] * cap
    r_bhr = [0] * cap
    r_state = [0] * cap
    r_static = [False] * cap
    head = 0
    tail = 0
    resolved = 0
    warmup_fetched = 0
    fetched_uops = 0

    bhr = system.bhr
    bhr_val = bhr._value
    bhr_mask = bhr._mask

    # Flat walker state, materialised only while off the committed path:
    # current block and RAS list. (Wrong-path ring entries are only ever
    # flushed, never resolved, so no snapshots need to be kept for them.)
    w_block = entry
    ras: list = []
    #: True while the front end walks the committed path; `tail` is then
    #: the absolute trace index of the next fetch and the ring holds
    #: trace branches head..tail-1.
    aligned = True

    # Measurement counters (flushed into stats at the end).
    st_branches = st_uops = st_taken = st_static = st_misp = st_pmisp = 0
    c_cn = c_in = 0
    site: dict = {}

    if not config.collect_predictor_stats:
        system.set_stats_enabled(False)
    gk_stats_on = kind == _GSKEW and predictor.stats_enabled
    gk_record = predictor.stats.record
    flat_get = flat.get
    try:
        while resolved < n_branches:
            if tail - head <= depth:
                # ---- fetch arm -------------------------------------------
                # The window is open; fill it completely (the scalar loop
                # also fetches back-to-back until pending == depth+1, so
                # bursting keeps the exact event order).
                if aligned:
                    # Aligned burst: the walker provably sits on the
                    # committed path, so the trace columns *are* the walk
                    # — no CFG traversal, no RAS bookkeeping.
                    fill = head + depth + 1
                    if fill > n_branches:
                        fill = n_branches
                    m = tail
                    s = m % cap
                    if kind == _GSKEW:
                        while m < fill:
                            uops, taken, si, tag, v1, pch, h1, hi1 = f_rows[m]
                            fetched_uops += uops
                            if use_btb:
                                row = b_sets[si]
                                if tag in row:
                                    if row[-1] != tag:
                                        row.remove(tag)
                                        row.append(tag)
                                    dyn = True
                                else:
                                    dyn = False
                            else:
                                dyn = True
                            r_bhr[s] = bhr_val
                            if dyn:
                                v2 = ((bhr_val & gk_hmask) ^ pch) & gk_imask
                                hinv_v2 = gk_hinv[v2]
                                g0 = h1 ^ hinv_v2 ^ v2
                                g1 = h1 ^ hinv_v2 ^ v1
                                meta = hi1 ^ gk_h[v2] ^ v2
                                bim = gk_bim[v1] > 1
                                if gk_meta[meta] > 1:
                                    pred = (bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)) >= 2
                                else:
                                    pred = bim
                                r_static[s] = False
                                r_pred[s] = pred
                                r_state[s] = (
                                    v1 | (g0 << gk_n) | (g1 << gk_n2) | (meta << gk_n3)
                                )
                                bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                                if pred != taken:
                                    # Divergent fetch: materialise the
                                    # walker at the wrongly chosen target.
                                    aligned = False
                                    w_block = t_tt[m] if pred else t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            else:
                                r_static[s] = True
                                r_pred[s] = False
                                if taken:
                                    # Static (BTB-miss) branch taken: the
                                    # walker falls through, off the path.
                                    aligned = False
                                    w_block = t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            m += 1
                            s += 1
                            if s == cap:
                                s = 0
                    else:
                        while m < fill:
                            uops, taken, si, tag, c = f_rows[m]
                            fetched_uops += uops
                            if use_btb:
                                row = b_sets[si]
                                if tag in row:
                                    if row[-1] != tag:
                                        row.remove(tag)
                                        row.append(tag)
                                    dyn = True
                                else:
                                    dyn = False
                            else:
                                dyn = True
                            r_bhr[s] = bhr_val
                            if dyn:
                                if kind == _GSHARE:
                                    state = (c ^ (bhr_val & gs_hmask)) & gs_imask
                                    pred = gs_raw[state] > gs_mid
                                elif kind == _GAS:
                                    state = ((bhr_val & ga_hmask) << ga_sb) | c
                                    pred = ga_raw[state] > ga_mid
                                else:
                                    state = c
                                    pred = bm_raw[state] > bm_mid
                                r_static[s] = False
                                r_pred[s] = pred
                                r_state[s] = state
                                bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                                if pred != taken:
                                    aligned = False
                                    w_block = t_tt[m] if pred else t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            else:
                                r_static[s] = True
                                r_pred[s] = False
                                if taken:
                                    aligned = False
                                    w_block = t_ft[m]
                                    ras[:] = t_snap[m]
                                    m += 1
                                    break
                            m += 1
                            s += 1
                            if s == cap:
                                s = 0
                    tail = m
                    if aligned and m >= n_branches and tail - head <= depth:
                        # Trace exhausted while aligned: speculative
                        # fetches beyond branch n continue on the live
                        # walker.
                        aligned = False
                        last = m - 1
                        if r_static[last % cap]:
                            w_block = t_ft[last]
                        else:
                            w_block = t_tt[last] if t_tk[last] else t_ft[last]
                        ras[:] = t_snap[last]
                if not aligned:
                    # Wrong-path (or post-trace) fill: walk the flat CFG.
                    # These entries are discarded by the coming flush and
                    # never resolved, so nothing is stored in the ring —
                    # only their observable side effects happen: fetched
                    # uops, BTB LRU refreshes, and the speculative BHR
                    # bits that steer further wrong-path predictions.
                    limit = head + depth + 1
                    while tail < limit:
                        bid = w_block
                        uops = 0
                        while True:
                            fs = flat_get(bid)
                            if fs is None:
                                fs = flatten(bid)
                            uops += fs[0]
                            ops = fs[1]
                            if ops is not None:
                                for op in ops:
                                    if op >= 0:
                                        if len(ras) >= _RAS_CAPACITY:
                                            del ras[0]
                                        ras.append(op)
                                    else:
                                        ras.pop()
                            if fs[2] is not None:
                                break
                            if ras:
                                bid = ras.pop()
                            else:
                                bid = entry
                        fetched_uops += uops
                        tail += 1
                        _, _, _, tkb, ftb, _, si, tag, c0, c1, c2, c3, _k0, _k1 = fs
                        if use_btb:
                            row = b_sets[si]
                            if tag in row:
                                if row[-1] != tag:
                                    row.remove(tag)
                                    row.append(tag)
                                dyn = True
                            else:
                                dyn = False
                        else:
                            dyn = True
                        if dyn:
                            if kind == _GSKEW:
                                v2 = ((bhr_val & gk_hmask) ^ c1) & gk_imask
                                bim = gk_bim[c0] > 1
                                if gk_meta[c3 ^ gk_h[v2] ^ v2] > 1:
                                    hinv_v2 = gk_hinv[v2]
                                    g0 = c2 ^ hinv_v2 ^ v2
                                    g1 = c2 ^ hinv_v2 ^ c0
                                    pred = (
                                        bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)
                                    ) >= 2
                                else:
                                    pred = bim
                            elif kind == _GSHARE:
                                pred = gs_raw[(c0 ^ (bhr_val & gs_hmask)) & gs_imask] > gs_mid
                            elif kind == _GAS:
                                pred = ga_raw[((bhr_val & ga_hmask) << ga_sb) | c0] > ga_mid
                            else:
                                pred = bm_raw[c0] > bm_mid
                            bhr_val = ((bhr_val << 1) | pred) & bhr_mask
                        else:
                            pred = False
                        w_block = tkb if pred else ftb

            # ---- resolve arm --------------------------------------------
            # Only aligned-fetched entries ever reach the head (the
            # divergent entry flushes everything fetched after it), so the
            # ring row at `head` is trace row `resolved` by construction.
            s = head % cap
            i = resolved
            pc, taken, uops, si, tag = res_rows[i]
            statc = r_static[s]
            if i >= warmup:
                st_branches += 1
                st_uops += uops
                if taken:
                    st_taken += 1
                if statc:
                    st_static += 1
                    if taken:
                        st_misp += 1
                        st_pmisp += 1
                else:
                    p = r_pred[s]
                    if p == taken:
                        c_cn += 1
                    else:
                        c_in += 1
                        st_misp += 1
                        st_pmisp += 1
                    if collect_per_site:
                        row = site.get(pc)
                        if row is None:
                            site[pc] = row = [0, 0, 0, 0, 0]
                        row[0] += 1
                        if p != taken:
                            row[1] += 1
                            row[2] += 1
            if statc:
                if use_btb:
                    row = b_sets[si]
                    if tag in row:
                        row.remove(tag)
                    elif len(row) >= b_ways:
                        row.pop(0)
                    row.append(tag)
                mispredicted = taken

            else:
                p = r_pred[s]
                if kind == _GSKEW:
                    # Inlined TwoBcGskewPredictor.update_packed.
                    if gk_stats_on:
                        gk_record(p == taken)
                    packed = r_state[s]
                    bi = packed & gk_imask
                    g0i = (packed >> gk_n) & gk_imask
                    g1i = (packed >> gk_n2) & gk_imask
                    mi = packed >> gk_n3
                    bv = gk_bim[bi]
                    g0v = gk_g0[g0i]
                    g1v = gk_g1[g1i]
                    bim = bv > 1
                    g0 = g0v > 1
                    g1 = g1v > 1
                    mm = gk_meta[mi] > 1
                    majority = (bim + g0 + g1) >= 2
                    overall = majority if mm else bim
                    if taken:
                        if overall:
                            if mm:
                                if bim and bv < 3:
                                    gk_bim[bi] = bv + 1
                                if g0 and g0v < 3:
                                    gk_g0[g0i] = g0v + 1
                                if g1 and g1v < 3:
                                    gk_g1[g1i] = g1v + 1
                            elif bv < 3:
                                gk_bim[bi] = bv + 1
                        else:
                            if bv < 3:
                                gk_bim[bi] = bv + 1
                            if g0v < 3:
                                gk_g0[g0i] = g0v + 1
                            if g1v < 3:
                                gk_g1[g1i] = g1v + 1
                    else:
                        if not overall:
                            if mm:
                                if not bim and bv > 0:
                                    gk_bim[bi] = bv - 1
                                if not g0 and g0v > 0:
                                    gk_g0[g0i] = g0v - 1
                                if not g1 and g1v > 0:
                                    gk_g1[g1i] = g1v - 1
                            elif bv > 0:
                                gk_bim[bi] = bv - 1
                        else:
                            if bv > 0:
                                gk_bim[bi] = bv - 1
                            if g0v > 0:
                                gk_g0[g0i] = g0v - 1
                            if g1v > 0:
                                gk_g1[g1i] = g1v - 1
                    if bim != majority:
                        mv = gk_meta[mi]
                        if majority == taken:
                            if mv < 3:
                                gk_meta[mi] = mv + 1
                        elif mv > 0:
                            gk_meta[mi] = mv - 1
                else:
                    update_packed(pc, r_bhr[s], taken, p, r_state[s])
                mispredicted = p != taken
            head += 1
            resolved = i + 1
            if resolved == warmup:
                warmup_fetched = fetched_uops
            if mispredicted:
                bhr_val = ((r_bhr[s] << 1) | (1 if taken else 0)) & bhr_mask
                # Flush re-aligns the front end with the trace; the
                # walker state is rebuilt from trace columns at the next
                # divergence, so nothing else to restore.
                aligned = True
                tail = head
    finally:
        if not config.collect_predictor_stats:
            system.set_stats_enabled(True)
        bhr._value = bhr_val

    stats.branches = st_branches
    stats.committed_uops = st_uops
    stats.taken_branches = st_taken
    stats.static_branches = st_static
    stats.mispredicts = st_misp
    stats.prophet_mispredicts = st_pmisp
    counts = stats.census.counts
    counts[CritiqueKind.CORRECT_NONE] = c_cn
    counts[CritiqueKind.INCORRECT_NONE] = c_in
    if site:
        stats.per_site = site
    stats.fetched_uops = max(0, fetched_uops - warmup_fetched)
    return stats


# -- prophet/critic hybrid kernel -------------------------------------------
#
# The hybrid keeps the scalar driver's full three-arm event loop
# (critique / fetch burst / resolve burst) verbatim — future bits make
# the arm interleaving data-dependent — but fuses every operation the
# arms perform: walker traversal, BTB, prophet predict, the critic's
# fold hash + tag filter + counter train, and both history registers as
# plain local ints. The in-flight window is the same structure-of-arrays
# ring as the single kernel, widened with the critique-time fields.


def _simulate_hybrid(program, system, config, kind: int):
    if np is None:
        return None
    program.reset()
    compiled = program.compiled(pair_limit=_RAS_CAPACITY)
    entry = program.entry
    n_resolved = config.n_branches

    # Architectural trace, resolved up front (the executor never observes
    # the front end): exactly n_branches resolve_next() calls, memoized.
    t_pc, t_tk, t_uops, _, _, _ = _architectural_trace(program, n_resolved)

    use_btb = config.use_btb
    if use_btb:
        btb = BranchTargetBuffer(config.btb_entries, config.btb_ways)
        b_sets = btb._sets
        b_set_mask = btb._set_mask
        b_set_bits = btb._set_bits
        b_ways = btb.ways
    else:
        b_sets = b_set_mask = b_set_bits = b_ways = None

    prophet = system.prophet
    critic = system.critic
    prophet_update = prophet.update_packed
    pc_consts = _make_pc_consts(prophet, kind, critic)
    flat, flatten = _make_flattener(
        compiled, use_btb, b_set_mask or 0, b_set_bits or 0, pc_consts
    )

    if kind == _GSKEW:
        gk_n = prophet._index_bits
        gk_n2 = 2 * gk_n
        gk_n3 = 3 * gk_n
        gk_imask = prophet._index_mask
        gk_hmask = prophet._history_mask
        gk_h = prophet._h_table
        gk_hinv = prophet._hinv_table
        gk_bim = prophet._bim_raw
        gk_g0 = prophet._g0_raw
        gk_g1 = prophet._g1_raw
        gk_meta = prophet._meta_raw
    elif kind == _GSHARE:
        gs_hmask = prophet._history_mask
        gs_imask = prophet._index_mask
        gs_raw = prophet._raw
        gs_mid = prophet._midpoint
    elif kind == _GAS:
        ga_hmask = (1 << prophet.history_length) - 1
        ga_sb = prophet.set_bits
        ga_raw = prophet.table.raw
        ga_mid = prophet.table.midpoint
    else:
        bm_raw = prophet.table.raw
        bm_mid = prophet.table.midpoint

    # Critic constants (tagged gshare: fold hash + tag filter + counters).
    c_ways = critic.ways
    c_set_mask = critic._set_mask
    c_tag_mask = critic._tag_mask
    c_hmask = critic._history_mask
    c_rot = critic._rotate_shift
    c_set_shifts = critic._set_fold_shifts
    c_tag_shifts = critic._tag_fold_shifts
    c_counters = critic._counters_raw
    filt = critic.filter
    f_tags = filt._tags
    f_lru = filt._lru
    filter_insert = filt.insert

    stats = RunStats(benchmark=program.name, system=type(system).__name__)
    required_bits = max(system.future_bits, 0)
    use_live_bor = system.future_bits >= 1
    insert_final = system._insert_on_final
    depth = config.effective_depth(required_bits)
    hard_cap = depth + 8
    n_branches = config.n_branches
    warmup = config.warmup
    collect_per_site = config.collect_per_site

    # Structure-of-arrays in-flight ring.
    cap = hard_cap
    r_pc = [0] * cap
    r_pred = [False] * cap
    r_bhrb = [0] * cap
    r_borb = [0] * cap
    r_seq = [0] * cap
    r_static = [False] * cap
    r_state = [0] * cap
    r_final = [False] * cap
    r_chit = [False] * cap
    r_cpred = [None] * cap
    r_cix = [0] * cap
    r_ctag = [0] * cap
    r_borc = [0] * cap
    r_snap = [()] * cap
    r_tkb = [0] * cap
    r_ftb = [0] * cap
    r_k0 = [0] * cap
    r_k1 = [0] * cap
    head = 0
    tail = 0
    critiqued = 0
    next_seq = 0
    resolved = 0
    warmup_fetched = 0
    fetched_uops = 0

    bhr = system.bhr
    bor = system.bor
    bhr_val = bhr._value
    bhr_mask = bhr._mask
    bor_val = bor._value
    bor_mask = bor._mask

    w_block = entry
    ras: list = []
    ras_ver = 1
    snap_ver = 0
    ras_snap: tuple = ()

    st_branches = st_uops = st_taken = st_static = st_misp = st_pmisp = 0
    st_forced = st_credir = 0
    n_ca = n_cd = n_ia = n_id = n_cn = n_in = 0
    f_lookups = f_hits = 0
    site: dict = {}

    if not config.collect_predictor_stats:
        system.set_stats_enabled(False)
    # Hoist after the toggle so the critic's stats gate is the live one.
    c_stats_on = critic.stats_enabled
    c_record = critic.stats.record
    try:
        while resolved < n_branches:
            pending = tail - head
            # 1) Critique arm (ordinary or forced, same eligibility logic
            #    as the scalar driver).
            forced = False
            s = -1
            if critiqued < pending:
                s = (head + critiqued) % cap
                if r_static[s] or next_seq - r_seq[s] >= required_bits:
                    pass
                elif pending >= hard_cap and not (critiqued > 0 and pending > depth):
                    forced = True
                else:
                    s = -1
            if s >= 0:
                if forced and resolved >= warmup:
                    st_forced += 1
                if r_static[s]:
                    r_final[s] = False
                    r_chit[s] = False
                    critiqued += 1
                    continue
                bor_value = bor_val if use_live_bor else r_borb[s]
                r_borc[s] = bor_value
                # Inline TaggedGsharePredictor._hash_pair.
                value = bor_value & c_hmask
                fi = r_k0[s]
                for sh in c_set_shifts:
                    fi ^= value >> sh
                ftag = 0
                for sh in c_tag_shifts:
                    ftag ^= value >> sh
                ft2 = 0
                if c_tag_shifts:
                    rotated = ((bor_value >> 1) | ((bor_value & 1) << c_rot)) & c_hmask
                    for sh in c_tag_shifts:
                        ft2 ^= rotated >> sh
                tg = (r_k1[s] ^ ftag ^ (ft2 << 1)) & c_tag_mask
                si = fi & c_set_mask
                r_cix[s] = si
                r_ctag[s] = tg
                f_lookups += 1
                ppred = r_pred[s]
                frow = f_tags[si]
                if tg in frow:
                    way = frow.index(tg)
                    f_hits += 1
                    order = f_lru[si]
                    if order[-1] != way:
                        order.remove(way)
                        order.append(way)
                    cpred = c_counters[si * c_ways + way] > 1
                    r_chit[s] = True
                    r_cpred[s] = cpred
                    final = cpred
                else:
                    r_chit[s] = False
                    r_cpred[s] = None
                    final = ppred
                r_final[s] = final
                critiqued += 1
                if final != ppred:
                    # Critic override: FTQ-confined flush + redirect.
                    tail = head + critiqued
                    bit = 1 if final else 0
                    bhr_val = ((r_bhrb[s] << 1) | bit) & bhr_mask
                    bor_val = ((r_borb[s] << 1) | bit) & bor_mask
                    snap = r_snap[s]
                    ras[:] = snap
                    ras_ver += 1
                    ras_snap = snap
                    snap_ver = ras_ver
                    w_block = r_tkb[s] if final else r_ftb[s]
                    next_seq = r_seq[s] + 1
                    if resolved >= warmup:
                        st_credir += 1
                continue

            # 3) Fetch burst.
            if pending < hard_cap and not (critiqued > 0 and pending > depth):
                if critiqued < pending:
                    have_candidate = True
                    target_seq = r_seq[(head + critiqued) % cap] + required_bits
                else:
                    have_candidate = False
                    target_seq = 0
                while True:
                    bid = w_block
                    uops = 0
                    while True:
                        fs = flat.get(bid)
                        if fs is None:
                            fs = flatten(bid)
                        uops += fs[0]
                        ops = fs[1]
                        if ops is not None:
                            for op in ops:
                                if op >= 0:
                                    if len(ras) >= _RAS_CAPACITY:
                                        del ras[0]
                                    ras.append(op)
                                else:
                                    ras.pop()
                            ras_ver += 1
                        pc = fs[2]
                        if pc is not None:
                            break
                        nb = fs[5]
                        if nb is not None:
                            bid = nb
                        elif ras:
                            bid = ras.pop()
                            ras_ver += 1
                        else:
                            bid = entry
                    fetched_uops += uops
                    s = tail % cap
                    tail += 1
                    if use_btb:
                        row = b_sets[fs[6]]
                        t = fs[7]
                        if t in row:
                            if row[-1] != t:
                                row.remove(t)
                                row.append(t)
                            dyn = True
                        else:
                            dyn = False
                    else:
                        dyn = True
                    r_pc[s] = pc
                    r_bhrb[s] = bhr_val
                    r_borb[s] = bor_val
                    r_tkb[s] = fs[3]
                    r_ftb[s] = fs[4]
                    r_k0[s] = fs[12]
                    r_k1[s] = fs[13]
                    if dyn:
                        if kind == _GSKEW:
                            v2 = ((bhr_val & gk_hmask) ^ fs[9]) & gk_imask
                            hinv_v2 = gk_hinv[v2]
                            g0 = fs[10] ^ hinv_v2 ^ v2
                            g1 = fs[10] ^ hinv_v2 ^ fs[8]
                            meta = fs[11] ^ gk_h[v2] ^ v2
                            state = fs[8] | (g0 << gk_n) | (g1 << gk_n2) | (meta << gk_n3)
                            bim = gk_bim[fs[8]] > 1
                            if gk_meta[meta] > 1:
                                pred = (bim + (gk_g0[g0] > 1) + (gk_g1[g1] > 1)) >= 2
                            else:
                                pred = bim
                        elif kind == _GSHARE:
                            state = (fs[8] ^ (bhr_val & gs_hmask)) & gs_imask
                            pred = gs_raw[state] > gs_mid
                        elif kind == _GAS:
                            state = ((bhr_val & ga_hmask) << ga_sb) | fs[8]
                            pred = ga_raw[state] > ga_mid
                        else:
                            state = fs[8]
                            pred = bm_raw[state] > bm_mid
                        r_static[s] = False
                        r_pred[s] = pred
                        r_state[s] = state
                        bit = 1 if pred else 0
                        bhr_val = ((bhr_val << 1) | bit) & bhr_mask
                        bor_val = ((bor_val << 1) | bit) & bor_mask
                        r_seq[s] = next_seq
                        next_seq += 1
                    else:
                        r_static[s] = True
                        r_pred[s] = False
                        pred = False
                        r_seq[s] = next_seq  # no BOR bit: no increment
                    if snap_ver != ras_ver:
                        ras_snap = tuple(ras)
                        snap_ver = ras_ver
                    r_snap[s] = ras_snap
                    w_block = fs[3] if pred else fs[4]
                    pending = tail - head
                    if pending >= hard_cap:
                        break
                    if critiqued > 0 and pending > depth:
                        break
                    if not have_candidate:
                        have_candidate = True
                        if not dyn:
                            break  # static: immediately critique-eligible
                        target_seq = r_seq[s] + required_bits
                    if next_seq >= target_seq:
                        break
                continue

            # 2) Resolve burst.
            while True:
                s = head % cap
                pc = t_pc[resolved]
                taken = t_tk[resolved]
                uops = t_uops[resolved]
                if pc != r_pc[s]:
                    raise SimulationDesyncError(
                        f"committed branch {pc:#x} but front end fetched "
                        f"{r_pc[s]:#x} (branch #{resolved})"
                    )
                statc = r_static[s]
                if resolved >= warmup:
                    st_branches += 1
                    st_uops += uops
                    if taken:
                        st_taken += 1
                    if statc:
                        st_static += 1
                        if taken:
                            st_misp += 1
                            st_pmisp += 1
                    else:
                        ppred = r_pred[s]
                        pcorr = ppred == taken
                        if not r_chit[s]:
                            if pcorr:
                                n_cn += 1
                            else:
                                n_in += 1
                        elif r_cpred[s] == ppred:
                            if pcorr:
                                n_ca += 1
                            else:
                                n_ia += 1
                        elif pcorr:
                            n_cd += 1
                        else:
                            n_id += 1
                        fm = r_final[s] != taken
                        if not pcorr:
                            st_pmisp += 1
                        if fm:
                            st_misp += 1
                        if collect_per_site:
                            row = site.get(pc)
                            if row is None:
                                site[pc] = row = [0, 0, 0, 0, 0]
                            row[0] += 1
                            if not pcorr:
                                row[1] += 1
                                if not fm:
                                    row[3] += 1
                            if fm:
                                row[2] += 1
                                if pcorr:
                                    row[4] += 1
                if statc:
                    if use_btb:
                        word = pc >> 2
                        t = word >> b_set_bits
                        row = b_sets[word & b_set_mask]
                        if t in row:
                            row.remove(t)
                        elif len(row) >= b_ways:
                            row.pop(0)
                        row.append(t)
                    mispredicted = taken
                else:
                    ppred = r_pred[s]
                    prophet_update(pc, r_bhrb[s], taken, ppred, r_state[s])
                    final = r_final[s]
                    fmt = (final != taken) if insert_final else (ppred != taken)
                    si = r_cix[s]
                    tg = r_ctag[s]
                    # Inline train_hashed: probe (no LRU/stats side
                    # effects), train + touch on hit, insert on
                    # final-mispredict miss.
                    frow = f_tags[si]
                    if tg in frow:
                        way = frow.index(tg)
                        idx = si * c_ways + way
                        if c_stats_on:
                            c_record((c_counters[idx] > 1) == taken)
                        v = c_counters[idx]
                        if taken:
                            if v < 3:
                                c_counters[idx] = v + 1
                        elif v > 0:
                            c_counters[idx] = v - 1
                        order = f_lru[si]
                        if order[-1] != way:
                            order.remove(way)
                            order.append(way)
                    elif fmt:
                        way, _evicted = filter_insert(si, tg)
                        c_counters[si * c_ways + way] = 2 if taken else 1
                    mispredicted = final != taken
                head += 1
                resolved += 1
                if resolved == warmup:
                    warmup_fetched = fetched_uops
                if mispredicted:
                    bit = 1 if taken else 0
                    bhr_val = ((r_bhrb[s] << 1) | bit) & bhr_mask
                    bor_val = ((r_borb[s] << 1) | bit) & bor_mask
                    snap = r_snap[s]
                    ras[:] = snap
                    ras_ver += 1
                    ras_snap = snap
                    snap_ver = ras_ver
                    w_block = r_tkb[s] if taken else r_ftb[s]
                    tail = head
                    critiqued = 0
                    next_seq = r_seq[s] + 1
                    break
                critiqued -= 1
                if resolved >= n_branches:
                    break
                if not (critiqued > 0 and tail - head > depth):
                    break
    finally:
        if not config.collect_predictor_stats:
            system.set_stats_enabled(True)
        bhr._value = bhr_val
        bor._value = bor_val
        fstats = filt.stats
        fstats.lookups += f_lookups
        fstats.hits += f_hits

    stats.branches = st_branches
    stats.committed_uops = st_uops
    stats.taken_branches = st_taken
    stats.static_branches = st_static
    stats.mispredicts = st_misp
    stats.prophet_mispredicts = st_pmisp
    stats.forced_critiques = st_forced
    stats.critic_redirects = st_credir
    counts = stats.census.counts
    counts[CritiqueKind.CORRECT_AGREE] = n_ca
    counts[CritiqueKind.CORRECT_DISAGREE] = n_cd
    counts[CritiqueKind.INCORRECT_AGREE] = n_ia
    counts[CritiqueKind.INCORRECT_DISAGREE] = n_id
    counts[CritiqueKind.CORRECT_NONE] = n_cn
    counts[CritiqueKind.INCORRECT_NONE] = n_in
    if site:
        stats.per_site = site
    stats.fetched_uops = max(0, fetched_uops - warmup_fetched)
    return stats
