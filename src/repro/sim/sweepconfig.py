"""Shared parsing of sweep-grid configurations.

One grid description, two doors: the CLI's ``sweep`` verb reads it from
``--systems``/``--benchmarks`` flags and files, and the sweep daemon
(:mod:`repro.serve`) accepts the same shapes as the JSON body of
``POST /jobs``. Both route through this module so a config that works
from the shell works over HTTP unchanged, and both fail with the same
eager, sentence-shaped diagnostics (``SweepConfigError``) instead of a
traceback from inside a worker.

The payload vocabulary is PR 4's (see ``docs/CONFIG.md``):

* **systems** — one :meth:`~repro.sim.specs.SystemSpec.to_config`
  object, a list of them (labelled by
  :meth:`~repro.sim.specs.SystemSpec.default_label`), or a
  ``{label: config}`` mapping;
* **benchmarks** — a comma-separated string or a list of tokens, each a
  registered benchmark name or a recorded trace path;
* **branches / warmup / backend** — the per-cell
  :class:`~repro.sim.driver.SimulationConfig` knobs.

:func:`cells_from_job` is the one-call form the daemon uses: a full job
payload in, the bench-major cell list plus display metadata out.
"""

from __future__ import annotations

import os
from typing import Any, Mapping, Sequence

from repro.sim.driver import SimulationConfig
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec
from repro.workloads import benchmark_names
from repro.workloads.trace_io import TraceFormatError, read_trace_header

#: Default committed branches per cell (the ``sweep`` verb's default).
DEFAULT_BRANCHES = 16_000

#: The backend vocabulary accepted in job payloads (mirrors
#: :class:`~repro.sim.driver.SimulationConfig.backend`).
KNOWN_BACKENDS = ("scalar", "batched")

#: Top-level keys a job payload may carry.
JOB_KEYS = ("systems", "benchmarks", "branches", "warmup", "backend", "priority")


class SweepConfigError(ValueError):
    """A user-facing grid-configuration problem.

    ``section`` names the part of the payload at fault (``"systems"``,
    ``"benchmarks"``, ``"branches"``, …) so HTTP callers get structured
    detail, not just prose.
    """

    def __init__(self, message: str, *, section: str | None = None) -> None:
        super().__init__(message)
        self.section = section


def systems_from_config(payload: Any) -> dict[str, SystemSpec]:
    """Parse the ``systems`` value into labelled, *buildable* specs.

    Accepts the three PR-4 shapes (single config, list, mapping). Every
    spec is built once here so geometry-value errors (non-power-of-two
    tables, history wider than index, …) surface now with the label
    attached, not later inside a worker process.
    """
    if isinstance(payload, Mapping) and "kind" in payload:
        payload = [payload]
    try:
        if isinstance(payload, Mapping):
            systems = {
                str(label): SystemSpec.from_config(config)
                for label, config in payload.items()
            }
        elif isinstance(payload, list):
            systems = {}
            for config in payload:
                spec = SystemSpec.from_config(config)
                label = spec.default_label()
                if label in systems:
                    raise SweepConfigError(
                        f"two systems share the derived label {label!r}; use a "
                        "{label: config} mapping to name them explicitly",
                        section="systems",
                    )
                systems[label] = spec
        else:
            raise SweepConfigError(
                "expected a system config object, a list of configs, or a "
                "{label: config} mapping",
                section="systems",
            )
        if not systems:
            raise SweepConfigError("no systems to sweep", section="systems")
        for label, spec in systems.items():
            try:
                spec.build()  # surface geometry-value errors now, not in a worker
            except (TypeError, ValueError, KeyError) as exc:
                raise SweepConfigError(
                    f"system {label!r}: {exc}", section="systems"
                ) from exc
        return systems
    except SweepConfigError:
        raise
    except (TypeError, ValueError, KeyError) as exc:
        raise SweepConfigError(str(exc), section="systems") from exc


def benchmarks_from_config(
    value: Any, branches: int
) -> list[tuple[str, ProgramSpec]]:
    """Parse the ``benchmarks`` value: names and/or trace paths.

    Accepts a comma-separated string (the CLI spelling) or a list of
    tokens (the JSON spelling). Results are filed under the
    benchmark/trace display name, so names must be unique; trace-backed
    entries must hold at least ``branches`` records (the same guard
    ``trace replay`` applies).
    """
    if isinstance(value, str):
        tokens: Sequence[Any] = [t.strip() for t in value.split(",")]
    elif isinstance(value, list):
        tokens = value
    else:
        raise SweepConfigError(
            "expected a comma-separated string or a list of benchmark "
            "names / trace paths",
            section="benchmarks",
        )
    names = benchmark_names()
    pairs: list[tuple[str, ProgramSpec]] = []
    for token in tokens:
        if not isinstance(token, str):
            raise SweepConfigError(
                f"benchmark entries must be strings, got {token!r}",
                section="benchmarks",
            )
        if not token:
            continue
        if token in names:
            pairs.append((token, ProgramSpec(benchmark=token)))
        elif os.path.exists(token):
            try:
                header = read_trace_header(token)
            except (OSError, TraceFormatError) as exc:
                raise SweepConfigError(
                    f"{token}: {exc}", section="benchmarks"
                ) from exc
            if branches > header.record_count:
                raise SweepConfigError(
                    f"{token} holds {header.record_count} branches; cannot "
                    f"sweep {branches} (lower branches or record a longer "
                    "trace)",
                    section="benchmarks",
                )
            pairs.append((header.name, ProgramSpec(trace=token)))
        else:
            raise SweepConfigError(
                f"unknown benchmark {token!r} (and no such trace file); "
                f"known benchmarks: {names}",
                section="benchmarks",
            )
    if not pairs:
        raise SweepConfigError("nothing to run", section="benchmarks")
    seen: set[str] = set()
    for name, _ in pairs:
        if name in seen:
            raise SweepConfigError(
                f"{name!r} appears twice (results are filed by name, so "
                "duplicates would overwrite each other)",
                section="benchmarks",
            )
        seen.add(name)
    return pairs


def window_from_config(payload: Mapping) -> tuple[int, int]:
    """Validate (branches, warmup) out of a job payload."""
    branches = payload.get("branches", DEFAULT_BRANCHES)
    if not isinstance(branches, int) or isinstance(branches, bool) or branches < 1:
        raise SweepConfigError(
            f"branches must be a positive integer, got {branches!r}",
            section="branches",
        )
    warmup = payload.get("warmup")
    if warmup is None:
        warmup = branches // 5
    if not isinstance(warmup, int) or isinstance(warmup, bool):
        raise SweepConfigError(
            f"warmup must be an integer, got {warmup!r}", section="warmup"
        )
    if warmup < 0 or warmup >= branches:
        raise SweepConfigError(
            f"warmup must be in [0, {branches}) to leave a measurement window",
            section="warmup",
        )
    return branches, warmup


def cells_from_job(payload: Any) -> tuple[list[SweepCell], dict]:
    """Turn one job payload into its bench-major cell list plus metadata.

    The returned metadata dict carries the display vocabulary callers
    need to file and render results: ``labels`` (system label order),
    ``benchmarks`` (bench name order), and the validated ``branches`` /
    ``warmup`` / ``backend`` values.
    """
    if not isinstance(payload, Mapping):
        raise SweepConfigError(
            f"job payload must be a JSON object, got {type(payload).__name__}"
        )
    unknown = sorted(set(payload) - set(JOB_KEYS))
    if unknown:
        raise SweepConfigError(
            f"unknown job key(s) {unknown}; valid keys: {list(JOB_KEYS)}"
        )
    for required in ("systems", "benchmarks"):
        if required not in payload:
            raise SweepConfigError(
                f"job payload needs {required!r}", section=required
            )
    branches, warmup = window_from_config(payload)
    backend = payload.get("backend", "scalar")
    if backend not in KNOWN_BACKENDS:
        raise SweepConfigError(
            f"unknown backend {backend!r}; known: {list(KNOWN_BACKENDS)}",
            section="backend",
        )
    systems = systems_from_config(payload["systems"])
    benchmarks = benchmarks_from_config(payload["benchmarks"], branches)
    config = SimulationConfig(n_branches=branches, warmup=warmup, backend=backend)
    cells = [
        SweepCell(
            system_label=label,
            bench_name=bench_name,
            system=spec,
            program=program,
            config=config,
        )
        for bench_name, program in benchmarks
        for label, spec in systems.items()
    ]
    meta = {
        "labels": list(systems),
        "benchmarks": [name for name, _ in benchmarks],
        "branches": branches,
        "warmup": warmup,
        "backend": backend,
    }
    return cells, meta
