"""Self-describing sweep-cell specifications.

The parallel execution engine (:mod:`repro.sim.execution`) cannot ship
closures to worker processes, and the result cache cannot key on object
identity. Both need every sweep cell to be *data*: a picklable,
content-hashable description from which the worker rebuilds the program
and the prediction system from scratch. This module defines that data
model:

* :class:`SystemSpec` — a prediction system as (role, predictor kinds,
  Table-3 budgets, future bits, insert policy) rather than a factory
  closure;
* :class:`ProgramSpec` — a workload as either a named benchmark from
  :data:`repro.workloads.suites.BENCHMARKS` or an explicit
  :class:`~repro.workloads.generator.WorkloadProfile`, with an optional
  seed override for decorrelated replicas;
* :class:`SweepCell` — one grid cell: (system spec, program spec,
  :class:`~repro.sim.driver.SimulationConfig`) plus display labels and a
  mode ("accuracy" for the functional simulator, "timing" for the
  Table-2 machine model).

Determinism contract: building a spec twice yields behaviourally
identical objects, and every source of randomness in a cell is derived
from the spec itself (profile seeds, site hashes), never from process
identity or execution order. :meth:`SweepCell.content_hash` is therefore
a stable cache key: equal hash ⇒ bit-for-bit equal results.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.core.hybrid import (
    PredictionSystem,
    ProphetCriticSystem,
    SinglePredictorSystem,
)
from repro.predictors.budget import make_critic, make_prophet
from repro.sim.driver import SimulationConfig
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.program import Program

#: Bumped whenever the meaning of a spec or the result schema changes;
#: part of every content hash, so stale cache entries can never be
#: mistaken for current ones.
SPEC_FORMAT_VERSION = 1


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to a canonical (sorted, compact) JSON string.

    The canonical form is what gets hashed, so key order and whitespace
    must never influence the digest.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SystemSpec:
    """A prediction system described as data (see Table 3 for budgets).

    ``kind`` is ``"single"`` (prophet alone) or ``"hybrid"``
    (prophet/critic). Predictors are named by their budget-table kind and
    KB budget, exactly the vocabulary of
    :func:`repro.predictors.budget.make_predictor`.
    """

    kind: str
    prophet: tuple[str, int]
    critic: tuple[str, int] | None = None
    future_bits: int = 0
    insert_on: str = "final"

    def __post_init__(self) -> None:
        if self.kind not in ("single", "hybrid"):
            raise ValueError(f"kind must be 'single' or 'hybrid', got {self.kind!r}")
        if self.kind == "hybrid" and self.critic is None:
            raise ValueError("hybrid systems need a critic spec")
        if self.kind == "single" and self.critic is not None:
            raise ValueError("single systems take no critic spec")
        # Tuples may arrive as lists (e.g. after a JSON round trip).
        object.__setattr__(self, "prophet", tuple(self.prophet))
        if self.critic is not None:
            object.__setattr__(self, "critic", tuple(self.critic))

    @staticmethod
    def single(prophet_kind: str, budget_kb: int) -> "SystemSpec":
        """Spec for a prophet-alone baseline."""
        return SystemSpec(kind="single", prophet=(prophet_kind, budget_kb))

    @staticmethod
    def hybrid(
        prophet_kind: str,
        prophet_kb: int,
        critic_kind: str,
        critic_kb: int,
        future_bits: int,
        insert_on: str = "final",
    ) -> "SystemSpec":
        """Spec for a prophet/critic hybrid."""
        return SystemSpec(
            kind="hybrid",
            prophet=(prophet_kind, prophet_kb),
            critic=(critic_kind, critic_kb),
            future_bits=future_bits,
            insert_on=insert_on,
        )

    def build(self) -> PredictionSystem:
        """Instantiate a *fresh* prediction system from this spec."""
        if self.kind == "single":
            return SinglePredictorSystem(make_prophet(*self.prophet))
        assert self.critic is not None
        return ProphetCriticSystem(
            make_prophet(*self.prophet),
            make_critic(*self.critic),
            future_bits=self.future_bits,
            insert_on=self.insert_on,
        )

    def describe(self) -> dict:
        """JSON-serialisable description (input to the content hash)."""
        payload: dict[str, Any] = {"kind": self.kind, "prophet": list(self.prophet)}
        if self.kind == "hybrid":
            assert self.critic is not None
            payload["critic"] = list(self.critic)
            payload["future_bits"] = self.future_bits
            payload["insert_on"] = self.insert_on
        return payload


@dataclass
class ProgramSpec:
    """A workload described as data.

    Exactly one of three sources must be set:

    * ``benchmark`` — a name from
      :data:`repro.workloads.suites.BENCHMARKS`, or a trace workload
      registered via :func:`repro.workloads.suites.register_trace` (the
      registered path is captured eagerly, so the spec stays valid in
      worker processes that never saw the registration);
    * ``profile`` — an explicit :class:`WorkloadProfile`;
    * ``trace`` — a path to a recorded trace file (see
      :mod:`repro.workloads.trace_io`).

    ``seed`` overrides the profile's seed when not None — the hook for
    deterministic per-cell seeding of replicated cells (see
    :meth:`SweepCell.cell_seed`). Recorded traces replay verbatim, so a
    seed override on a trace-backed spec is rejected.

    Trace-backed specs hash by the trace's **content digest** (stored in
    its O(1)-readable header), never its path — a trace can be renamed,
    moved between machines or registered under a different name and
    still hit the same cache entries.

    >>> ProgramSpec(benchmark="gcc").name
    'gcc'
    >>> ProgramSpec(benchmark="gcc", profile=WorkloadProfile())
    Traceback (most recent call last):
        ...
    ValueError: set exactly one of benchmark, profile or trace
    """

    benchmark: str | None = None
    profile: WorkloadProfile | None = None
    trace: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        populated = sum(
            value is not None for value in (self.benchmark, self.profile, self.trace)
        )
        if populated != 1:
            raise ValueError("set exactly one of benchmark, profile or trace")
        if self.benchmark is not None:
            # A benchmark name may denote a registered trace; resolve it to
            # a pure trace spec now, so pickled or field-reconstructed
            # specs work in processes whose registry was never populated
            # (the cell label, not this spec, carries the display name).
            from repro.workloads.suites import TRACES

            if self.benchmark in TRACES:
                self.trace = os.fspath(TRACES[self.benchmark])
                self.benchmark = None
        if self.trace is not None:
            self.trace = os.fspath(self.trace)
            if self.seed is not None:
                raise ValueError(
                    "recorded traces replay verbatim; a seed override is "
                    "meaningless on a trace-backed spec"
                )

    def _trace_header(self):
        """The backing trace's header (memoised; O(1) per read)."""
        assert self.trace is not None
        header = getattr(self, "_header_cache", None)
        if header is None:
            from repro.workloads.trace_io import read_trace_header

            header = read_trace_header(self.trace)
            self._header_cache = header
        return header

    def resolved_profile(self) -> WorkloadProfile:
        """The profile this spec denotes, seed override applied."""
        if self.trace is not None:
            raise ValueError(
                "trace-backed specs replay a recorded stream; they have no "
                "generator profile"
            )
        if self.benchmark is not None:
            from repro.workloads.suites import BENCHMARKS

            if self.benchmark not in BENCHMARKS:
                raise KeyError(
                    f"unknown benchmark {self.benchmark!r}; known: {sorted(BENCHMARKS)}"
                )
            profile = BENCHMARKS[self.benchmark]
        else:
            assert self.profile is not None
            profile = self.profile
        if self.seed is not None:
            profile = replace(profile, seed=self.seed)
        return profile

    @staticmethod
    def from_trace(path: str | os.PathLike) -> "ProgramSpec":
        """Spec for a recorded trace file."""
        return ProgramSpec(trace=os.fspath(path))

    def build(self) -> Program:
        """Build a fresh program (deterministic in the spec alone)."""
        if self.trace is not None:
            from repro.workloads.trace import replay_program

            return replay_program(self.trace)
        return generate_program(self.resolved_profile())

    @property
    def name(self) -> str:
        if self.benchmark is not None:
            return self.benchmark
        if self.trace is not None:
            return self._trace_header().name
        return self.profile.name

    def describe(self) -> dict:
        payload: dict[str, Any] = {}
        if self.trace is not None:
            # The digest covers the CFG structure and every record, so it
            # *is* the workload's content; paths and display names stay
            # out of the hash (same trace ⇒ same cache entry, anywhere).
            header = self._trace_header()
            payload["trace"] = {
                "digest": header.digest,
                "records": header.record_count,
            }
            return payload
        if self.benchmark is not None:
            # Hash the *resolved* profile, not just the name: renaming or
            # retuning a benchmark in suites.py must invalidate old entries.
            payload["benchmark"] = self.benchmark
            payload["profile"] = asdict(self.resolved_profile())
        else:
            payload["profile"] = asdict(self.resolved_profile())
        return payload


#: Cell modes: the functional accuracy simulator vs the Table-2 timing model.
MODE_ACCURACY = "accuracy"
MODE_TIMING = "timing"


@dataclass
class SweepCell:
    """One self-contained unit of sweep work.

    Carries everything a worker process needs to produce the cell's
    result from scratch, plus the (system label, benchmark name) under
    which the result is filed. Labels are presentation only — they are
    *excluded* from the content hash, so two cells that differ only in
    label share a cache entry.
    """

    system_label: str
    bench_name: str
    system: SystemSpec
    program: ProgramSpec
    config: SimulationConfig = field(default_factory=SimulationConfig)
    mode: str = MODE_ACCURACY

    def __post_init__(self) -> None:
        if self.mode not in (MODE_ACCURACY, MODE_TIMING):
            raise ValueError(f"unknown cell mode {self.mode!r}")

    def describe(self) -> dict:
        """The hashed identity of this cell (labels excluded)."""
        return {
            "format": SPEC_FORMAT_VERSION,
            "mode": self.mode,
            "system": self.system.describe(),
            "program": self.program.describe(),
            "config": asdict(self.config),
        }

    def content_hash(self) -> str:
        """Stable cache key: equal hash ⇒ identical results."""
        return content_digest(self.describe())

    def cell_seed(self) -> int:
        """A deterministic 63-bit seed derived from the cell's identity.

        Useful for building decorrelated replicas: feed it back through
        ``ProgramSpec(seed=...)`` and the replica's stream depends only on
        the spec, never on scheduling or process identity.
        """
        return int(self.content_hash()[:16], 16) & (2**63 - 1)
