"""Self-describing sweep-cell specifications.

The parallel execution engine (:mod:`repro.sim.execution`) cannot ship
closures to worker processes, and the result cache cannot key on object
identity. Both need every sweep cell to be *data*: a picklable,
content-hashable description from which the worker rebuilds the program
and the prediction system from scratch. This module defines that data
model:

* :class:`PredictorSpec` — one predictor as (registry kind + explicit
  geometry params), or as a Table-3 budget shorthand that expands to the
  preset geometry in :mod:`repro.predictors.budget`;
* :class:`SystemSpec` — a prediction system: a single prophet, or a
  prophet/critic hybrid with future bits and an insert policy;
* :class:`ProgramSpec` — a workload as either a named benchmark from
  :data:`repro.workloads.suites.BENCHMARKS`, an explicit
  :class:`~repro.workloads.generator.WorkloadProfile`, or a recorded
  trace file, with an optional seed override for decorrelated replicas;
* :class:`SweepCell` — one grid cell: (system spec, program spec,
  :class:`~repro.sim.driver.SimulationConfig`) plus display labels and a
  mode ("accuracy" for the functional simulator, "timing" for the
  Table-2 machine model).

Every spec also round-trips through plain dicts — ``to_config()`` /
``from_config()`` — so whole systems and sweep grids live in JSON files
(see ``docs/CONFIG.md`` and the CLI's ``sweep`` verb):

>>> spec = SystemSpec.hybrid("2bc-gskew", 8, "tagged-gshare", 8, future_bits=8)
>>> SystemSpec.from_config(spec.to_config()) == spec
True
>>> custom = SystemSpec.from_config({
...     "kind": "single",
...     "prophet": {"kind": "yags", "params": {"choice_entries": 8192}},
... })
>>> custom.prophet.kind
'yags'

Determinism contract: building a spec twice yields behaviourally
identical objects, and every source of randomness in a cell is derived
from the spec itself (profile seeds, site hashes), never from process
identity or execution order. :meth:`SweepCell.content_hash` is therefore
a stable cache key: equal hash ⇒ bit-for-bit equal results. Budget
shorthands hash by their *expanded* geometry, so a Table-3 preset and
the equivalent explicit params share one cache entry.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Mapping, Sequence

from repro.core.hybrid import (
    PredictionSystem,
    ProphetCriticSystem,
    SinglePredictorSystem,
)
from repro.predictors.budget import params_for
from repro.predictors.registry import (
    ROLE_CRITIC,
    ROLE_PROPHET,
    build_predictor,
    coerce_params,
    predictor_info,
    require_critic_capable,
)
from repro.sim.driver import SimulationConfig
from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.program import Program

#: Bumped whenever the meaning of a spec or the result schema changes;
#: part of every content hash, so stale cache entries can never be
#: mistaken for current ones. Version 2: predictors are described by
#: (registry kind, expanded geometry params) instead of (kind, budget KB)
#: pairs — every version-1 cache entry is invalidated.
SPEC_FORMAT_VERSION = 2


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` to a canonical (sorted, compact) JSON string.

    The canonical form is what gets hashed, so key order and whitespace
    must never influence the digest.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_digest(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _check_config_keys(config: Mapping, allowed: Sequence[str], what: str) -> None:
    """Reject unknown keys so config typos fail loudly, naming the schema."""
    unknown = sorted(set(config) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} in {what} config; valid keys: {list(allowed)}"
        )


def _check_format(config: Mapping, what: str) -> None:
    """Validate an optional ``format`` stamp against this module's version."""
    version = config.get("format", SPEC_FORMAT_VERSION)
    if version != SPEC_FORMAT_VERSION:
        raise ValueError(
            f"{what} config has format {version!r}; this build reads format "
            f"{SPEC_FORMAT_VERSION} (see SPEC_FORMAT_VERSION in repro.sim.specs)"
        )


@dataclass(frozen=True)
class PredictorSpec:
    """One predictor as data: a registry kind plus its geometry.

    Exactly one construction style per spec:

    * **explicit params** — ``params`` is a mapping validated against the
      kind's registered geometry dataclass (omitted fields keep their
      schema defaults; ``params=None`` means all defaults);
    * **budget shorthand** — ``budget_kb`` names a Table-3 preset from
      :mod:`repro.predictors.budget`, which expands to the same params.

    Specs validate eagerly: unknown kinds, unknown parameter names and
    missing presets all raise at construction time, not inside a worker
    process half-way through a sweep.

    >>> PredictorSpec("gshare", budget_kb=8).resolved_params().entries
    32768
    >>> PredictorSpec("gshare", params={"entries": 1024}).describe()["params"]["entries"]
    1024
    """

    kind: str
    params: Any = None
    budget_kb: int | None = None

    def __post_init__(self) -> None:
        info = predictor_info(self.kind)  # unknown kinds rejected here
        if self.params is not None and self.budget_kb is not None:
            raise ValueError(
                f"predictor spec for {self.kind!r} sets both explicit params "
                "and a budget_kb shorthand; pick one"
            )
        if self.params is not None:
            if is_dataclass(self.params) and not isinstance(self.params, type):
                object.__setattr__(self, "params", asdict(self.params))
            elif isinstance(self.params, Mapping):
                object.__setattr__(self, "params", dict(self.params))
            else:
                raise TypeError(
                    f"params for {self.kind!r} must be a mapping or a "
                    f"{info.params_type.__name__}, got {type(self.params).__name__}"
                )
        # Expand/validate now: typos should fail at spec construction.
        self.resolved_params()

    def __hash__(self) -> int:
        return hash((self.kind, self.budget_kb, canonical_json(self.params)))

    def resolved_params(self) -> Any:
        """The kind's geometry dataclass this spec denotes."""
        if self.budget_kb is not None:
            return params_for(self.kind, self.budget_kb)
        return coerce_params(self.kind, self.params)

    def build(self, role: str = ROLE_PROPHET):
        """Instantiate a fresh predictor for ``role`` from this spec."""
        return build_predictor(self.kind, self.resolved_params(), role=role)

    def label(self) -> str:
        """A compact display label (kind, plus budget or a params digest)."""
        if self.budget_kb is not None:
            return f"{self.kind}@{self.budget_kb}KB"
        if not self.params:
            return self.kind
        return f"{self.kind}[{content_digest(self.describe())[:6]}]"

    def describe(self) -> dict:
        """Hashed identity: kind plus the *expanded* geometry params.

        Budget shorthands and explicit params that denote the same
        geometry produce identical descriptions, so they share result
        cache entries.
        """
        return {"kind": self.kind, "params": asdict(self.resolved_params())}

    def to_config(self) -> dict:
        """JSON-ready dict, minimal form (shorthand stays shorthand)."""
        payload: dict[str, Any] = {"kind": self.kind}
        if self.budget_kb is not None:
            payload["budget_kb"] = self.budget_kb
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @staticmethod
    def from_config(config: Any) -> "PredictorSpec":
        """Parse a predictor config: a kind string, a legacy ``(kind,
        budget_kb)`` pair, or a ``{"kind", "params" | "budget_kb"}`` mapping.

        >>> PredictorSpec.from_config("tage").kind
        'tage'
        >>> PredictorSpec.from_config(("gshare", 8)) == PredictorSpec.from_config(
        ...     {"kind": "gshare", "budget_kb": 8})
        True
        """
        if isinstance(config, PredictorSpec):
            return config
        if isinstance(config, str):
            return PredictorSpec(kind=config)
        if isinstance(config, Mapping):
            _check_config_keys(config, ("kind", "params", "budget_kb"), "predictor")
            if "kind" not in config:
                raise ValueError("predictor config needs a 'kind'")
            return PredictorSpec(
                kind=config["kind"],
                params=config.get("params"),
                budget_kb=config.get("budget_kb"),
            )
        if isinstance(config, Sequence) and len(config) == 2:
            kind, budget_kb = config
            return PredictorSpec(kind=kind, budget_kb=budget_kb)
        raise TypeError(f"cannot parse predictor config {config!r}")


def _as_predictor_spec(value: Any, what: str) -> PredictorSpec:
    try:
        return PredictorSpec.from_config(value)
    except TypeError:
        raise TypeError(f"cannot parse {what} spec {value!r}") from None


@dataclass(frozen=True)
class SystemSpec:
    """A prediction system described as data.

    ``kind`` is ``"single"`` (prophet alone) or ``"hybrid"``
    (prophet/critic). ``prophet`` and ``critic`` are
    :class:`PredictorSpec` values; anything
    :meth:`PredictorSpec.from_config` understands — including the legacy
    ``(kind, budget_kb)`` tuples — is coerced on construction, so
    pre-redesign call sites keep working unchanged. Hybrid critics are
    validated against the registry's role capabilities at construction.
    """

    kind: str
    prophet: PredictorSpec
    critic: PredictorSpec | None = None
    future_bits: int = 0
    insert_on: str = "final"

    def __post_init__(self) -> None:
        if self.kind not in ("single", "hybrid"):
            raise ValueError(f"kind must be 'single' or 'hybrid', got {self.kind!r}")
        if self.kind == "hybrid" and self.critic is None:
            raise ValueError("hybrid systems need a critic spec")
        if self.kind == "single" and self.critic is not None:
            raise ValueError("single systems take no critic spec")
        if self.kind == "single" and (self.future_bits != 0 or self.insert_on != "final"):
            raise ValueError(
                "future_bits/insert_on are hybrid settings; a single system "
                "would silently ignore them"
            )
        object.__setattr__(self, "prophet", _as_predictor_spec(self.prophet, "prophet"))
        if self.critic is not None:
            object.__setattr__(
                self, "critic", _as_predictor_spec(self.critic, "critic")
            )
            require_critic_capable(self.critic.kind)

    @staticmethod
    def single(prophet_kind: str, budget_kb: int) -> "SystemSpec":
        """Spec for a prophet-alone baseline at a Table-3 budget."""
        return SystemSpec(
            kind="single", prophet=PredictorSpec(prophet_kind, budget_kb=budget_kb)
        )

    @staticmethod
    def hybrid(
        prophet_kind: str,
        prophet_kb: int,
        critic_kind: str,
        critic_kb: int,
        future_bits: int,
        insert_on: str = "final",
    ) -> "SystemSpec":
        """Spec for a prophet/critic hybrid at Table-3 budgets."""
        return SystemSpec(
            kind="hybrid",
            prophet=PredictorSpec(prophet_kind, budget_kb=prophet_kb),
            critic=PredictorSpec(critic_kind, budget_kb=critic_kb),
            future_bits=future_bits,
            insert_on=insert_on,
        )

    def build(self) -> PredictionSystem:
        """Instantiate a *fresh* prediction system from this spec."""
        if self.kind == "single":
            return SinglePredictorSystem(self.prophet.build(ROLE_PROPHET))
        assert self.critic is not None
        return ProphetCriticSystem(
            self.prophet.build(ROLE_PROPHET),
            self.critic.build(ROLE_CRITIC),
            future_bits=self.future_bits,
            insert_on=self.insert_on,
        )

    def default_label(self) -> str:
        """A display label derived from the spec (used by the sweep CLI)."""
        if self.kind == "single":
            return self.prophet.label()
        assert self.critic is not None
        label = f"{self.prophet.label()}+{self.critic.label()}@f{self.future_bits}"
        if self.insert_on != "final":
            label += f",{self.insert_on}"
        return label

    def describe(self) -> dict:
        """JSON-serialisable description (input to the content hash)."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "prophet": self.prophet.describe(),
        }
        if self.kind == "hybrid":
            assert self.critic is not None
            payload["critic"] = self.critic.describe()
            payload["future_bits"] = self.future_bits
            payload["insert_on"] = self.insert_on
        return payload

    def to_config(self) -> dict:
        """JSON-ready dict; :meth:`from_config` restores an equal spec."""
        payload: dict[str, Any] = {
            "format": SPEC_FORMAT_VERSION,
            "kind": self.kind,
            "prophet": self.prophet.to_config(),
        }
        if self.kind == "hybrid":
            assert self.critic is not None
            payload["critic"] = self.critic.to_config()
            payload["future_bits"] = self.future_bits
            payload["insert_on"] = self.insert_on
        return payload

    @staticmethod
    def from_config(config: Mapping) -> "SystemSpec":
        """Restore a spec from :meth:`to_config` output (or hand-written JSON).

        Unknown keys, unknown predictor kinds, bad params and role
        violations are all rejected with messages naming the valid
        vocabulary.
        """
        if not isinstance(config, Mapping):
            raise TypeError(f"system config must be a mapping, got {type(config).__name__}")
        _check_format(config, "system")
        _check_config_keys(
            config,
            ("format", "kind", "prophet", "critic", "future_bits", "insert_on"),
            "system",
        )
        if "kind" not in config or "prophet" not in config:
            raise ValueError("system config needs 'kind' and 'prophet'")
        critic = config.get("critic")
        return SystemSpec(
            kind=config["kind"],
            prophet=PredictorSpec.from_config(config["prophet"]),
            critic=None if critic is None else PredictorSpec.from_config(critic),
            future_bits=config.get("future_bits", 0),
            insert_on=config.get("insert_on", "final"),
        )


@dataclass(frozen=True)
class ProgramSpec:
    """A workload described as data (frozen: specs are cache-key inputs).

    Exactly one of three sources must be set:

    * ``benchmark`` — a name from
      :data:`repro.workloads.suites.BENCHMARKS`, or a trace workload
      registered via :func:`repro.workloads.suites.register_trace` (the
      registered path is captured eagerly, so the spec stays valid in
      worker processes that never saw the registration);
    * ``profile`` — an explicit :class:`WorkloadProfile`;
    * ``trace`` — a path to a recorded trace file (see
      :mod:`repro.workloads.trace_io`).

    ``seed`` overrides the profile's seed when not None — the hook for
    deterministic per-cell seeding of replicated cells (see
    :meth:`SweepCell.cell_seed`). Recorded traces replay verbatim, so a
    seed override on a trace-backed spec is rejected.

    Trace-backed specs hash by the trace's **content digest** (stored in
    its O(1)-readable header), never its path — a trace can be renamed,
    moved between machines or registered under a different name and
    still hit the same cache entries.

    >>> ProgramSpec(benchmark="gcc").name
    'gcc'
    >>> ProgramSpec(benchmark="gcc", profile=WorkloadProfile())
    Traceback (most recent call last):
        ...
    ValueError: set exactly one of benchmark, profile or trace
    """

    benchmark: str | None = None
    profile: WorkloadProfile | None = None
    trace: str | None = None
    seed: int | None = None

    def __post_init__(self) -> None:
        populated = sum(
            value is not None for value in (self.benchmark, self.profile, self.trace)
        )
        if populated != 1:
            raise ValueError("set exactly one of benchmark, profile or trace")
        if self.benchmark is not None:
            # A benchmark name may denote a registered trace; resolve it to
            # a pure trace spec now, so pickled or field-reconstructed
            # specs work in processes whose registry was never populated
            # (the cell label, not this spec, carries the display name).
            from repro.workloads.suites import TRACES

            if self.benchmark in TRACES:
                object.__setattr__(self, "trace", os.fspath(TRACES[self.benchmark]))
                object.__setattr__(self, "benchmark", None)
        if self.trace is not None:
            object.__setattr__(self, "trace", os.fspath(self.trace))
            if self.seed is not None:
                raise ValueError(
                    "recorded traces replay verbatim; a seed override is "
                    "meaningless on a trace-backed spec"
                )

    def _trace_header(self):
        """The backing trace's header (memoised; O(1) per read)."""
        assert self.trace is not None
        header = getattr(self, "_header_cache", None)
        if header is None:
            from repro.workloads.trace_io import read_trace_header

            header = read_trace_header(self.trace)
            object.__setattr__(self, "_header_cache", header)
        return header

    def resolved_profile(self) -> WorkloadProfile:
        """The profile this spec denotes, seed override applied."""
        if self.trace is not None:
            raise ValueError(
                "trace-backed specs replay a recorded stream; they have no "
                "generator profile"
            )
        if self.benchmark is not None:
            from repro.workloads.suites import BENCHMARKS

            if self.benchmark not in BENCHMARKS:
                raise KeyError(
                    f"unknown benchmark {self.benchmark!r}; known: {sorted(BENCHMARKS)}"
                )
            profile = BENCHMARKS[self.benchmark]
        else:
            assert self.profile is not None
            profile = self.profile
        if self.seed is not None:
            profile = replace(profile, seed=self.seed)
        return profile

    @staticmethod
    def from_trace(path: str | os.PathLike) -> "ProgramSpec":
        """Spec for a recorded trace file."""
        return ProgramSpec(trace=os.fspath(path))

    def build_key(self) -> str:
        """Stable identity of the *built* program (the build-memo key).

        Two specs with equal ``build_key()`` build behaviourally
        identical :class:`~repro.workloads.program.Program` objects, so
        the execution engine's per-process build caches
        (:class:`~repro.sim.execution.ProgramBuildCache`) reuse one built
        instance — reset between runs — instead of rebuilding per sweep
        cell. Trace-backed specs key by the trace's content digest;
        generated specs by the resolved profile (seed override applied),
        so a benchmark name and the explicit profile it denotes share one
        build.

        >>> ProgramSpec(benchmark="gcc").build_key() == ProgramSpec(
        ...     benchmark="gcc").build_key()
        True
        >>> ProgramSpec(benchmark="gcc").build_key() != ProgramSpec(
        ...     benchmark="gcc", seed=7).build_key()
        True
        """
        cached = getattr(self, "_build_key_cache", None)
        if cached is None:
            if self.trace is not None:
                cached = f"trace:{self._trace_header().digest}"
            else:
                cached = f"profile:{content_digest(asdict(self.resolved_profile()))}"
            object.__setattr__(self, "_build_key_cache", cached)
        return cached

    def build(self) -> Program:
        """Build a fresh program (deterministic in the spec alone)."""
        if self.trace is not None:
            from repro.workloads.trace import replay_program

            return replay_program(self.trace)
        return generate_program(self.resolved_profile())

    @property
    def name(self) -> str:
        if self.benchmark is not None:
            return self.benchmark
        if self.trace is not None:
            return self._trace_header().name
        return self.profile.name

    def describe(self) -> dict:
        payload: dict[str, Any] = {}
        if self.trace is not None:
            # The digest covers the CFG structure and every record, so it
            # *is* the workload's content; paths and display names stay
            # out of the hash (same trace ⇒ same cache entry, anywhere).
            header = self._trace_header()
            payload["trace"] = {
                "digest": header.digest,
                "records": header.record_count,
            }
            return payload
        if self.benchmark is not None:
            # Hash the *resolved* profile, not just the name: renaming or
            # retuning a benchmark in suites.py must invalidate old entries.
            payload["benchmark"] = self.benchmark
            payload["profile"] = asdict(self.resolved_profile())
        else:
            payload["profile"] = asdict(self.resolved_profile())
        return payload

    def to_config(self) -> dict:
        """JSON-ready dict; :meth:`from_config` restores an equal spec.

        Unlike :meth:`describe`, this is the *portable* form: benchmarks
        stay names (not resolved profiles) and traces stay paths.
        """
        payload: dict[str, Any] = {}
        if self.benchmark is not None:
            payload["benchmark"] = self.benchmark
        elif self.trace is not None:
            payload["trace"] = self.trace
        else:
            payload["profile"] = asdict(self.profile)
        if self.seed is not None:
            payload["seed"] = self.seed
        return payload

    @staticmethod
    def from_config(config: Any) -> "ProgramSpec":
        """Parse a program config: a benchmark name or a one-source mapping.

        >>> ProgramSpec.from_config("gcc") == ProgramSpec(benchmark="gcc")
        True
        """
        if isinstance(config, ProgramSpec):
            return config
        if isinstance(config, str):
            return ProgramSpec(benchmark=config)
        if not isinstance(config, Mapping):
            raise TypeError(f"cannot parse program config {config!r}")
        _check_config_keys(
            config, ("benchmark", "profile", "trace", "seed"), "program"
        )
        profile = config.get("profile")
        if profile is not None and not isinstance(profile, WorkloadProfile):
            profile = WorkloadProfile.from_dict(profile)
        return ProgramSpec(
            benchmark=config.get("benchmark"),
            profile=profile,
            trace=config.get("trace"),
            seed=config.get("seed"),
        )


#: Cell modes: the functional accuracy simulator vs the Table-2 timing model.
MODE_ACCURACY = "accuracy"
MODE_TIMING = "timing"


def _simulation_config_from_dict(config: Mapping) -> SimulationConfig:
    allowed = tuple(f.name for f in fields(SimulationConfig))
    _check_config_keys(config, allowed, "simulation")
    return SimulationConfig(**config)


def _described_config(config: SimulationConfig) -> dict:
    """The hashed form of a :class:`SimulationConfig`.

    ``backend`` is dropped entirely: the batched kernel is proven
    bit-identical to the scalar loop (tests/sim/test_differential_kernel),
    so the backend is an execution detail like worker count or process
    scheduling — two cells differing only in backend must share a cache
    entry, and pre-existing scalar hashes must survive the field's
    introduction unchanged.
    """
    described = asdict(config)
    described.pop("backend", None)
    return described


@dataclass
class SweepCell:
    """One self-contained unit of sweep work.

    Carries everything a worker process needs to produce the cell's
    result from scratch, plus the (system label, benchmark name) under
    which the result is filed. Labels are presentation only — they are
    *excluded* from the content hash, so two cells that differ only in
    label share a cache entry.
    """

    system_label: str
    bench_name: str
    system: SystemSpec
    program: ProgramSpec
    config: SimulationConfig = field(default_factory=SimulationConfig)
    mode: str = MODE_ACCURACY

    def __post_init__(self) -> None:
        if self.mode not in (MODE_ACCURACY, MODE_TIMING):
            raise ValueError(f"unknown cell mode {self.mode!r}")

    def describe(self) -> dict:
        """The hashed identity of this cell (labels excluded)."""
        return {
            "format": SPEC_FORMAT_VERSION,
            "mode": self.mode,
            "system": self.system.describe(),
            "program": self.program.describe(),
            "config": _described_config(self.config),
        }

    def content_hash(self) -> str:
        """Stable cache key: equal hash ⇒ identical results."""
        return content_digest(self.describe())

    def cell_seed(self) -> int:
        """A deterministic 63-bit seed derived from the cell's identity.

        Useful for building decorrelated replicas: feed it back through
        ``ProgramSpec(seed=...)`` and the replica's stream depends only on
        the spec, never on scheduling or process identity.
        """
        return int(self.content_hash()[:16], 16) & (2**63 - 1)

    def to_config(self) -> dict:
        """JSON-ready dict (labels included; they are display metadata)."""
        return {
            "format": SPEC_FORMAT_VERSION,
            "system_label": self.system_label,
            "bench_name": self.bench_name,
            "system": self.system.to_config(),
            "program": self.program.to_config(),
            "config": asdict(self.config),
            "mode": self.mode,
        }

    @staticmethod
    def from_config(config: Mapping) -> "SweepCell":
        """Restore a cell from :meth:`to_config` output."""
        _check_format(config, "sweep-cell")
        _check_config_keys(
            config,
            ("format", "system_label", "bench_name", "system", "program",
             "config", "mode"),
            "sweep-cell",
        )
        sim_config = config.get("config")
        return SweepCell(
            system_label=config["system_label"],
            bench_name=config["bench_name"],
            system=SystemSpec.from_config(config["system"]),
            program=ProgramSpec.from_config(config["program"]),
            config=(
                SimulationConfig()
                if sim_config is None
                else _simulation_config_from_dict(sim_config)
            ),
            mode=config.get("mode", MODE_ACCURACY),
        )
