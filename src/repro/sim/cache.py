"""Content-addressed result cache for sweep cells, over pluggable backends.

Results are keyed by :meth:`repro.sim.specs.SweepCell.content_hash` — a
SHA-256 over the cell's *content* (system spec, resolved workload
profile, simulation config, format version). Because every cell is
deterministic in its spec, a hit can be substituted for a run without
changing a single bit of the sweep's outcome; the differential tests in
``tests/sim/test_execution.py`` enforce exactly that.

The *codec* (result ↔ JSON document) and the validation of fetched
entries live in :class:`ResultCache`; *where the bytes go* is a
:class:`CacheBackend`:

* :class:`LocalDirBackend` — today's on-disk layout, byte for byte:
  ``<root>/<key[:2]>/<key>.json``, one small JSON document per cell,
  written atomically (temp file + ``os.replace``) so a crashed or
  interrupted sweep never leaves a truncated entry. Pre-refactor cache
  directories keep hitting unchanged
  (``tests/serve/test_differential_local_backend.py`` pins the bytes).
* :class:`HTTPBackend` — speaks ``GET/PUT /cache/<key>`` to a running
  sweep daemon (:mod:`repro.serve`), so several daemons on several
  machines can shard one cache. Cell hashes are machine-independent
  (trace digests, not paths), which is what makes the remote share
  sound.
* :class:`TieredBackend` — local over remote: reads prefer the local
  tier and write remote hits through; writes land locally and are
  mirrored to the remote best-effort (a dead peer degrades throughput,
  never correctness).

Reads treat any malformed, mismatched or unreachable entry as a miss.
Every backend is therefore safe to share between concurrent sweeps and
to delete wholesale at any time; :func:`cache_from_url` builds the
backend stack from one ``--cache-url`` string.

Hardening (PR 10, proven by the seeded chaos suite in
``tests/faults/``): entries carry an integrity ``checksum`` verified on
read — a corrupt entry is *evicted* (``CacheBackend.discard``) and
recomputed, never served and never fatal; :class:`HTTPBackend` retries
transient peer trouble under a :class:`~repro.faults.policy.RetryPolicy`;
:class:`TieredBackend` stops hammering a dead hub behind a
:class:`~repro.faults.policy.CircuitBreaker` and probes for recovery.
The policies live in :mod:`repro.faults.policy` because they are about
wall time, which REP001 bans from ``sim/`` itself.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import re
import tempfile
import urllib.parse
from pathlib import Path
from typing import TYPE_CHECKING

from repro.faults.policy import CircuitBreaker, RetryPolicy

from repro.core.critiques import CritiqueCensus, CritiqueKind
from repro.sim.metrics import RunStats
from repro.sim.specs import SPEC_FORMAT_VERSION

if TYPE_CHECKING:  # pipeline imports sim.driver; keep the runtime DAG acyclic
    from repro.pipeline.machine import PipelineResult

#: Schema version of the cached payloads themselves.
CACHE_SCHEMA_VERSION = 1

#: Cache keys are SHA-256 hex digests; backends validate before touching
#: storage (the HTTP server additionally refuses anything else, so a key
#: can never become a path traversal).
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")

_RUNSTATS_COUNTERS = (
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)

_PIPELINE_COUNTERS = (
    "cycles",
    "committed_uops",
    "fetched_uops",
    "branches",
    "mispredicts",
    "critic_redirects",
    "ftq_empty_cycles",
)


def stats_to_dict(stats: RunStats) -> dict:
    """Serialise a :class:`RunStats` to a JSON-safe dict (lossless)."""
    payload: dict = {
        "benchmark": stats.benchmark,
        "system": stats.system,
        "census": stats.census.as_dict(),
    }
    for name in _RUNSTATS_COUNTERS:
        payload[name] = getattr(stats, name)
    if stats.per_site is not None:
        payload["per_site"] = {str(pc): row for pc, row in stats.per_site.items()}
    return payload


def stats_from_dict(payload: dict) -> RunStats:
    """Rebuild a :class:`RunStats` from :func:`stats_to_dict` output."""
    stats = RunStats(benchmark=payload["benchmark"], system=payload["system"])
    for name in _RUNSTATS_COUNTERS:
        setattr(stats, name, int(payload[name]))
    stats.census = CritiqueCensus(
        counts={kind: int(payload["census"][kind.value]) for kind in CritiqueKind}
    )
    if "per_site" in payload:
        stats.per_site = {
            int(pc): [int(v) for v in row] for pc, row in payload["per_site"].items()
        }
    return stats


def pipeline_to_dict(result: "PipelineResult") -> dict:
    """Serialise a :class:`PipelineResult` (timing cells) to a dict."""
    payload: dict = {"benchmark": result.benchmark, "system": result.system}
    for name in _PIPELINE_COUNTERS:
        payload[name] = getattr(result, name)
    return payload


def pipeline_from_dict(payload: dict) -> "PipelineResult":
    from repro.pipeline.machine import PipelineResult

    result = PipelineResult(benchmark=payload["benchmark"], system=payload["system"])
    for name in _PIPELINE_COUNTERS:
        setattr(result, name, int(payload[name]))
    return result


def encode_result(result: "RunStats | PipelineResult") -> dict:
    """Wrap a cell result with its type tag and schema versions."""
    from repro.pipeline.machine import PipelineResult

    if isinstance(result, RunStats):
        return {"type": "accuracy", "payload": stats_to_dict(result)}
    if isinstance(result, PipelineResult):
        return {"type": "timing", "payload": pipeline_to_dict(result)}
    raise TypeError(f"uncacheable result type {type(result).__name__}")


def decode_result(document: dict) -> "RunStats | PipelineResult":
    if document["type"] == "accuracy":
        return stats_from_dict(document["payload"])
    if document["type"] == "timing":
        return pipeline_from_dict(document["payload"])
    raise ValueError(f"unknown cached result type {document['type']!r}")


def clone_result(result: "RunStats | PipelineResult") -> "RunStats | PipelineResult":
    """An independent copy of a cell result, via the cache's own codec.

    The duplicate-cell path needs a copy it can stamp with different
    display labels. Round-tripping the lossless dict codec is both much
    cheaper than ``copy.deepcopy`` (which walks every nested object) and
    guaranteed to agree with what a cache hit for the same cell would
    return — one reconstruction path, not two.
    """
    return decode_result(encode_result(result))


class CacheBackendError(OSError):
    """A backend could not reach its storage (bad key, dead peer, HTTP 5xx).

    Subclasses :class:`OSError` deliberately: :meth:`ResultCache.get`
    already treats I/O trouble as a miss, and network trouble is the
    same advisory condition — a cache read that cannot complete is a
    miss, never corruption. Writes still surface it (a sweep should not
    silently stop recording results).
    """


def _check_key(key: str) -> str:
    if not _KEY_RE.fullmatch(key):
        raise CacheBackendError(f"malformed cache key {key!r} (want 64 hex chars)")
    return key


class CacheBackend:
    """Where cache entries' bytes live. Keys are SHA-256 hex digests.

    Backends store and fetch *opaque bytes*; the codec, schema stamps and
    entry validation stay in :class:`ResultCache`, so every backend is
    trivially interchangeable and a corrupt or truncated entry from any
    of them decodes to a miss, never a wrong result.
    """

    def get_bytes(self, key: str) -> bytes | None:
        """The entry's bytes, or None on miss. May raise CacheBackendError."""
        raise NotImplementedError

    def put_bytes(self, key: str, data: bytes) -> None:
        """Store an entry (atomic, last-writer-wins per key)."""
        raise NotImplementedError

    def discard(self, key: str) -> None:
        """Best-effort removal of a (corrupt) entry; default no-op.

        Called by the read path when an entry fails integrity checks, so
        the next reader recomputes instead of re-tripping on the same
        bytes. Advisory: failure to discard must never fail a run.
        """

    def location(self) -> str:
        """Human-readable description of where entries live (CLI stats)."""
        raise NotImplementedError


class LocalDirBackend(CacheBackend):
    """Today's on-disk layout: ``<root>/<key[:2]>/<key>.json``.

    Byte-compatible with the pre-backend :class:`ResultCache`: entries
    written by either are indistinguishable on disk, so existing cache
    directories keep hitting (pinned by the differential test in
    ``tests/serve/test_differential_local_backend.py``). Writes are
    atomic (temp file + ``os.replace`` in the destination directory).
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def get_bytes(self, key: str) -> bytes | None:
        _check_key(key)
        try:
            return self.path_for(key).read_bytes()
        except OSError:
            return None

    def put_bytes(self, key: str, data: bytes) -> None:
        _check_key(key)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def discard(self, key: str) -> None:
        _check_key(key)
        try:
            self.path_for(key).unlink()
        except OSError:
            pass  # already gone or unremovable: both fine, it's advisory

    def location(self) -> str:
        return str(self.root)

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


class HTTPBackend(CacheBackend):
    """Remote tier: ``GET/PUT /cache/<key>`` against a sweep daemon.

    One short-lived connection per operation (``Connection: close``), so
    the backend is trivially picklable across pool workers and needs no
    lock. A 404 is a miss; any other failure (refused connection, 5xx,
    short body) raises :class:`CacheBackendError` — after bounded
    retries with deterministic jitter (``retry``), because one dropped
    packet should not cost a recompute. Reads treat the final error as
    a miss and writes surface it.
    """

    #: Default bounded backoff: three tries, ~0.15 s worst-case sleep.
    DEFAULT_RETRY = RetryPolicy(attempts=3, base_delay=0.05, max_delay=1.0)

    def __init__(
        self,
        url: str,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme not in ("http",):
            raise ValueError(f"HTTPBackend needs an http:// URL, got {url!r}")
        if not parsed.hostname:
            raise ValueError(f"HTTPBackend URL has no host: {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.prefix = parsed.path.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else self.DEFAULT_RETRY

    def _url(self) -> str:
        return f"http://{self.host}:{self.port}{self.prefix}"

    def _request(self, method: str, key: str, body: bytes | None = None):
        connection = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            connection.request(method, f"{self.prefix}/cache/{key}", body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            return response.status, data
        except OSError as exc:
            raise CacheBackendError(
                f"cache peer {self._url()} unreachable: {exc}"
            ) from exc
        finally:
            connection.close()

    def get_bytes(self, key: str) -> bytes | None:
        _check_key(key)

        def attempt() -> bytes | None:
            status, data = self._request("GET", key)
            if status == 404:
                return None
            if status != 200:
                raise CacheBackendError(
                    f"cache peer {self._url()} answered HTTP {status} on GET {key[:12]}…"
                )
            return data

        return self.retry.call(attempt, retry_on=CacheBackendError, token=f"get:{key}")

    def put_bytes(self, key: str, data: bytes) -> None:
        _check_key(key)

        def attempt() -> None:
            # PUT of content-addressed bytes is idempotent, so retrying
            # after an ambiguous failure can never double-apply.
            status, _ = self._request("PUT", key, body=data)
            if status not in (200, 201, 204):
                raise CacheBackendError(
                    f"cache peer {self._url()} answered HTTP {status} on PUT {key[:12]}…"
                )

        self.retry.call(attempt, retry_on=CacheBackendError, token=f"put:{key}")

    def discard(self, key: str) -> None:
        _check_key(key)
        try:
            self._request("DELETE", key)
        except CacheBackendError:
            pass  # advisory; an unreachable or pre-PR-10 peer is fine

    def location(self) -> str:
        return self._url()


class TieredBackend(CacheBackend):
    """Local tier over a remote tier (the multi-daemon sharding shape).

    Reads prefer the local tier; a remote hit is written through locally
    so the next read is one file open. Writes land locally first (the
    correctness tier) and are mirrored to the remote *best-effort*: a
    dead or lagging peer costs shared hits, never a failed sweep. Remote
    read trouble likewise degrades to a miss.

    A :class:`~repro.faults.policy.CircuitBreaker` guards the remote
    tier: after a few consecutive failures the circuit opens and remote
    ops are skipped outright (a dead hub costs microseconds, not a
    connect timeout per cell), with periodic half-open probes so a
    recovered hub is re-detected without operator action. Breaker state
    is per process — a pickled copy in a pool worker trips on its own
    evidence, which is the behaviour a shared-nothing pool wants.
    """

    def __init__(
        self,
        local: CacheBackend,
        remote: CacheBackend,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.local = local
        self.remote = remote
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: Remote ops skipped while the circuit was open (telemetry).
        self.remote_skipped = 0

    def get_bytes(self, key: str) -> bytes | None:
        data = self.local.get_bytes(key)
        if data is not None:
            return data
        if not self.breaker.allow():
            self.remote_skipped += 1
            return None
        try:
            data = self.remote.get_bytes(key)
        except CacheBackendError:
            self.breaker.record_failure()
            return None
        self.breaker.record_success()
        if data is not None:
            self.local.put_bytes(key, data)
        return data

    def put_bytes(self, key: str, data: bytes) -> None:
        self.local.put_bytes(key, data)
        if not self.breaker.allow():
            self.remote_skipped += 1
            return
        try:
            self.remote.put_bytes(key, data)
        except CacheBackendError:
            self.breaker.record_failure()
            return  # peer down: local tier already holds the truth
        self.breaker.record_success()

    def discard(self, key: str) -> None:
        # Local only: the corruption was observed on *our* read path; if
        # the remote copy is good, the next local miss re-fetches it,
        # and if it is the corrupt source, the recompute's put_bytes
        # overwrites both tiers anyway.
        self.local.discard(key)

    def location(self) -> str:
        return f"tiered({self.local.location()} over {self.remote.location()})"

    def __len__(self) -> int:
        # Only the local tier is enumerable in general (the remote may be
        # another machine's disk); documented as the local entry count.
        return len(self.local)  # type: ignore[arg-type]


def cache_from_url(url: str | os.PathLike) -> CacheBackend:
    """Build a backend stack from one ``--cache-url`` string.

    * ``http://host:port[/prefix]`` — :class:`HTTPBackend` against a
      running daemon's ``/cache`` endpoints;
    * ``tiered:<local-dir>|<url>`` — :class:`TieredBackend` with a local
      directory over any other URL this function understands;
    * ``file://<path>`` or a plain path — :class:`LocalDirBackend`.

    >>> cache_from_url("/tmp/c").location()
    '/tmp/c'
    >>> cache_from_url("tiered:/tmp/c|http://127.0.0.1:9/x").location()
    'tiered(/tmp/c over http://127.0.0.1:9/x)'
    """
    text = os.fspath(url)
    if text.startswith(("http://", "https://")):
        return HTTPBackend(text)
    if text.startswith("tiered:"):
        rest = text[len("tiered:"):]
        local_part, sep, remote_part = rest.partition("|")
        if not sep or not local_part or not remote_part:
            raise ValueError(
                f"tiered cache URL must look like 'tiered:<local-dir>|<remote-url>', got {text!r}"
            )
        return TieredBackend(LocalDirBackend(local_part), cache_from_url(remote_part))
    if text.startswith("file://"):
        text = text[len("file://"):]
    return LocalDirBackend(text)


#: Schema version of persisted architectural-trace columns. Bump on any
#: change to the RTRC layout below; old entries then read as misses.
#: v2 (PR 10): a 16-byte truncated SHA-256 over the body follows the
#: header, so byte-level corruption is detected instead of silently
#: decoding into wrong columns.
TRACE_SCHEMA_VERSION = 2

_TRACE_MAGIC = b"RTRC"

#: Bytes of SHA-256 digest embedded in a v2 trace entry.
_TRACE_DIGEST_LEN = 16


def trace_cache_key(build_key: str) -> str:
    """Cache key for a program's architectural-trace columns.

    Domain-separated from result entries (same 64-hex namespace, same
    backends) by hashing a ``trace`` tag and the schema version alongside
    the program's build key, so a trace entry can never collide with a
    cell result and a schema bump retires old entries wholesale.
    """
    material = f"trace:{TRACE_SCHEMA_VERSION}:{build_key}".encode("utf-8")
    return hashlib.sha256(material).hexdigest()


def encode_trace_columns(n: int, cols) -> bytes:
    """Serialise ``(t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)`` to bytes.

    Fixed-width little-endian arrays for the scalar columns and a
    (depth, block-ids...) run per branch for the RAS snapshots — compact
    enough to ship over the HTTP backend and decodes in microseconds,
    which is the point: a hit must be much cheaper than the CFG walk.
    """
    import struct
    from array import array

    t_pc, t_tk, t_uops, t_tt, t_ft, t_snap = cols
    body = [
        array("q", t_pc[:n]).tobytes(),
        bytes(bytearray(t_tk[:n])),
        array("q", t_uops[:n]).tobytes(),
        array("q", t_tt[:n]).tobytes(),
        array("q", t_ft[:n]).tobytes(),
        bytes(bytearray(len(s) for s in t_snap[:n])),
    ]
    flat = array("I")
    for s in t_snap[:n]:
        flat.extend(s)
    body.append(struct.pack("<I", len(flat)))
    body.append(flat.tobytes())
    body_bytes = b"".join(body)
    digest = hashlib.sha256(body_bytes).digest()[:_TRACE_DIGEST_LEN]
    return b"".join(
        [_TRACE_MAGIC, struct.pack("<II", TRACE_SCHEMA_VERSION, n), digest, body_bytes]
    )


def decode_trace_columns(data: bytes):
    """Inverse of :func:`encode_trace_columns`: ``(n, cols)`` or ValueError."""
    import struct
    from array import array

    if data[:4] != _TRACE_MAGIC:
        raise ValueError("not a trace-column entry")
    try:
        version, n = struct.unpack_from("<II", data, 4)
    except struct.error as exc:
        # struct.error is not a ValueError subclass; a record truncated
        # inside the header must still take the corrupt-eviction path.
        raise ValueError("short trace entry") from exc
    if version != TRACE_SCHEMA_VERSION:
        raise ValueError(f"trace schema {version} != {TRACE_SCHEMA_VERSION}")
    digest = data[12:12 + _TRACE_DIGEST_LEN]
    if len(digest) != _TRACE_DIGEST_LEN:
        raise ValueError("short trace entry")
    body = data[12 + _TRACE_DIGEST_LEN:]
    if hashlib.sha256(body).digest()[:_TRACE_DIGEST_LEN] != digest:
        raise ValueError("trace entry digest mismatch (corrupt bytes)")
    off = 12 + _TRACE_DIGEST_LEN

    def _ints(count):
        nonlocal off
        out = array("q")
        out.frombytes(data[off:off + 8 * count])
        if len(out) != count:
            raise ValueError("short trace entry")
        off += 8 * count
        return out.tolist()

    t_pc = _ints(n)
    t_tk = [b != 0 for b in data[off:off + n]]
    if len(t_tk) != n:
        raise ValueError("short trace entry")
    off += n
    t_uops = _ints(n)
    t_tt = _ints(n)
    t_ft = _ints(n)
    depths = data[off:off + n]
    if len(depths) != n:
        raise ValueError("short trace entry")
    off += n
    try:
        (flat_len,) = struct.unpack_from("<I", data, off)
    except struct.error as exc:
        raise ValueError("short trace entry") from exc
    off += 4
    flat = array("I")
    flat.frombytes(data[off:off + 4 * flat_len])
    if len(flat) != flat_len:
        raise ValueError("short trace entry")
    t_snap = [()] * n
    pos = 0
    for i, depth in enumerate(depths):
        t_snap[i] = tuple(flat[pos:pos + depth])
        pos += depth
    if pos != flat_len:
        raise ValueError("trace snapshot lengths disagree with payload")
    return n, (t_pc, t_tk, t_uops, t_tt, t_ft, t_snap)


class TraceColumnStore:
    """Persistent architectural-trace columns over a :class:`CacheBackend`.

    One entry per program ``build_key``, holding the *longest* trace
    built so far; because the architectural stream is prefix-stable in
    the branch count, that single entry serves every shorter request as
    a slice (the kernel side already slices). ``put`` never shortens an
    existing entry, so concurrent writers converge on the longest
    prefix. All read trouble — missing, corrupt, stale schema,
    unreachable peer — degrades to a miss and a fresh CFG walk.
    """

    def __init__(self, backend: CacheBackend) -> None:
        self.backend = backend
        self.hits = 0
        self.misses = 0
        #: Entries evicted because their bytes failed to decode/verify.
        self.corrupt_evictions = 0

    def get(self, build_key: str, n: int):
        """``(stored_n, cols)`` with ``stored_n >= n``, or None."""
        key = trace_cache_key(build_key)
        try:
            data = self.backend.get_bytes(key)
            if data is None:
                self.misses += 1
                return None
            stored_n, cols = decode_trace_columns(data)
        except ValueError:
            # Undecodable bytes (corruption, digest mismatch): evict so
            # the recomputed columns replace them instead of every
            # future reader re-tripping on the same entry.
            self.corrupt_evictions += 1
            self.backend.discard(key)
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        if stored_n < n:
            self.misses += 1
            return None
        self.hits += 1
        return stored_n, cols

    def put(self, build_key: str, n: int, cols) -> None:
        """Persist ``cols`` unless a longer entry already exists."""
        key = trace_cache_key(build_key)
        try:
            existing = self.backend.get_bytes(key)
            if existing is not None and decode_trace_columns(existing)[0] >= n:
                return
        except (OSError, ValueError):
            pass  # unreadable entry: overwrite it
        try:
            self.backend.put_bytes(key, encode_trace_columns(n, cols))
        except CacheBackendError:
            pass  # advisory tier: a dead peer never fails a run


class ResultCache:
    """Content-addressed store of cell results over a :class:`CacheBackend`.

    ``ResultCache(path)`` keeps the historical constructor — a local
    directory in today's layout; pass any :class:`CacheBackend` (or use
    :meth:`from_url`) to put the same validated codec over a remote or
    tiered store. Malformed, stale-format and unreachable entries all
    read as misses.
    """

    def __init__(self, root: str | os.PathLike | CacheBackend) -> None:
        self.backend = root if isinstance(root, CacheBackend) else LocalDirBackend(root)
        #: Telemetry for the current process (reported by the CLI).
        self.hits = 0
        self.misses = 0
        #: Entries evicted because their bytes failed to parse or their
        #: integrity checksum disagreed (chaos-report telemetry).
        self.corrupt_evictions = 0

    @staticmethod
    def from_url(url: str | os.PathLike) -> "ResultCache":
        """A cache over whatever backend ``--cache-url`` denotes."""
        return ResultCache(cache_from_url(url))

    @property
    def root(self):
        """The local root path (local backends) or a location string."""
        if isinstance(self.backend, LocalDirBackend):
            return self.backend.root
        return self.backend.location()

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (local-directory backends)."""
        if not isinstance(self.backend, LocalDirBackend):
            raise TypeError(
                f"cache backend {self.backend.location()!r} has no local paths"
            )
        return self.backend.path_for(key)

    def get(self, key: str) -> RunStats | PipelineResult | None:
        """Fetch a result, or None on miss / stale format / corruption.

        Never crashes and never serves bad bytes: an entry that fails to
        parse, whose integrity ``checksum`` disagrees, or whose ``key``
        field does not match is *evicted* (best-effort
        :meth:`CacheBackend.discard`) and reads as a miss, so the caller
        recomputes and the recompute's ``put`` replaces the bytes. The
        ``checksum`` field is optional on read — pre-PR-10 entries keep
        hitting — while stale schema/format stamps stay plain misses
        (retired, not destroyed).
        """
        try:
            data = self.backend.get_bytes(key)
        except OSError:
            self.misses += 1
            return None
        if data is None:
            self.misses += 1
            return None
        try:
            document = json.loads(data.decode("utf-8"))
            if not isinstance(document, dict):
                raise ValueError("cache entry is not a JSON object")
            stored_checksum = document.pop("checksum", None)
            if stored_checksum is not None and stored_checksum != entry_checksum(
                document
            ):
                raise ValueError("cache entry checksum mismatch")
            if document.get("key") != key:
                raise ValueError("cache entry key mismatch")
            if (
                document.get("cache_schema") != CACHE_SCHEMA_VERSION
                or document.get("spec_format") != SPEC_FORMAT_VERSION
            ):
                self.misses += 1
                return None
            result = decode_result(document)
        except (ValueError, KeyError, TypeError):
            self.corrupt_evictions += 1
            try:
                self.backend.discard(key)
            except OSError:
                pass  # advisory: eviction failing must not fail the read
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunStats | PipelineResult) -> None:
        """Store a result atomically (last writer wins, all writers agree).

        Best-effort: a backend that cannot take the write (full disk,
        dead peer, injected transient) costs a future cache miss, never
        the freshly computed result — the error is degraded, not raised.
        """
        try:
            self.backend.put_bytes(key, serialize_entry(key, result))
        except OSError as exc:
            from repro.faults.handling import degrade

            degrade(exc, f"caching result {key[:12]}…")

    def __len__(self) -> int:
        return len(self.backend)  # type: ignore[arg-type]


def entry_checksum(document: dict) -> str:
    """Integrity checksum over an entry document (sans ``checksum``).

    SHA-256 of the document's canonical bytes — the same compact
    separators and insertion order :func:`serialize_entry` writes, which
    a JSON round-trip preserves, so reader and writer always hash the
    same bytes.
    """
    canonical = json.dumps(document, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


def serialize_entry(key: str, result: "RunStats | PipelineResult") -> bytes:
    """The canonical entry bytes for ``key`` — every backend stores these.

    Deterministic in (key, result): same compact separators and field
    order as every cache since PR 1, so all writers of a key agree byte
    for byte and racing ``put``\\ s are unobservable. The trailing
    ``checksum`` field (PR 10) covers every preceding field; readers
    verify it when present and evict on mismatch, so a flipped bit in
    any offset class — header, digest, payload — is detected, while
    checksum-less pre-PR-10 entries keep hitting.
    """
    document = encode_result(result)
    document["key"] = key
    document["cache_schema"] = CACHE_SCHEMA_VERSION
    document["spec_format"] = SPEC_FORMAT_VERSION
    document["checksum"] = entry_checksum(document)
    return json.dumps(document, separators=(",", ":")).encode("utf-8")
