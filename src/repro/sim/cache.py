"""On-disk result cache for sweep cells.

Results are keyed by :meth:`repro.sim.specs.SweepCell.content_hash` — a
SHA-256 over the cell's *content* (system spec, resolved workload
profile, simulation config, format version). Because every cell is
deterministic in its spec, a hit can be substituted for a run without
changing a single bit of the sweep's outcome; the differential tests in
``tests/sim/test_execution.py`` enforce exactly that.

Layout: ``<root>/<key[:2]>/<key>.json``, one small JSON document per
cell. Writes are atomic (temp file + ``os.replace``) so a crashed or
interrupted sweep never leaves a truncated entry; reads treat any
malformed or mismatched entry as a miss. The cache is therefore safe to
share between concurrent sweeps and to delete wholesale at any time.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.critiques import CritiqueCensus, CritiqueKind
from repro.sim.metrics import RunStats
from repro.sim.specs import SPEC_FORMAT_VERSION

if TYPE_CHECKING:  # pipeline imports sim.driver; keep the runtime DAG acyclic
    from repro.pipeline.machine import PipelineResult

#: Schema version of the cached payloads themselves.
CACHE_SCHEMA_VERSION = 1

_RUNSTATS_COUNTERS = (
    "branches",
    "committed_uops",
    "mispredicts",
    "prophet_mispredicts",
    "static_branches",
    "forced_critiques",
    "critic_redirects",
    "fetched_uops",
    "taken_branches",
)

_PIPELINE_COUNTERS = (
    "cycles",
    "committed_uops",
    "fetched_uops",
    "branches",
    "mispredicts",
    "critic_redirects",
    "ftq_empty_cycles",
)


def stats_to_dict(stats: RunStats) -> dict:
    """Serialise a :class:`RunStats` to a JSON-safe dict (lossless)."""
    payload: dict = {
        "benchmark": stats.benchmark,
        "system": stats.system,
        "census": stats.census.as_dict(),
    }
    for name in _RUNSTATS_COUNTERS:
        payload[name] = getattr(stats, name)
    if stats.per_site is not None:
        payload["per_site"] = {str(pc): row for pc, row in stats.per_site.items()}
    return payload


def stats_from_dict(payload: dict) -> RunStats:
    """Rebuild a :class:`RunStats` from :func:`stats_to_dict` output."""
    stats = RunStats(benchmark=payload["benchmark"], system=payload["system"])
    for name in _RUNSTATS_COUNTERS:
        setattr(stats, name, int(payload[name]))
    stats.census = CritiqueCensus(
        counts={kind: int(payload["census"][kind.value]) for kind in CritiqueKind}
    )
    if "per_site" in payload:
        stats.per_site = {
            int(pc): [int(v) for v in row] for pc, row in payload["per_site"].items()
        }
    return stats


def pipeline_to_dict(result: "PipelineResult") -> dict:
    """Serialise a :class:`PipelineResult` (timing cells) to a dict."""
    payload: dict = {"benchmark": result.benchmark, "system": result.system}
    for name in _PIPELINE_COUNTERS:
        payload[name] = getattr(result, name)
    return payload


def pipeline_from_dict(payload: dict) -> "PipelineResult":
    from repro.pipeline.machine import PipelineResult

    result = PipelineResult(benchmark=payload["benchmark"], system=payload["system"])
    for name in _PIPELINE_COUNTERS:
        setattr(result, name, int(payload[name]))
    return result


def encode_result(result: "RunStats | PipelineResult") -> dict:
    """Wrap a cell result with its type tag and schema versions."""
    from repro.pipeline.machine import PipelineResult

    if isinstance(result, RunStats):
        return {"type": "accuracy", "payload": stats_to_dict(result)}
    if isinstance(result, PipelineResult):
        return {"type": "timing", "payload": pipeline_to_dict(result)}
    raise TypeError(f"uncacheable result type {type(result).__name__}")


def decode_result(document: dict) -> "RunStats | PipelineResult":
    if document["type"] == "accuracy":
        return stats_from_dict(document["payload"])
    if document["type"] == "timing":
        return pipeline_from_dict(document["payload"])
    raise ValueError(f"unknown cached result type {document['type']!r}")


def clone_result(result: "RunStats | PipelineResult") -> "RunStats | PipelineResult":
    """An independent copy of a cell result, via the cache's own codec.

    The duplicate-cell path needs a copy it can stamp with different
    display labels. Round-tripping the lossless dict codec is both much
    cheaper than ``copy.deepcopy`` (which walks every nested object) and
    guaranteed to agree with what a cache hit for the same cell would
    return — one reconstruction path, not two.
    """
    return decode_result(encode_result(result))


class ResultCache:
    """Content-addressed store of cell results under a root directory."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        #: Telemetry for the current process (reported by the CLI).
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (two-level fan-out)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> RunStats | PipelineResult | None:
        """Fetch a result, or None on miss / stale format / corruption."""
        path = self.path_for(key)
        try:
            with open(path, encoding="utf-8") as handle:
                document = json.load(handle)
            if (
                document.get("key") != key
                or document.get("cache_schema") != CACHE_SCHEMA_VERSION
                or document.get("spec_format") != SPEC_FORMAT_VERSION
            ):
                self.misses += 1
                return None
            result = decode_result(document)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: RunStats | PipelineResult) -> None:
        """Store a result atomically (last writer wins, all writers agree)."""
        document = encode_result(result)
        document["key"] = key
        document["cache_schema"] = CACHE_SCHEMA_VERSION
        document["spec_format"] = SPEC_FORMAT_VERSION
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, separators=(",", ":"))
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
