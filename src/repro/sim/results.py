"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table (no external dependencies)."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError("row width does not match headers")
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in rendered_rows)) if rendered_rows else len(headers[c])
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[c]) for c, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[c] for c in range(columns)))
    for row in rendered_rows:
        lines.append("  ".join(row[c].ljust(widths[c]) for c in range(columns)))
    return "\n".join(lines)


def render_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    y_format: str = "{:.3f}",
) -> str:
    """One figure series as `name: x=y, x=y, ...` (what a plot would show)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    points = ", ".join(f"{x}={y_format.format(y)}" for x, y in zip(xs, ys))
    return f"{name}: {points}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def render_mapping(title: str, mapping: Mapping[str, object]) -> str:
    """Key/value block used for headline summaries."""
    width = max((len(k) for k in mapping), default=0)
    lines = [title]
    for key, value in mapping.items():
        rendered = f"{value:.3f}" if isinstance(value, float) else str(value)
        lines.append(f"  {key.ljust(width)} : {rendered}")
    return "\n".join(lines)
