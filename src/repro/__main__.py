"""Command-line entry point: run any reproduced experiment.

Usage::

    python -m repro list
    python -m repro run figure5 --scale 2
    python -m repro run headline --jobs 8
    python -m repro --jobs 4 --cache-dir .repro-cache run figure6c
    python -m repro bench gcc --system hybrid --branches 100000
    python -m repro bench gcc --config sys.json
    python -m repro sweep --systems systems.json --benchmarks gcc,perl --jobs 4
    python -m repro trace record gcc --out traces/gcc.trace
    python -m repro trace replay traces/gcc.trace --jobs 2 --cache-dir .repro-cache
    python -m repro trace info traces/gcc.trace --verify

``run`` executes one registered experiment (see ``list``) and prints the
paper-style rows/series. ``bench`` runs a single benchmark under either
the 16KB 2Bc-gskew baseline, the 8+8 prophet/critic hybrid, or any
system described by a JSON config (``--config``) — the quickest way to
poke at a configuration. ``sweep`` runs an arbitrary grid: every system
in a JSON config file × every named benchmark, through the parallel
engine and result cache — the config-file door into the predictor
registry (see ``docs/CONFIG.md``). ``trace`` records a workload's
committed branch stream to a portable file, replays recorded traces
through any system (bit-for-bit identical to the live run), and
inspects/verifies trace files; see ``docs/CLI.md`` for the full
record → sweep → replay walkthrough.

Sweep execution knobs for ``run``, ``sweep`` and ``trace replay``
(accepted before or after the subcommand; ``bench`` simulates a single
cell, so they do not apply):

``--jobs N``
    Fan the sweep cells out over an N-process pool (results are
    bit-for-bit identical to ``--jobs 1``; see
    :mod:`repro.sim.execution`).
``--cache-dir PATH``
    Cache per-cell results on disk, keyed by a content hash of the cell
    spec; re-runs only simulate cells whose configuration changed.
``--no-cache``
    Ignore ``--cache-dir`` (useful when the dir comes from a wrapper
    script but a fresh run is wanted).
``--progress``
    Print one line per finished sweep cell to stderr (``[done/total]
    system × benchmark``) — cells stream in as they complete, so this is
    live feedback even for long pooled sweeps.
``--backend {scalar,batched}``
    Kernel backend for every cell (``bench`` accepts it too). The
    batched structure-of-arrays kernel is proven bit-identical to the
    scalar loop and several times faster on supported system shapes
    (unsupported shapes fall back to scalar automatically), so results
    and cache keys are unchanged either way.

With ``--jobs N`` the worker pool is persistent: it spawns once and is
reused by every grid the invocation runs, and each worker memoizes
program builds, so a (many systems × few benchmarks) sweep compiles each
benchmark once per worker instead of once per cell. Combined with
``--cache-dir``, results are written to the cache as each cell finishes;
a killed sweep re-run with the same cache resumes from everything
already computed (see ``examples/sweep_resume.py``).
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from pathlib import Path

from repro.experiments import EXPERIMENTS, run_experiment
from repro.predictors import registered_predictors
from repro.sim import SimulationConfig, make_engine, oracle_replay, simulate
from repro.sim.execution import CellExecutionError, WorkerPoolError
from repro.sim.results import format_table, render_mapping
from repro.sim.specs import (
    SPEC_FORMAT_VERSION,
    ProgramSpec,
    SweepCell,
    SystemSpec,
)
from repro.sim.sweepconfig import (
    SweepConfigError,
    benchmarks_from_config,
    systems_from_config,
)
from repro.workloads import benchmark, benchmark_names
from repro.workloads.suites import SUITES
from repro.workloads.trace import record_trace
from repro.workloads.trace_io import (
    TraceFormatError,
    TraceReader,
    read_trace_header,
    verify_trace,
)


class _ConfigError(Exception):
    """A user-facing configuration problem (file, JSON or spec schema)."""


def _load_json(path: str, what: str):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except OSError as exc:
        raise _ConfigError(f"{what}: cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise _ConfigError(f"{what}: {path} is not valid JSON: {exc}") from exc


def _system_from_config_file(path: str) -> SystemSpec:
    payload = _load_json(path, "system config")
    try:
        spec = SystemSpec.from_config(payload)
        # Schema validation is eager, but geometry *values* (power-of-two
        # table sizes, history vs. index width, …) are checked by the
        # predictor constructors — exercise them once now so a bad config
        # is a clean error here, not a traceback mid-run or in a worker.
        spec.build()
    except (TypeError, ValueError, KeyError) as exc:
        raise _ConfigError(f"system config {path}: {exc}") from exc
    return spec


def _cmd_lint(args: argparse.Namespace) -> int:
    # Deferred import: the analysis package is pure stdlib, but every
    # other verb should not pay for loading the rule pack.
    from repro.analysis.cli import run_lint

    return run_lint(args)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("\nbenchmarks:")
    for name in benchmark_names():
        print(f"  {name}")
    print("\npredictor kinds (see docs/CONFIG.md):")
    for info in registered_predictors():
        role = "prophet+critic" if info.critic_capable else "prophet-only"
        print(f"  {info.kind:<21} {role:<15} {info.summary}")
    return 0


def _print_progress(done: int, total: int, cell) -> None:
    print(
        f"[{done}/{total}] {cell.system_label} × {cell.bench_name}",
        file=sys.stderr,
        flush=True,
    )


def _engine_from_args(args: argparse.Namespace):
    cache_dir = None if args.no_cache else args.cache_dir
    progress = _print_progress if getattr(args, "progress", False) else None
    return make_engine(jobs=args.jobs, cache_dir=cache_dir, progress=progress)


def _print_cache_stats(engine) -> None:
    if engine.cache is not None:
        print(
            f"cache: {engine.cache.hits} hit(s), {engine.cache.misses} miss(es) "
            f"under {engine.cache.root}",
            file=sys.stderr,
        )


def _cmd_run(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    try:
        result = run_experiment(args.experiment, scale=args.scale, engine=engine)
    except (CellExecutionError, WorkerPoolError) as exc:
        print(f"run: {exc}", file=sys.stderr)
        return 1
    print(result.render())
    _print_cache_stats(engine)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    try:
        spec = _system_spec_from_args(args)
    except _ConfigError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    config = SimulationConfig(n_branches=args.branches, warmup=args.branches // 5)
    stats = simulate(benchmark(args.benchmark), spec.build(), config)
    label = spec.default_label() if args.config else args.system
    print(render_mapping(f"{args.benchmark} / {label}", stats.summary()))
    if spec.kind == "hybrid":
        print(render_mapping("critique census", stats.census.as_dict()))
    return 0


def _system_spec_from_args(args: argparse.Namespace) -> SystemSpec:
    """The system spec the ``bench`` and ``trace replay`` verbs share.

    ``--config FILE`` (a JSON :meth:`SystemSpec.to_config` document, see
    docs/CONFIG.md) overrides the ``--system``/``--prophet``/``--critic``
    flag vocabulary and reaches every registered predictor at any
    geometry.
    """
    if getattr(args, "config", None):
        return _system_from_config_file(args.config)
    if args.system == "baseline":
        return SystemSpec.single("2bc-gskew", 16)
    return SystemSpec.hybrid(
        args.prophet, args.prophet_kb, args.critic, args.critic_kb, args.future_bits
    )


def _cmd_trace_record(args: argparse.Namespace) -> int:
    if (args.benchmark is None) == (args.suite is None):
        print("trace record: name exactly one benchmark or pass --suite", file=sys.stderr)
        return 2
    if args.branches < 1:
        print("trace record: --branches must be positive", file=sys.stderr)
        return 2
    names = [args.benchmark] if args.benchmark else list(SUITES[args.suite])
    out = Path(args.out)
    if len(names) > 1 or out.is_dir() or str(args.out).endswith(("/", ".")):
        paths = [out / f"{name}.trace" for name in names]
    else:
        paths = [out]
    for name, path in zip(names, paths):
        source = {"benchmark": name, "branches": args.branches}
        try:
            header = record_trace(benchmark(name), args.branches, path, source=source)
        except OSError as exc:
            print(f"trace record: cannot write {path}: {exc}", file=sys.stderr)
            return 1
        print(
            f"{path}: {header.record_count} branches, {header.total_uops} uops, "
            f"taken rate {header.taken_rate:.3f}, digest {header.digest[:12]}…"
        )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    status = 0
    for path in args.paths:
        try:
            header = verify_trace(path) if args.verify else read_trace_header(path)
        except (OSError, TraceFormatError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            status = 1
            continue
        payload = header.describe()
        if args.verify:
            payload["verified"] = "ok (digest and record count match)"
        print(render_mapping(str(path), payload))
    return status


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    try:
        spec = _system_spec_from_args(args)
    except _ConfigError as exc:
        print(f"trace replay: {exc}", file=sys.stderr)
        return 2
    if args.oracle and spec.kind != "hybrid":
        print(
            "trace replay: --oracle evaluates a prophet/critic hybrid by "
            "construction; a single-predictor system (--system baseline, or "
            "a 'single' --config) is not applicable",
            file=sys.stderr,
        )
        return 2
    if args.oracle and (args.jobs > 1 or (args.cache_dir and not args.no_cache)):
        print(
            "trace replay: --oracle streams in-process; --jobs/--cache-dir "
            "are ignored",
            file=sys.stderr,
        )
    cells = []
    for path in args.paths:
        try:
            header = read_trace_header(path)
        except (OSError, TraceFormatError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
        n_branches = header.record_count if args.branches is None else args.branches
        if n_branches < 1:
            print("trace replay: --branches must be positive", file=sys.stderr)
            return 2
        if n_branches > header.record_count:
            print(
                f"{path}: trace holds {header.record_count} branches; "
                f"cannot replay {n_branches}",
                file=sys.stderr,
            )
            return 2
        warmup = args.warmup if args.warmup is not None else n_branches // 5
        if warmup < 0 or warmup >= n_branches:
            print(
                f"trace replay: --warmup must be in [0, {n_branches}) to leave "
                "a measurement window",
                file=sys.stderr,
            )
            return 2
        config = SimulationConfig(n_branches=n_branches, warmup=warmup)
        if args.oracle:
            try:
                with TraceReader(path) as reader:
                    stats = oracle_replay(
                        itertools.islice(reader.records(), n_branches),
                        prophet=spec.prophet.build("prophet"),
                        critic=spec.critic.build("critic"),
                        future_bits=spec.future_bits,
                        warmup=warmup,
                    )
            except (OSError, TraceFormatError) as exc:
                print(f"{path}: INVALID — {exc}", file=sys.stderr)
                return 1
            print(render_mapping(f"{header.name} / oracle replay (§6 leak)", stats.summary()))
            continue
        cells.append(
            SweepCell(
                system_label=spec.default_label() if args.config else args.system,
                bench_name=header.name,
                system=spec,
                program=ProgramSpec(trace=path),
                config=config,
            )
        )
    if cells:
        engine = _engine_from_args(args)
        try:
            results = engine.run_cells(cells)
        except CellExecutionError as exc:
            # A valid header over a truncated/corrupt body surfaces from
            # inside a worker as a cell failure wrapping the trace error.
            if exc.caused_by("TraceFormatError", "OSError"):
                print(f"trace replay: INVALID trace — {exc.cause}", file=sys.stderr)
                return 1
            print(f"trace replay: {exc}", file=sys.stderr)
            return 1
        except WorkerPoolError as exc:
            print(f"trace replay: {exc}", file=sys.stderr)
            return 1
        except (OSError, TraceFormatError) as exc:
            print(f"trace replay: INVALID trace — {exc}", file=sys.stderr)
            return 1
        for cell, stats in zip(cells, results):
            print(render_mapping(f"{cell.bench_name} / {cell.system_label} (replayed)", stats.summary()))
        _print_cache_stats(engine)
    return 0


def _load_sweep_systems(path: str) -> dict[str, SystemSpec]:
    """Parse a ``--systems`` JSON file into labelled system specs.

    Three shapes are accepted: one system config object, a list of
    configs (labelled by :meth:`SystemSpec.default_label`), or a
    ``{label: config}`` mapping — the parsing itself lives in
    :mod:`repro.sim.sweepconfig`, shared with the sweep daemon's
    ``POST /jobs``.
    """
    payload = _load_json(path, "sweep systems")
    try:
        return systems_from_config(payload)
    except SweepConfigError as exc:
        raise _ConfigError(f"sweep systems: {path}: {exc}") from exc


def _sweep_benchmarks(arg: str, branches: int) -> list[tuple[str, ProgramSpec]]:
    """Parse ``--benchmarks``: comma-separated names and/or trace paths."""
    try:
        return benchmarks_from_config(arg, branches)
    except SweepConfigError as exc:
        raise _ConfigError(f"benchmarks: {exc}") from exc


def _render_sweep_table(labels, bench_names, result) -> str:
    """The ``sweep``/``submit`` verbs' shared misp/Kuops grid rendering."""
    headers = ["system (misp/Kuops)"] + list(bench_names) + ["AVG"]
    rows = []
    for label in labels:
        values = [result.get(label, name).misp_per_kuops for name in bench_names]
        rows.append(
            [label]
            + [f"{value:.3f}" for value in values]
            + [f"{sum(values) / len(values):.3f}"]
        )
    return format_table(headers, rows)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.branches < 1:
        print("sweep: --branches must be positive", file=sys.stderr)
        return 2
    try:
        systems = _load_sweep_systems(args.systems)
        benchmarks = _sweep_benchmarks(args.benchmarks, args.branches)
    except _ConfigError as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 2
    warmup = args.warmup if args.warmup is not None else args.branches // 5
    if warmup < 0 or warmup >= args.branches:
        print(
            f"sweep: --warmup must be in [0, {args.branches}) to leave a "
            "measurement window",
            file=sys.stderr,
        )
        return 2
    config = SimulationConfig(n_branches=args.branches, warmup=warmup)
    cells = [
        SweepCell(
            system_label=label,
            bench_name=bench_name,
            system=spec,
            program=program,
            config=config,
        )
        for bench_name, program in benchmarks
        for label, spec in systems.items()
    ]
    engine = _engine_from_args(args)
    try:
        result = engine.run(cells)
    except (CellExecutionError, WorkerPoolError) as exc:
        print(f"sweep: {exc}", file=sys.stderr)
        return 1
    bench_names = [name for name, _ in benchmarks]
    print(_render_sweep_table(list(systems), bench_names, result))
    if args.out:
        payload = {
            "format": SPEC_FORMAT_VERSION,
            "branches": args.branches,
            "warmup": warmup,
            "cells": [
                {
                    "system": cell.system_label,
                    "benchmark": cell.bench_name,
                    "system_config": cell.system.to_config(),
                    "content_hash": cell.content_hash(),
                    "summary": result.get(cell.system_label, cell.bench_name).summary(),
                }
                for cell in cells
            ],
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            # allow_nan=False: fail loudly if any non-finite float sneaks
            # into a summary instead of silently emitting invalid JSON.
            json.dump(payload, fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")
        print(f"wrote {len(cells)} cell result(s) to {args.out}", file=sys.stderr)
    _print_cache_stats(engine)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.daemon import ServeConfig, SweepDaemon

    if args.jobs < 1:
        print("serve: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.max_queue < 1:
        print("serve: --max-queue must be at least 1", file=sys.stderr)
        return 2
    cache_url = None if args.no_cache else args.cache_url
    if args.faults is not None:
        from repro.faults.plan import FaultPlanError, load_plan

        try:
            load_plan(args.faults)  # validate up front: fail fast, not mid-job
        except FaultPlanError as exc:
            print(f"serve: invalid fault plan: {exc}", file=sys.stderr)
            return 2
        print(
            f"serve: CHAOS MODE — injecting faults from {args.faults}",
            file=sys.stderr,
            flush=True,
        )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        cache_url=cache_url,
        max_queue=args.max_queue,
        job_timeout=args.job_timeout,
        fault_plan=args.faults,
    )
    daemon = SweepDaemon(config)

    def ready(d: SweepDaemon) -> None:
        # Parsed by the SIGTERM tests and by shell wrappers; printed to
        # stdout (and flushed) the instant the port is bound.
        print(f"serving on http://{config.host}:{d.port}", flush=True)
        cache = d.cache.root if d.cache is not None else "disabled (no dedup)"
        print(
            f"serve: engine jobs={config.jobs}, cache={cache}, "
            f"max queue={config.max_queue}",
            file=sys.stderr,
            flush=True,
        )

    try:
        asyncio.run(daemon.run(ready=ready))
    except OSError as exc:
        print(f"serve: cannot bind {config.host}:{config.port}: {exc}", file=sys.stderr)
        return 1
    print("serve: drained, exiting", file=sys.stderr)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError, SweepClient

    if args.branches < 1:
        print("submit: --branches must be positive", file=sys.stderr)
        return 2
    try:
        systems_payload = _load_json(args.systems, "sweep systems")
    except _ConfigError as exc:
        print(f"submit: {exc}", file=sys.stderr)
        return 2
    payload = {
        "systems": systems_payload,
        "benchmarks": args.benchmarks,
        "branches": args.branches,
    }
    if args.warmup is not None:
        payload["warmup"] = args.warmup
    if args.backend is not None:
        payload["backend"] = args.backend
    if args.priority:
        payload["priority"] = args.priority
    client = SweepClient(args.url)
    try:
        job_id = client.submit_payload(
            payload, retry_after_budget=args.retry_after_budget
        )
    except ServeError as exc:
        if exc.status == 429:
            print(
                f"submit: daemon queue is full ({exc.payload.get('queue_depth')}"
                f"/{exc.payload.get('max_queue')}); retry later",
                file=sys.stderr,
            )
        elif exc.status == 400:
            print(f"submit: rejected config — {exc.payload.get('error')}", file=sys.stderr)
        else:
            print(f"submit: {exc}", file=sys.stderr)
        return 2 if exc.status == 400 else 1
    except (OSError, ValueError) as exc:
        print(f"submit: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(f"submitted {job_id} to {args.url}", file=sys.stderr)
    if args.no_wait:
        print(job_id)
        return 0
    try:
        for event in client.events(job_id):
            if args.progress and event.get("event") == "cell":
                print(
                    f"[{event['done']}/{event['total']}] "
                    f"{event['system']} × {event['benchmark']}",
                    file=sys.stderr,
                    flush=True,
                )
        document = client.status(job_id)
    except (OSError, ServeError) as exc:
        print(f"submit: lost the daemon mid-job: {exc}", file=sys.stderr)
        return 1
    if document["state"] != "done":
        error = document.get("error") or {}
        print(
            f"submit: job {job_id} {document['state']}: "
            f"{error.get('error', 'unknown failure')}",
            file=sys.stderr,
        )
        if error.get("cause"):
            print(f"  cause: {error['cause']}", file=sys.stderr)
        return 1
    result = client.sweep_result(job_id)
    print(_render_sweep_table(document["labels"], document["benchmarks"], result))
    print(
        f"job {job_id}: {document['cells_executed']} simulated, "
        f"{document['cells_from_cache']} from cache, "
        f"{document['cells_deduped']} deduped",
        file=sys.stderr,
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2, sort_keys=True, allow_nan=False)
            fh.write("\n")
        print(f"wrote job document to {args.out}", file=sys.stderr)
    return 0


def _chaos_smoke_cells(branches: int) -> list[SweepCell]:
    """The canned ``chaos run`` grid: small, mixed, worker-crashable."""
    config = SimulationConfig(n_branches=branches, warmup=branches // 5)
    systems = {
        "baseline-4": SystemSpec.single("2bc-gskew", 4),
        "gshare-2": SystemSpec.single("gshare", 2),
    }
    return [
        SweepCell(label, bench, spec, ProgramSpec(benchmark=bench), config)
        for bench in ("swim", "gcc")
        for label, spec in systems.items()
    ]


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_chaos_sweep
    from repro.faults.plan import FaultPlanError, load_plan

    try:
        plan = load_plan(args.faults)
    except FaultPlanError as exc:
        print(f"chaos: invalid fault plan: {exc}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("chaos: --jobs must be at least 1", file=sys.stderr)
        return 2
    if args.chaos_command == "run":
        cells = _chaos_smoke_cells(args.branches)
    else:
        try:
            systems = _load_sweep_systems(args.systems)
            benchmarks = _sweep_benchmarks(args.benchmarks, args.branches)
        except _ConfigError as exc:
            print(f"chaos: {exc}", file=sys.stderr)
            return 2
        warmup = args.warmup if args.warmup is not None else args.branches // 5
        config = SimulationConfig(n_branches=args.branches, warmup=warmup)
        cells = [
            SweepCell(label, bench_name, spec, program, config)
            for bench_name, program in benchmarks
            for label, spec in systems.items()
        ]

    def progress(done: int, total: int, cell) -> None:
        print(
            f"[{done}/{total}] {cell.system_label} × {cell.bench_name}",
            file=sys.stderr,
            flush=True,
        )

    try:
        report = run_chaos_sweep(
            cells,
            plan,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            progress=progress if args.progress else None,
        )
    except ValueError as exc:
        print(f"chaos: {exc}", file=sys.stderr)
        return 2
    except (CellExecutionError, WorkerPoolError) as exc:
        print(f"chaos: sweep did not survive the plan: {exc}", file=sys.stderr)
        return 1
    print(f"chaos: {report.summary()}", file=sys.stderr)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(report.to_config(), fh, indent=2, sort_keys=True,
                      allow_nan=False)
            fh.write("\n")
        print(f"wrote chaos report to {args.out}", file=sys.stderr)
    if not report.identical:
        print(
            f"chaos: {len(report.mismatches)} cell(s) diverged from the "
            "fault-free reference — recovery is NOT lossless",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_system_options(parser: argparse.ArgumentParser) -> None:
    """Prediction-system selection shared by ``bench`` and ``trace replay``."""
    parser.add_argument("--system", choices=("baseline", "hybrid"), default="hybrid")
    parser.add_argument("--prophet", default="2bc-gskew")
    parser.add_argument("--prophet-kb", type=int, default=8)
    parser.add_argument("--critic", default="tagged-gshare")
    parser.add_argument("--critic-kb", type=int, default=8)
    parser.add_argument("--future-bits", type=int, default=8)
    parser.add_argument(
        "--config", metavar="FILE",
        help="JSON system config (docs/CONFIG.md); overrides the flags above "
             "and reaches every registered predictor kind at any geometry",
    )


def _add_engine_options(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Sweep-engine flags, valid both before and after the subcommand.

    The top-level copy owns the defaults; the subcommand copy uses
    SUPPRESS so an absent flag never clobbers a value parsed up front.
    """
    parser.add_argument(
        "--jobs", type=int, metavar="N",
        default=1 if top_level else argparse.SUPPRESS,
        help="worker processes for sweep cells (default 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        default=None if top_level else argparse.SUPPRESS,
        help="cache per-cell sweep results under PATH (off by default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        default=False if top_level else argparse.SUPPRESS,
        help="disable the result cache even if --cache-dir is given",
    )
    parser.add_argument(
        "--progress", action="store_true",
        default=False if top_level else argparse.SUPPRESS,
        help="print one stderr line per finished sweep cell (streamed)",
    )
    _add_backend_option(parser, top_level=top_level)


def _add_backend_option(parser: argparse.ArgumentParser, top_level: bool = False) -> None:
    """The ``--backend`` flag, uniform across every simulating verb.

    Selects the kernel (scalar reference loop vs. the batched
    structure-of-arrays kernel); results are bit-identical, so this is
    purely a throughput knob and never changes cache keys.
    """
    parser.add_argument(
        "--backend", choices=("scalar", "batched"),
        default=None if top_level else argparse.SUPPRESS,
        help="kernel backend (default scalar; 'batched' is bit-identical "
             "and several times faster on supported system shapes)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Prophet/Critic hybrid branch prediction (ISCA 2004) reproduction",
    )
    _add_engine_options(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and benchmarks").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="simulation length multiplier (default 1.0)")
    _add_engine_options(run_parser, top_level=False)
    run_parser.set_defaults(func=_cmd_run)

    bench_parser = sub.add_parser("bench", help="run one benchmark/system pair")
    bench_parser.add_argument("benchmark", choices=benchmark_names())
    _add_system_options(bench_parser)
    bench_parser.add_argument("--branches", type=int, default=50_000)
    _add_backend_option(bench_parser)
    bench_parser.set_defaults(func=_cmd_bench)

    sweep_parser = sub.add_parser(
        "sweep",
        help="run every system in a JSON config file on every named "
             "benchmark (parallel + cached via --jobs/--cache-dir)",
    )
    sweep_parser.add_argument(
        "--systems", required=True, metavar="FILE",
        help="JSON file: one system config, a list of configs, or a "
             "{label: config} mapping (see docs/CONFIG.md)",
    )
    sweep_parser.add_argument(
        "--benchmarks", required=True, metavar="LIST",
        help="comma-separated benchmark names and/or recorded trace paths",
    )
    sweep_parser.add_argument(
        "--branches", type=int, default=16_000,
        help="committed branches per cell (default 16000)",
    )
    sweep_parser.add_argument(
        "--warmup", type=int, default=None,
        help="warmup branches per cell (default: branches / 5)",
    )
    sweep_parser.add_argument(
        "--out", metavar="FILE",
        help="also write per-cell summaries (plus configs and content "
             "hashes) as JSON",
    )
    _add_engine_options(sweep_parser, top_level=False)
    sweep_parser.set_defaults(func=_cmd_sweep)

    trace_parser = sub.add_parser(
        "trace", help="record, replay and inspect on-disk branch traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    record_parser = trace_sub.add_parser(
        "record", help="record a workload's committed branch stream to a file"
    )
    record_parser.add_argument(
        "benchmark", nargs="?", choices=benchmark_names(),
        help="benchmark to record (or use --suite)",
    )
    record_parser.add_argument(
        "--suite", choices=sorted(SUITES),
        help="record every member of a Table-1 suite (--out names a directory)",
    )
    record_parser.add_argument(
        "--out", "-o", required=True, metavar="PATH",
        help="output trace file (or directory for --suite / multi recordings)",
    )
    record_parser.add_argument(
        "--branches", type=int, default=50_000,
        help="committed branches to record (default 50000)",
    )
    record_parser.set_defaults(func=_cmd_trace_record)

    replay_parser = trace_sub.add_parser(
        "replay",
        help="replay recorded traces through a prediction system "
             "(bit-for-bit identical to the live run)",
    )
    replay_parser.add_argument("paths", nargs="+", metavar="TRACE")
    _add_system_options(replay_parser)
    replay_parser.add_argument(
        "--branches", type=int, default=None,
        help="branches to replay (default: the whole trace)",
    )
    replay_parser.add_argument(
        "--warmup", type=int, default=None,
        help="warmup branches (default: branches / 5)",
    )
    replay_parser.add_argument(
        "--oracle", action="store_true",
        help="replay with oracle future bits instead (the §6 information "
             "leak; prints inflated accuracy for comparison)",
    )
    _add_engine_options(replay_parser, top_level=False)
    replay_parser.set_defaults(func=_cmd_trace_replay)

    info_parser = trace_sub.add_parser(
        "info", help="print a trace file's header (O(1), no decompression)"
    )
    info_parser.add_argument("paths", nargs="+", metavar="TRACE")
    info_parser.add_argument(
        "--verify", action="store_true",
        help="stream the whole file, checking record count and content digest",
    )
    info_parser.set_defaults(func=_cmd_trace_info)

    serve_parser = sub.add_parser(
        "serve",
        help="run the sweep daemon: one persistent engine + cache behind "
             "an HTTP job queue (see docs/SERVE.md)",
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642,
        help="bind port, 0 for an ephemeral one (default 8642)",
    )
    serve_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes in the persistent pool (default 1 = in-process)",
    )
    serve_parser.add_argument(
        "--cache-url", default=".repro-cache", metavar="URL",
        help="result cache backend: a directory, http://host:port of "
             "another daemon, or tiered:<dir>|<url> (default .repro-cache)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="run without a result cache (every cell simulates, no dedup)",
    )
    serve_parser.add_argument(
        "--max-queue", type=int, default=64, metavar="N",
        help="queued-job limit before POST /jobs returns 429 (default 64)",
    )
    serve_parser.add_argument(
        "--job-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per job; on expiry the job fails, the "
             "worker pool is terminated and respawned (default: unbounded)",
    )
    serve_parser.add_argument(
        "--faults", metavar="PLAN", default=None,
        help="run under a fault-injection plan JSON (chaos testing only; "
             "see docs/ROBUSTNESS.md)",
    )
    serve_parser.set_defaults(func=_cmd_serve)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run a sweep under a seeded fault-injection plan and prove "
             "recovery is bit-identical (see docs/ROBUSTNESS.md)",
    )
    chaos_sub = chaos_parser.add_subparsers(dest="chaos_command", required=True)

    def _add_chaos_options(parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--faults", required=True, metavar="PLAN",
            help="fault-plan JSON (seed + cache/worker/peer sections)",
        )
        parser.add_argument(
            "--jobs", type=int, default=2, metavar="N",
            help="pool workers for the chaos pass (default 2; worker-crash "
                 "plans need at least 2)",
        )
        parser.add_argument(
            "--cache-dir", metavar="PATH", default=None,
            help="cache dir for the chaos pass (default: a fresh temp dir)",
        )
        parser.add_argument(
            "--progress", action="store_true",
            help="print one stderr line per finished chaos-pass cell",
        )
        parser.add_argument(
            "--out", metavar="FILE",
            help="write the chaos report (injections, recovery counters, "
                 "differential verdict) as JSON",
        )

    chaos_run = chaos_sub.add_parser(
        "run", help="chaos-test the canned smoke grid (2 systems × 2 benchmarks)"
    )
    chaos_run.add_argument(
        "--branches", type=int, default=2_000,
        help="committed branches per smoke cell (default 2000)",
    )
    _add_chaos_options(chaos_run)
    chaos_run.set_defaults(func=_cmd_chaos)

    chaos_sweep = chaos_sub.add_parser(
        "sweep", help="chaos-test an arbitrary grid (the `sweep` vocabulary)"
    )
    chaos_sweep.add_argument(
        "--systems", required=True, metavar="FILE",
        help="JSON file in the same shapes `sweep --systems` accepts",
    )
    chaos_sweep.add_argument(
        "--benchmarks", required=True, metavar="LIST",
        help="comma-separated benchmark names and/or trace paths",
    )
    chaos_sweep.add_argument(
        "--branches", type=int, default=16_000,
        help="committed branches per cell (default 16000)",
    )
    chaos_sweep.add_argument(
        "--warmup", type=int, default=None,
        help="warmup branches per cell (default: branches / 5)",
    )
    _add_chaos_options(chaos_sweep)
    chaos_sweep.set_defaults(func=_cmd_chaos)

    submit_parser = sub.add_parser(
        "submit",
        help="submit a sweep to a running daemon and stream its progress",
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8642",
        help="daemon address (default http://127.0.0.1:8642)",
    )
    submit_parser.add_argument(
        "--systems", required=True, metavar="FILE",
        help="JSON file in the same shapes `sweep --systems` accepts",
    )
    submit_parser.add_argument(
        "--benchmarks", required=True, metavar="LIST",
        help="comma-separated benchmark names and/or trace paths "
             "(paths must exist on the daemon's host)",
    )
    submit_parser.add_argument(
        "--branches", type=int, default=16_000,
        help="committed branches per cell (default 16000)",
    )
    submit_parser.add_argument(
        "--warmup", type=int, default=None,
        help="warmup branches per cell (default: branches / 5)",
    )
    submit_parser.add_argument(
        "--backend", choices=("scalar", "batched"), default=None,
        help="kernel backend for the job's cells (default scalar)",
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0,
        help="queue priority; higher runs first (default 0)",
    )
    submit_parser.add_argument(
        "--retry-after-budget", type=float, default=0.0, metavar="SECONDS",
        help="on a 429 (queue full), honor the daemon's Retry-After hint "
             "and resubmit, waiting at most this long in total (default 0 "
             "= surface the 429 immediately)",
    )
    submit_parser.add_argument(
        "--progress", action="store_true",
        help="print one stderr line per finished cell (streamed)",
    )
    submit_parser.add_argument(
        "--no-wait", action="store_true",
        help="print the job id and exit instead of waiting for results",
    )
    submit_parser.add_argument(
        "--out", metavar="FILE",
        help="also write the final job document (results included) as JSON",
    )
    submit_parser.set_defaults(func=_cmd_submit)

    lint_parser = sub.add_parser(
        "lint",
        help="run the repro-lint invariant checker (docs/LINTING.md)",
        description="AST-based invariant checker: determinism (REP001), "
        "pickle hygiene (REP002), hash schema (REP003), backend parity "
        "(REP004), async safety (REP005), exception hygiene (REP006). "
        "Exits 0 when every finding is baselined or suppressed inline, "
        "1 otherwise.",
    )
    from repro.analysis.cli import add_lint_arguments

    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=_cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # Install the kernel backend before any command builds a
    # SimulationConfig: new configs default to the process-wide
    # selection, so one flag reaches every cell an experiment or sweep
    # constructs internally. (`submit` keeps its own --backend — there
    # it names the backend the *daemon* should run the job with.)
    if args.func is not _cmd_submit and getattr(args, "backend", None):
        from repro.sim.driver import set_default_backend

        set_default_backend(args.backend)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
