"""Command-line entry point: run any reproduced experiment.

Usage::

    python -m repro list
    python -m repro run figure5 --scale 2
    python -m repro run headline --jobs 8
    python -m repro --jobs 4 --cache-dir .repro-cache run figure6c
    python -m repro bench gcc --system hybrid --branches 100000
    python -m repro trace record gcc --out traces/gcc.trace
    python -m repro trace replay traces/gcc.trace --jobs 2 --cache-dir .repro-cache
    python -m repro trace info traces/gcc.trace --verify

``run`` executes one registered experiment (see ``list``) and prints the
paper-style rows/series. ``bench`` runs a single benchmark under either
the 16KB 2Bc-gskew baseline or the 8+8 prophet/critic hybrid and prints
the accuracy metrics — the quickest way to poke at a configuration.
``trace`` records a workload's committed branch stream to a portable
file, replays recorded traces through any system (bit-for-bit identical
to the live run), and inspects/verifies trace files; see ``docs/CLI.md``
for the full record → sweep → replay walkthrough.

Sweep execution knobs for ``run`` and ``trace replay`` (accepted before
or after the subcommand; ``bench`` simulates a single cell, so they do
not apply):

``--jobs N``
    Fan the sweep cells out over an N-process pool (results are
    bit-for-bit identical to ``--jobs 1``; see
    :mod:`repro.sim.execution`).
``--cache-dir PATH``
    Cache per-cell results on disk, keyed by a content hash of the cell
    spec; re-runs only simulate cells whose configuration changed.
``--no-cache``
    Ignore ``--cache-dir`` (useful when the dir comes from a wrapper
    script but a fresh run is wanted).
"""

from __future__ import annotations

import argparse
import itertools
import sys
from pathlib import Path

from repro.experiments import EXPERIMENTS, run_experiment
from repro.predictors import make_critic, make_prophet
from repro.sim import SimulationConfig, make_engine, oracle_replay, simulate
from repro.sim.results import render_mapping
from repro.sim.specs import ProgramSpec, SweepCell, SystemSpec
from repro.workloads import benchmark, benchmark_names
from repro.workloads.suites import SUITES
from repro.workloads.trace import record_trace
from repro.workloads.trace_io import (
    TraceFormatError,
    TraceReader,
    read_trace_header,
    verify_trace,
)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("\nbenchmarks:")
    for name in benchmark_names():
        print(f"  {name}")
    return 0


def _engine_from_args(args: argparse.Namespace):
    cache_dir = None if args.no_cache else args.cache_dir
    return make_engine(jobs=args.jobs, cache_dir=cache_dir)


def _print_cache_stats(engine) -> None:
    if engine.cache is not None:
        print(
            f"cache: {engine.cache.hits} hit(s), {engine.cache.misses} miss(es) "
            f"under {engine.cache.root}",
            file=sys.stderr,
        )


def _cmd_run(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    result = run_experiment(args.experiment, scale=args.scale, engine=engine)
    print(result.render())
    _print_cache_stats(engine)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    system = _system_spec_from_args(args).build()
    config = SimulationConfig(n_branches=args.branches, warmup=args.branches // 5)
    stats = simulate(benchmark(args.benchmark), system, config)
    print(render_mapping(f"{args.benchmark} / {args.system}", stats.summary()))
    if args.system == "hybrid":
        print(render_mapping("critique census", stats.census.as_dict()))
    return 0


def _system_spec_from_args(args: argparse.Namespace) -> SystemSpec:
    """The baseline/hybrid spec the ``bench`` and ``trace replay`` verbs share."""
    if args.system == "baseline":
        return SystemSpec.single("2bc-gskew", 16)
    return SystemSpec.hybrid(
        args.prophet, args.prophet_kb, args.critic, args.critic_kb, args.future_bits
    )


def _cmd_trace_record(args: argparse.Namespace) -> int:
    if (args.benchmark is None) == (args.suite is None):
        print("trace record: name exactly one benchmark or pass --suite", file=sys.stderr)
        return 2
    if args.branches < 1:
        print("trace record: --branches must be positive", file=sys.stderr)
        return 2
    names = [args.benchmark] if args.benchmark else list(SUITES[args.suite])
    out = Path(args.out)
    if len(names) > 1 or out.is_dir() or str(args.out).endswith(("/", ".")):
        paths = [out / f"{name}.trace" for name in names]
    else:
        paths = [out]
    for name, path in zip(names, paths):
        source = {"benchmark": name, "branches": args.branches}
        try:
            header = record_trace(benchmark(name), args.branches, path, source=source)
        except OSError as exc:
            print(f"trace record: cannot write {path}: {exc}", file=sys.stderr)
            return 1
        print(
            f"{path}: {header.record_count} branches, {header.total_uops} uops, "
            f"taken rate {header.taken_rate:.3f}, digest {header.digest[:12]}…"
        )
    return 0


def _cmd_trace_info(args: argparse.Namespace) -> int:
    status = 0
    for path in args.paths:
        try:
            header = verify_trace(path) if args.verify else read_trace_header(path)
        except (OSError, TraceFormatError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            status = 1
            continue
        payload = header.describe()
        if args.verify:
            payload["verified"] = "ok (digest and record count match)"
        print(render_mapping(str(path), payload))
    return status


def _cmd_trace_replay(args: argparse.Namespace) -> int:
    if args.oracle and args.system == "baseline":
        print(
            "trace replay: --oracle evaluates a prophet/critic hybrid by "
            "construction; --system baseline is not applicable",
            file=sys.stderr,
        )
        return 2
    if args.oracle and (args.jobs > 1 or (args.cache_dir and not args.no_cache)):
        print(
            "trace replay: --oracle streams in-process; --jobs/--cache-dir "
            "are ignored",
            file=sys.stderr,
        )
    cells = []
    for path in args.paths:
        try:
            header = read_trace_header(path)
        except (OSError, TraceFormatError) as exc:
            print(f"{path}: {exc}", file=sys.stderr)
            return 2
        n_branches = header.record_count if args.branches is None else args.branches
        if n_branches < 1:
            print("trace replay: --branches must be positive", file=sys.stderr)
            return 2
        if n_branches > header.record_count:
            print(
                f"{path}: trace holds {header.record_count} branches; "
                f"cannot replay {n_branches}",
                file=sys.stderr,
            )
            return 2
        warmup = args.warmup if args.warmup is not None else n_branches // 5
        if warmup < 0 or warmup >= n_branches:
            print(
                f"trace replay: --warmup must be in [0, {n_branches}) to leave "
                "a measurement window",
                file=sys.stderr,
            )
            return 2
        config = SimulationConfig(n_branches=n_branches, warmup=warmup)
        if args.oracle:
            try:
                with TraceReader(path) as reader:
                    stats = oracle_replay(
                        itertools.islice(reader.records(), n_branches),
                        prophet=make_prophet(args.prophet, args.prophet_kb),
                        critic=make_critic(args.critic, args.critic_kb),
                        future_bits=args.future_bits,
                        warmup=warmup,
                    )
            except (OSError, TraceFormatError) as exc:
                print(f"{path}: INVALID — {exc}", file=sys.stderr)
                return 1
            print(render_mapping(f"{header.name} / oracle replay (§6 leak)", stats.summary()))
            continue
        cells.append(
            SweepCell(
                system_label=args.system,
                bench_name=header.name,
                system=_system_spec_from_args(args),
                program=ProgramSpec(trace=path),
                config=config,
            )
        )
    if cells:
        engine = _engine_from_args(args)
        try:
            results = engine.run_cells(cells)
        except (OSError, TraceFormatError) as exc:
            # A valid header over a truncated/corrupt body surfaces here.
            print(f"trace replay: INVALID trace — {exc}", file=sys.stderr)
            return 1
        for cell, stats in zip(cells, results):
            print(render_mapping(f"{cell.bench_name} / {args.system} (replayed)", stats.summary()))
        _print_cache_stats(engine)
    return 0


def _add_system_options(parser: argparse.ArgumentParser) -> None:
    """Prediction-system selection shared by ``bench`` and ``trace replay``."""
    parser.add_argument("--system", choices=("baseline", "hybrid"), default="hybrid")
    parser.add_argument("--prophet", default="2bc-gskew")
    parser.add_argument("--prophet-kb", type=int, default=8)
    parser.add_argument("--critic", default="tagged-gshare")
    parser.add_argument("--critic-kb", type=int, default=8)
    parser.add_argument("--future-bits", type=int, default=8)


def _add_engine_options(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Sweep-engine flags, valid both before and after the subcommand.

    The top-level copy owns the defaults; the subcommand copy uses
    SUPPRESS so an absent flag never clobbers a value parsed up front.
    """
    parser.add_argument(
        "--jobs", type=int, metavar="N",
        default=1 if top_level else argparse.SUPPRESS,
        help="worker processes for sweep cells (default 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        default=None if top_level else argparse.SUPPRESS,
        help="cache per-cell sweep results under PATH (off by default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        default=False if top_level else argparse.SUPPRESS,
        help="disable the result cache even if --cache-dir is given",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Prophet/Critic hybrid branch prediction (ISCA 2004) reproduction",
    )
    _add_engine_options(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and benchmarks").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="simulation length multiplier (default 1.0)")
    _add_engine_options(run_parser, top_level=False)
    run_parser.set_defaults(func=_cmd_run)

    bench_parser = sub.add_parser("bench", help="run one benchmark/system pair")
    bench_parser.add_argument("benchmark", choices=benchmark_names())
    _add_system_options(bench_parser)
    bench_parser.add_argument("--branches", type=int, default=50_000)
    bench_parser.set_defaults(func=_cmd_bench)

    trace_parser = sub.add_parser(
        "trace", help="record, replay and inspect on-disk branch traces"
    )
    trace_sub = trace_parser.add_subparsers(dest="trace_command", required=True)

    record_parser = trace_sub.add_parser(
        "record", help="record a workload's committed branch stream to a file"
    )
    record_parser.add_argument(
        "benchmark", nargs="?", choices=benchmark_names(),
        help="benchmark to record (or use --suite)",
    )
    record_parser.add_argument(
        "--suite", choices=sorted(SUITES),
        help="record every member of a Table-1 suite (--out names a directory)",
    )
    record_parser.add_argument(
        "--out", "-o", required=True, metavar="PATH",
        help="output trace file (or directory for --suite / multi recordings)",
    )
    record_parser.add_argument(
        "--branches", type=int, default=50_000,
        help="committed branches to record (default 50000)",
    )
    record_parser.set_defaults(func=_cmd_trace_record)

    replay_parser = trace_sub.add_parser(
        "replay",
        help="replay recorded traces through a prediction system "
             "(bit-for-bit identical to the live run)",
    )
    replay_parser.add_argument("paths", nargs="+", metavar="TRACE")
    _add_system_options(replay_parser)
    replay_parser.add_argument(
        "--branches", type=int, default=None,
        help="branches to replay (default: the whole trace)",
    )
    replay_parser.add_argument(
        "--warmup", type=int, default=None,
        help="warmup branches (default: branches / 5)",
    )
    replay_parser.add_argument(
        "--oracle", action="store_true",
        help="replay with oracle future bits instead (the §6 information "
             "leak; prints inflated accuracy for comparison)",
    )
    _add_engine_options(replay_parser, top_level=False)
    replay_parser.set_defaults(func=_cmd_trace_replay)

    info_parser = trace_sub.add_parser(
        "info", help="print a trace file's header (O(1), no decompression)"
    )
    info_parser.add_argument("paths", nargs="+", metavar="TRACE")
    info_parser.add_argument(
        "--verify", action="store_true",
        help="stream the whole file, checking record count and content digest",
    )
    info_parser.set_defaults(func=_cmd_trace_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
