"""Command-line entry point: run any reproduced experiment.

Usage::

    python -m repro list
    python -m repro run figure5 --scale 2
    python -m repro run headline --jobs 8
    python -m repro --jobs 4 --cache-dir .repro-cache run figure6c
    python -m repro bench gcc --system hybrid --branches 100000

``run`` executes one registered experiment (see ``list``) and prints the
paper-style rows/series. ``bench`` runs a single benchmark under either
the 16KB 2Bc-gskew baseline or the 8+8 prophet/critic hybrid and prints
the accuracy metrics — the quickest way to poke at a configuration.

Sweep execution knobs for ``run`` (accepted before or after the
subcommand; ``bench`` simulates a single cell, so they do not apply):

``--jobs N``
    Fan the experiment's sweep cells out over an N-process pool
    (results are bit-for-bit identical to ``--jobs 1``; see
    :mod:`repro.sim.execution`).
``--cache-dir PATH``
    Cache per-cell results on disk, keyed by a content hash of the cell
    spec; re-runs only simulate cells whose configuration changed.
``--no-cache``
    Ignore ``--cache-dir`` (useful when the dir comes from a wrapper
    script but a fresh run is wanted).
"""

from __future__ import annotations

import argparse
import sys

from repro.core import ProphetCriticSystem, SinglePredictorSystem
from repro.experiments import EXPERIMENTS, run_experiment
from repro.predictors import make_critic, make_prophet
from repro.sim import SimulationConfig, make_engine, simulate
from repro.sim.results import render_mapping
from repro.workloads import benchmark, benchmark_names


def _cmd_list(_args: argparse.Namespace) -> int:
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("\nbenchmarks:")
    for name in benchmark_names():
        print(f"  {name}")
    return 0


def _engine_from_args(args: argparse.Namespace):
    cache_dir = None if args.no_cache else args.cache_dir
    return make_engine(jobs=args.jobs, cache_dir=cache_dir)


def _cmd_run(args: argparse.Namespace) -> int:
    engine = _engine_from_args(args)
    result = run_experiment(args.experiment, scale=args.scale, engine=engine)
    print(result.render())
    if engine.cache is not None:
        print(
            f"cache: {engine.cache.hits} hit(s), {engine.cache.misses} miss(es) "
            f"under {engine.cache.root}",
            file=sys.stderr,
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.system == "baseline":
        system = SinglePredictorSystem(make_prophet("2bc-gskew", 16))
    else:
        system = ProphetCriticSystem(
            make_prophet(args.prophet, args.prophet_kb),
            make_critic(args.critic, args.critic_kb),
            future_bits=args.future_bits,
        )
    config = SimulationConfig(n_branches=args.branches, warmup=args.branches // 5)
    stats = simulate(benchmark(args.benchmark), system, config)
    print(render_mapping(f"{args.benchmark} / {args.system}", stats.summary()))
    if args.system == "hybrid":
        print(render_mapping("critique census", stats.census.as_dict()))
    return 0


def _add_engine_options(parser: argparse.ArgumentParser, top_level: bool) -> None:
    """Sweep-engine flags, valid both before and after the subcommand.

    The top-level copy owns the defaults; the subcommand copy uses
    SUPPRESS so an absent flag never clobbers a value parsed up front.
    """
    parser.add_argument(
        "--jobs", type=int, metavar="N",
        default=1 if top_level else argparse.SUPPRESS,
        help="worker processes for sweep cells (default 1 = in-process)",
    )
    parser.add_argument(
        "--cache-dir", metavar="PATH",
        default=None if top_level else argparse.SUPPRESS,
        help="cache per-cell sweep results under PATH (off by default)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        default=False if top_level else argparse.SUPPRESS,
        help="disable the result cache even if --cache-dir is given",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Prophet/Critic hybrid branch prediction (ISCA 2004) reproduction",
    )
    _add_engine_options(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and benchmarks").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run_parser.add_argument("--scale", type=float, default=1.0,
                            help="simulation length multiplier (default 1.0)")
    _add_engine_options(run_parser, top_level=False)
    run_parser.set_defaults(func=_cmd_run)

    bench_parser = sub.add_parser("bench", help="run one benchmark/system pair")
    bench_parser.add_argument("benchmark", choices=benchmark_names())
    bench_parser.add_argument("--system", choices=("baseline", "hybrid"), default="hybrid")
    bench_parser.add_argument("--prophet", default="2bc-gskew")
    bench_parser.add_argument("--prophet-kb", type=int, default=8)
    bench_parser.add_argument("--critic", default="tagged-gshare")
    bench_parser.add_argument("--critic-kb", type=int, default=8)
    bench_parser.add_argument("--future-bits", type=int, default=8)
    bench_parser.add_argument("--branches", type=int, default=50_000)
    bench_parser.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
