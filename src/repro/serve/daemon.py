"""The sweep daemon: an asyncio HTTP service over one engine and one cache.

``repro serve`` turns the PR-5 execution layer into a long-lived
service: one persistent :class:`~repro.sim.execution.SweepEngine`
(worker pool + memoized builds) and one content-addressed result cache,
shared by every client that submits a sweep. The HTTP surface is small
and stdlib-only (hand-rolled HTTP/1.1 over ``asyncio`` streams, every
response ``Connection: close``):

* ``POST /jobs`` — submit a PR-4 JSON sweep config
  (:func:`repro.sim.sweepconfig.cells_from_job` vocabulary, plus an
  optional integer ``priority``). Answers 202 with a job id, 400 with
  structured detail on a malformed config, 429 when the queue is full,
  503 while draining.
* ``GET /jobs/<id>`` — job status; includes per-cell encoded results
  once done (the same lossless codec the cache stores, so clients
  reconstruct bit-identical :class:`~repro.sim.metrics.RunStats`).
* ``GET /jobs/<id>/events`` — newline-delimited JSON event stream:
  the job's full history replays first, then live per-cell completion
  events (fed by the engine's ``progress`` hook) until the terminal
  ``done`` event.
* ``GET /healthz``, ``GET /stats`` — liveness and counters.
* ``GET/PUT /cache/<key>`` — raw cache entry bytes, the sharding
  endpoints :class:`~repro.sim.cache.HTTPBackend` speaks, so other
  daemons can mount this daemon's cache as their remote tier.

Scheduling: one FIFO+priority queue (higher ``priority`` first, FIFO
within a priority) drained by a single runner, so jobs execute one at a
time through the engine — cells *within* a job still fan out over the
pool. That serialization is also what makes duplicate concurrent jobs
cheap: the first computes and streams results into the cache, the rest
hit it (the engine additionally coalesces duplicates inside one job).

Backpressure: the queue is bounded (``max_queue``); a full queue answers
429 with a ``Retry-After`` hint instead of buffering unboundedly.

Shutdown: SIGTERM/SIGINT (or :meth:`SweepDaemon.initiate_drain`) stops
intake (503), finishes every job already accepted, then exits — clients
that got a 202 get their results.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.faults.handling import degrade
from repro.sim.cache import ResultCache, TieredBackend, cache_from_url, encode_result
from repro.sim.execution import (
    QUARANTINE_FAILURE_POLICY,
    CellExecutionError,
    CellFailure,
    ProcessPoolExecutor,
    SerialExecutor,
    SweepEngine,
    WorkerPoolError,
)
from repro.sim.specs import SweepCell
from repro.sim.sweepconfig import SweepConfigError, cells_from_job

#: Max request body: sweep configs are small; anything bigger is abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Wire-format version stamped on /healthz and /stats.
SERVE_API_VERSION = 1


@dataclass
class ServeConfig:
    """Knobs for one daemon (the CLI's ``serve`` flags)."""

    host: str = "127.0.0.1"
    port: int = 8642
    #: Worker processes for sweep cells (1 = in-process serial).
    jobs: int = 1
    #: ``--cache-url``: local dir, ``http://peer``, or ``tiered:dir|url``
    #: (see :func:`repro.sim.cache.cache_from_url`). None disables the
    #: cache — and with it cross-job dedup.
    cache_url: str | None = None
    #: Bounded backpressure: queued (not yet running) jobs beyond this
    #: answer 429.
    max_queue: int = 64
    #: Start with the runner paused (tests fill the queue deterministically).
    paused: bool = False
    #: Wall-clock budget per job, seconds. On expiry the job is marked
    #: failed, the worker pool is terminated, and the runner moves on.
    #: None (default) = unbounded, the pre-PR-10 behaviour.
    job_timeout: float | None = None
    #: Retry a job once when the worker pool dies under it (the pool
    #: respawns; cells already cached are not recomputed).
    retry_on_pool_death: bool = True
    #: ``--faults plan.json``: run the daemon under a
    #: :class:`~repro.faults.plan.FaultPlan` (chaos testing only).
    fault_plan: str | None = None


class Job:
    """One accepted sweep job and everything observable about it."""

    __slots__ = (
        "id", "cells", "meta", "priority", "state", "created", "started",
        "finished", "results", "error", "events", "subscribers",
        "cells_executed", "cells_from_cache", "cells_deduped",
        "cells_failed", "retries",
    )

    def __init__(self, job_id: str, cells: list[SweepCell], meta: dict, priority: int):
        self.id = job_id
        self.cells = cells
        self.meta = meta
        self.priority = priority
        self.state = "queued"
        self.created = time.monotonic()
        self.started: float | None = None
        self.finished: float | None = None
        self.results: list[dict] | None = None
        self.error: dict | None = None
        self.events: list[dict] = []
        self.subscribers: set[asyncio.Queue] = set()
        self.cells_executed = 0
        self.cells_from_cache = 0
        self.cells_deduped = 0
        #: Cells quarantined by the engine's FailurePolicy (worker-killers).
        self.cells_failed = 0
        #: Whole-job re-runs after the worker pool died underneath it.
        self.retries = 0

    def describe(self, with_results: bool = True) -> dict:
        """The ``GET /jobs/<id>`` document."""
        payload: dict = {
            "job": self.id,
            "state": self.state,
            "priority": self.priority,
            "cells": len(self.cells),
            "labels": self.meta["labels"],
            "benchmarks": self.meta["benchmarks"],
            "branches": self.meta["branches"],
            "warmup": self.meta["warmup"],
            "backend": self.meta["backend"],
            "cells_executed": self.cells_executed,
            "cells_from_cache": self.cells_from_cache,
            "cells_deduped": self.cells_deduped,
            "cells_failed": self.cells_failed,
            "retries": self.retries,
        }
        if self.started is not None and self.finished is not None:
            payload["seconds"] = round(self.finished - self.started, 6)
        if self.error is not None:
            payload["error"] = self.error
        if with_results and self.results is not None:
            payload["results"] = self.results
        return payload


class SweepDaemon:
    """One engine, one cache, one queue — shared by every HTTP client."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        #: FaultyBackend when running under ``--faults`` (chaos), else None.
        self.faulty_backend = None
        self._fault_state_dir: str | None = None
        if config.fault_plan is not None:
            self._arm_faults(config.fault_plan)
        executor = (
            SerialExecutor() if config.jobs <= 1 else ProcessPoolExecutor(config.jobs)
        )
        self.cache = (
            ResultCache(cache_from_url(config.cache_url))
            if config.cache_url is not None
            else None
        )
        if self.cache is not None and self.faulty_backend is not None:
            # Chaos mode: slide the fault injector between the codec and
            # the real storage, exactly where a failing disk/NIC lives.
            self.faulty_backend.inner = self.cache.backend
            self.cache.backend = self.faulty_backend
        # Jobs must survive a cell that repeatedly kills workers: the
        # engine quarantines it (a structured failure row in the job
        # document) instead of failing every other cell with it.
        self.engine = SweepEngine(
            executor=executor,
            cache=self.cache,
            failure_policy=QUARANTINE_FAILURE_POLICY,
        )
        self.jobs: dict[str, Job] = {}
        self.queue: asyncio.PriorityQueue = asyncio.PriorityQueue()
        self.draining = False
        self.started_at = time.monotonic()
        self._seq = 0
        self._resume = asyncio.Event()
        if not config.paused:
            self._resume.set()
        self._server: asyncio.AbstractServer | None = None
        self._runner_task: asyncio.Task | None = None
        self.loop: asyncio.AbstractEventLoop | None = None
        self.port: int | None = None
        #: Daemon-lifetime counters (the /stats document).
        self.jobs_submitted = 0
        self.jobs_done = 0
        self.jobs_failed = 0
        self.jobs_rejected = 0
        self.jobs_retried = 0
        self.jobs_timed_out = 0

    def _arm_faults(self, plan_path: str) -> None:
        """Load a fault plan and arm its injection channels (chaos only)."""
        from repro.faults.backend import FaultyBackend
        from repro.faults.plan import load_plan
        from repro.faults.workers import ENV_PLAN, ENV_STATE

        plan = load_plan(plan_path)
        if plan.cache is not None or plan.peer is not None:
            # Wired to the real backend after the cache is built.
            self.faulty_backend = FaultyBackend(None, plan)
        if plan.worker is not None:
            # Pool workers inherit the environment on spawn; the state
            # dir bounds the crash budget across respawned pools.
            self._fault_state_dir = tempfile.mkdtemp(prefix="repro-faults-")
            os.environ[ENV_PLAN] = os.path.abspath(plan_path)
            os.environ[ENV_STATE] = self._fault_state_dir

    # ------------------------------------------------------------------ stats

    def _queued_count(self) -> int:
        return sum(1 for job in self.jobs.values() if job.state == "queued")

    def stats(self) -> dict:
        jobs = self.jobs.values()
        document = {
            "api": SERVE_API_VERSION,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "engine_jobs": self.engine.executor.jobs,
            "cache": None if self.cache is None else str(self.cache.root),
            "draining": self.draining,
            "max_queue": self.config.max_queue,
            "queue_depth": self._queued_count(),
            "jobs_submitted": self.jobs_submitted,
            "jobs_rejected": self.jobs_rejected,
            "jobs_done": self.jobs_done,
            "jobs_failed": self.jobs_failed,
            "jobs_retried": self.jobs_retried,
            "jobs_timed_out": self.jobs_timed_out,
            "jobs_running": sum(1 for j in jobs if j.state == "running"),
            "cells_submitted": sum(len(j.cells) for j in jobs),
            "cells_executed": sum(j.cells_executed for j in jobs),
            "cells_from_cache": sum(j.cells_from_cache for j in jobs),
            "cells_deduped": sum(j.cells_deduped for j in jobs),
            "cells_failed": sum(j.cells_failed for j in jobs),
        }
        if self.cache is not None:
            document["cache_corrupt_evictions"] = self.cache.corrupt_evictions
            backend = self.cache.backend
            inner = getattr(backend, "inner", None)
            tiered = backend if isinstance(backend, TieredBackend) else (
                inner if isinstance(inner, TieredBackend) else None
            )
            if tiered is not None:
                document["breaker"] = tiered.breaker.describe()
                document["remote_skipped"] = tiered.remote_skipped
        executor = self.engine.executor
        if hasattr(executor, "worker_crashes"):
            document["worker_crashes"] = executor.worker_crashes
            document["cells_retried"] = executor.cells_retried
            document["cells_quarantined"] = executor.cells_quarantined
        if self.faulty_backend is not None:
            document["faults"] = self.faulty_backend.report()
        return document

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        """Bind the listening socket and start the job runner."""
        self.loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._runner_task = asyncio.ensure_future(self._runner())

    async def run(self, ready=None) -> None:
        """Serve until drained (the ``repro serve`` main loop).

        ``ready(daemon)`` fires once the port is bound — the in-thread
        harness (tests, the load profiler) uses it to learn the
        ephemeral port. SIGTERM/SIGINT initiate a graceful drain when
        running in the main thread (signal handlers cannot be installed
        elsewhere).
        """
        await self.start()
        if threading.current_thread() is threading.main_thread():
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(signum, self.initiate_drain)
        if ready is not None:
            ready(self)
        assert self._runner_task is not None
        await self._runner_task  # returns only after a drain completes
        self._server.close()
        await self._server.wait_closed()
        self.engine.close()
        self._disarm_faults()

    def _disarm_faults(self) -> None:
        """Drop the crash-injection env (the token dir stays as evidence)."""
        if self._fault_state_dir is None:
            return
        from repro.faults.workers import ENV_PLAN, ENV_STATE

        os.environ.pop(ENV_PLAN, None)
        os.environ.pop(ENV_STATE, None)

    def initiate_drain(self) -> None:
        """Stop intake, finish accepted jobs, then let :meth:`run` return."""
        if self.draining:
            return
        self.draining = True
        self._resume.set()  # a paused daemon must still drain
        # The sentinel sorts after every real job, so the runner finishes
        # the whole accepted queue before it sees the stop signal.
        self.queue.put_nowait((float("inf"), float("inf"), None))

    def resume(self) -> None:
        """Release a ``paused=True`` runner (test/bench determinism knob)."""
        self._resume.set()

    # ------------------------------------------------------------ job runner

    async def _runner(self) -> None:
        while True:
            # Wait for the resume gate *before* claiming work: a paused
            # runner must hold nothing, so late-arriving high-priority
            # jobs still outrank everything already queued.
            await self._resume.wait()
            _, _, job_id = await self.queue.get()
            if job_id is None:
                if self.draining:
                    return
                continue
            await self._run_job(self.jobs[job_id])

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.started = time.monotonic()
        self._emit(job, {"event": "status", "job": job.id, "status": "running"})

        def progress(done: int, total: int, cell: SweepCell) -> None:
            # Called on the job thread as each cell completes (cache
            # hits, fresh runs and duplicate clones alike); hop onto the
            # loop so subscribers and history stay single-threaded.
            loop.call_soon_threadsafe(
                self._emit,
                job,
                {
                    "event": "cell",
                    "job": job.id,
                    "done": done,
                    "total": total,
                    "system": cell.system_label,
                    "benchmark": cell.bench_name,
                },
            )

        hits_before = misses_before = 0
        results: list | None = None
        try:
            while True:
                if self.cache is not None:
                    # Recaptured per attempt: after a pool-death retry,
                    # cells completed on attempt 1 come back as cache
                    # hits, and the counters should say so.
                    hits_before = self.cache.hits
                    misses_before = self.cache.misses
                try:
                    results = await self._execute_with_timeout(loop, job, progress)
                except WorkerPoolError as exc:
                    # The pool died and the engine's bounded per-cell
                    # retry was exhausted — or a non-quarantining policy
                    # gave up. One whole-job retry: the pool respawns
                    # lazily and every cell already written to the cache
                    # is *not* recomputed, so the retry is cheap and
                    # bit-identical for completed work.
                    if not self.config.retry_on_pool_death or job.retries >= 1:
                        raise
                    job.retries += 1
                    self.jobs_retried += 1
                    self._emit(job, {
                        "event": "retry", "job": job.id, "cause": str(exc),
                    })
                    continue
                break
        except asyncio.TimeoutError:
            job.state = "failed"
            job.error = {
                "error": "job exceeded its wall-clock budget",
                "timeout_seconds": self.config.job_timeout,
            }
            self.jobs_failed += 1
            self.jobs_timed_out += 1
        except (CellExecutionError, WorkerPoolError) as exc:
            job.state = "failed"
            job.error = _error_document(exc)
            self.jobs_failed += 1
        except Exception as exc:  # pragma: no cover - unexpected engine bug
            degrade(exc, f"job {job.id} runner")
            job.state = "failed"
            job.error = {"error": f"{type(exc).__name__}: {exc}"}
            self.jobs_failed += 1
        else:
            job.results = [
                _result_row(cell, result) for cell, result in zip(job.cells, results)
            ]
            failed_hashes = {
                cell.content_hash()
                for cell, result in zip(job.cells, results)
                if isinstance(result, CellFailure)
            }
            job.cells_failed = sum(
                1 for result in results if isinstance(result, CellFailure)
            )
            if self.cache is not None:
                job.cells_from_cache = self.cache.hits - hits_before
                # A quarantined cell counted a cache miss on every
                # attempt but produced no result; subtract the distinct
                # failed cells so `executed` means "ran to completion".
                job.cells_executed = max(
                    0, self.cache.misses - misses_before - len(failed_hashes)
                )
            else:
                job.cells_executed = len(job.cells) - job.cells_failed
            job.cells_deduped = (
                len(job.cells) - job.cells_from_cache - job.cells_executed
                - job.cells_failed
            )
            job.state = "done"
            self.jobs_done += 1
        finally:
            job.finished = time.monotonic()
            self._emit(
                job,
                {
                    "event": "done",
                    "job": job.id,
                    "status": job.state,
                    "cells_executed": job.cells_executed,
                    "cells_from_cache": job.cells_from_cache,
                    "cells_deduped": job.cells_deduped,
                    "cells_failed": job.cells_failed,
                },
            )

    async def _execute_with_timeout(self, loop, job: Job, progress):
        """Run the job's cells, enforcing ``job_timeout`` if configured."""
        future = loop.run_in_executor(
            None, lambda: self.engine.run_cells(job.cells, progress=progress)
        )
        if self.config.job_timeout is None:
            return await future
        try:
            # Shield so a timeout doesn't cancel the executor thread
            # mid-engine (it cannot be interrupted anyway) — we instead
            # terminate the pool out from under it, which makes the
            # stuck `run_cells` raise and the future complete.
            return await asyncio.wait_for(
                asyncio.shield(future), self.config.job_timeout
            )
        except asyncio.TimeoutError:
            await loop.run_in_executor(None, self._terminate_engine)
            try:
                await future  # reap the zombie thread before moving on
            except Exception as exc:
                # Expected: the terminated pool surfaces as a
                # WorkerPoolError inside the stuck run_cells. The job's
                # outcome is already decided (timeout), so record & move on.
                degrade(exc, "reaping a timed-out job's engine thread")
            raise

    def _terminate_engine(self) -> None:
        """Kill the worker pool under a stuck job (timeout recovery)."""
        terminate = getattr(self.engine.executor, "terminate", None)
        if terminate is not None:
            try:
                terminate()
            except Exception as exc:  # pragma: no cover - best-effort kill
                degrade(exc, "terminating worker pool")

    def _emit(self, job: Job, event: dict) -> None:
        job.events.append(event)
        for queue in list(job.subscribers):
            queue.put_nowait(event)

    # ------------------------------------------------------------- HTTP layer

    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await _read_request(reader)
            if request is None:
                return
            method, target, body = request
            await self._route(method, target, body, writer)
        except asyncio.IncompleteReadError:
            pass
        except ConnectionError:
            pass
        except _BadRequest as exc:
            try:
                _write_response(writer, 400, {"error": str(exc)})
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(self, method: str, target: str, body: bytes, writer) -> None:
        path = target.split("?", 1)[0]
        parts = [p for p in path.split("/") if p]
        if method == "GET" and path == "/healthz":
            _write_response(writer, 200, {
                "status": "draining" if self.draining else "ok",
                "api": SERVE_API_VERSION,
                "engine_jobs": self.engine.executor.jobs,
                "queue_depth": self._queued_count(),
            })
        elif method == "GET" and path == "/stats":
            _write_response(writer, 200, self.stats())
        elif method == "POST" and path == "/jobs":
            self._handle_submit(body, writer)
        elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
            job = self.jobs.get(parts[1])
            if job is None:
                _write_response(writer, 404, {"error": f"unknown job {parts[1]!r}"})
            else:
                _write_response(writer, 200, job.describe())
        elif (
            method == "GET" and len(parts) == 3
            and parts[0] == "jobs" and parts[2] == "events"
        ):
            await self._handle_events(parts[1], writer)
        elif len(parts) == 2 and parts[0] == "cache":
            await self._handle_cache(method, parts[1], body, writer)
        else:
            _write_response(writer, 404, {"error": f"no route {method} {path}"})

    def _handle_submit(self, body: bytes, writer) -> None:
        if self.draining:
            _write_response(writer, 503, {"error": "daemon is draining; submit elsewhere"})
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            _write_response(writer, 400, {
                "error": f"job body is not valid JSON: {exc}",
                "detail": {"section": "body"},
            })
            return
        priority = payload.get("priority", 0) if isinstance(payload, dict) else 0
        if not isinstance(priority, int) or isinstance(priority, bool):
            _write_response(writer, 400, {
                "error": f"priority must be an integer, got {priority!r}",
                "detail": {"section": "priority"},
            })
            return
        try:
            cells, meta = cells_from_job(payload)
        except SweepConfigError as exc:
            # The PR-5 discipline: name the failing part of the spec in a
            # structured document, never a bare traceback.
            _write_response(writer, 400, {
                "error": f"invalid sweep config: {exc}",
                "detail": {"section": exc.section},
            })
            return
        if self._queued_count() >= self.config.max_queue:
            self.jobs_rejected += 1
            _write_response(
                writer, 429,
                {
                    "error": "job queue is full; retry later",
                    "queue_depth": self._queued_count(),
                    "max_queue": self.config.max_queue,
                },
                extra_headers={"Retry-After": "1"},
            )
            return
        self._seq += 1
        job_id = f"job-{self._seq:06d}"
        job = Job(job_id, cells, meta, priority)
        self.jobs[job_id] = job
        self.jobs_submitted += 1
        self._emit(job, {"event": "status", "job": job_id, "status": "queued"})
        # Higher priority first; FIFO (by sequence) within one priority.
        self.queue.put_nowait((-priority, self._seq, job_id))
        _write_response(writer, 202, {
            "job": job_id,
            "state": "queued",
            "cells": len(cells),
            "priority": priority,
            "queue_depth": self._queued_count(),
        })

    async def _handle_events(self, job_id: str, writer) -> None:
        job = self.jobs.get(job_id)
        if job is None:
            _write_response(writer, 404, {"error": f"unknown job {job_id!r}"})
            return
        _write_stream_header(writer)
        # Subscribe *before* replaying history, with no await in between:
        # _emit only runs on this loop, so the snapshot point is exact —
        # every event lands exactly once (history replay or live queue).
        queue: asyncio.Queue = asyncio.Queue()
        history = list(job.events)
        finished = job.state in ("done", "failed")
        if not finished:
            job.subscribers.add(queue)
        try:
            for event in history:
                _write_event(writer, event)
            await writer.drain()
            if finished:
                return
            while True:
                event = await queue.get()
                _write_event(writer, event)
                await writer.drain()
                if event.get("event") == "done":
                    return
        finally:
            job.subscribers.discard(queue)

    async def _handle_cache(self, method: str, key: str, body: bytes, writer) -> None:
        if self.cache is None:
            _write_response(writer, 404, {"error": "this daemon runs without a cache"})
            return
        if not key or len(key) != 64 or any(c not in "0123456789abcdef" for c in key):
            _write_response(writer, 400, {"error": f"malformed cache key {key!r}"})
            return
        # Backend byte ops are synchronous disk I/O — or, behind a tiered
        # backend, a blocking HTTP round trip to a peer daemon (which can
        # stall for the full socket timeout when the peer is dead). Run
        # them off-loop so one slow cache request cannot freeze every
        # connected client's stream and health check.
        backend = self.cache.backend
        loop = asyncio.get_running_loop()
        if method == "GET":
            try:
                data = await loop.run_in_executor(None, backend.get_bytes, key)
            except OSError as exc:
                _write_response(writer, 502, {"error": f"cache backend error: {exc}"})
                return
            if data is None:
                _write_response(writer, 404, {"error": "miss"})
            else:
                _write_raw_response(writer, 200, data)
        elif method == "PUT":
            try:
                await loop.run_in_executor(None, backend.put_bytes, key, body)
            except OSError as exc:
                _write_response(writer, 502, {"error": f"cache backend error: {exc}"})
                return
            _write_raw_response(writer, 204, b"")
        elif method == "DELETE":
            # Eviction endpoint: peers that detect a corrupt entry tell
            # this daemon to drop its copy too (see docs/ROBUSTNESS.md).
            try:
                await loop.run_in_executor(None, backend.discard, key)
            except OSError as exc:
                _write_response(writer, 502, {"error": f"cache backend error: {exc}"})
                return
            _write_raw_response(writer, 204, b"")
        else:
            _write_response(writer, 405, {"error": f"{method} not allowed on /cache"})


def _result_row(cell: SweepCell, result) -> dict:
    """One entry of a done job's ``results`` list.

    A quarantined cell (the engine's :class:`FailurePolicy` gave up on a
    worker-killer) carries a ``failure`` document instead of ``result``;
    every other cell's row is unchanged from pre-PR-10.
    """
    row = {
        "system": cell.system_label,
        "benchmark": cell.bench_name,
        "content_hash": cell.content_hash(),
    }
    if isinstance(result, CellFailure):
        row["failure"] = result.describe()
    else:
        row["result"] = encode_result(result)
    return row


def _error_document(exc: CellExecutionError | WorkerPoolError) -> dict:
    """A failed job's structured error (the CellExecutionError fields)."""
    if isinstance(exc, CellExecutionError):
        return {
            "error": "sweep cell failed",
            "system": exc.system_label,
            "benchmark": exc.bench_name,
            "cause": exc.cause,
            "cause_types": list(exc.cause_types),
            "spec": exc.spec_config,
            "worker_traceback": exc.worker_traceback,
        }
    return {"error": "worker pool died", "cause": str(exc)}


# ----------------------------------------------------------- HTTP plumbing


class _BadRequest(Exception):
    """An unparseable request line / header block / oversized body."""


async def _read_request(reader) -> tuple[str, str, bytes] | None:
    """Parse one HTTP/1.1 request (method, target, body); None on EOF."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split(maxsplit=2)
    except ValueError:
        raise _BadRequest("malformed request line") from None
    headers: dict[str, str] = {}
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise _BadRequest("too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise _BadRequest("malformed Content-Length") from None
    if length > MAX_BODY_BYTES:
        raise _BadRequest(f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, body


_REASONS = {
    200: "OK", 201: "Created", 202: "Accepted", 204: "No Content",
    400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 502: "Bad Gateway",
    503: "Service Unavailable",
}


def _write_raw_response(
    writer, status: int, body: bytes,
    content_type: str = "application/json",
    extra_headers: dict | None = None,
) -> None:
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    if body:
        head.append(f"Content-Type: {content_type}")
    head.append(f"Content-Length: {len(body)}")
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)


def _write_response(
    writer, status: int, payload: dict, extra_headers: dict | None = None
) -> None:
    body = json.dumps(payload, separators=(",", ":"), allow_nan=False).encode("utf-8")
    _write_raw_response(writer, status, body, extra_headers=extra_headers)


def _write_stream_header(writer) -> None:
    writer.write(
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: application/x-ndjson\r\n"
        b"Cache-Control: no-store\r\n"
        b"Connection: close\r\n\r\n"
    )


def _write_event(writer, event: dict) -> None:
    writer.write(json.dumps(event, separators=(",", ":")).encode("utf-8") + b"\n")


# ------------------------------------------------------- in-thread harness


@dataclass
class DaemonHandle:
    """A daemon running on a background thread (tests, the load profiler).

    ``start_daemon`` binds the port before returning, so ``url`` is
    immediately usable; ``stop()`` drains and joins.
    """

    daemon: SweepDaemon
    thread: threading.Thread
    _failure: list = field(default_factory=list)

    @property
    def url(self) -> str:
        return f"http://{self.daemon.config.host}:{self.daemon.port}"

    def resume(self) -> None:
        assert self.daemon.loop is not None
        self.daemon.loop.call_soon_threadsafe(self.daemon.resume)

    def drain(self) -> None:
        if self.daemon.loop is not None and self.thread.is_alive():
            self.daemon.loop.call_soon_threadsafe(self.daemon.initiate_drain)

    def stop(self, timeout: float = 60.0) -> None:
        self.drain()
        self.thread.join(timeout=timeout)
        if self.thread.is_alive():  # pragma: no cover - hang diagnostics
            raise RuntimeError("sweep daemon did not drain in time")
        if self._failure:
            raise self._failure[0]


def start_daemon(config: ServeConfig) -> DaemonHandle:
    """Run a :class:`SweepDaemon` on a fresh thread; returns once bound.

    Use ``port=0`` for an ephemeral port (read it back from
    ``handle.url``). The thread exits when the daemon drains
    (``handle.stop()``); startup errors re-raise here rather than dying
    silently on the background thread.
    """
    daemon = SweepDaemon(config)
    ready = threading.Event()
    failure: list = []

    def main() -> None:
        try:
            asyncio.run(daemon.run(ready=lambda _d: ready.set()))
        except BaseException as exc:  # reported to the caller via `failure`
            # reraise=(): even KeyboardInterrupt must land in `failure`
            # here — re-raising on a daemon thread would kill the
            # process without ever waking the caller blocked on `ready`.
            degrade(exc, "sweep daemon thread", reraise=())
            failure.append(exc)
            ready.set()

    thread = threading.Thread(target=main, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):
        raise RuntimeError("sweep daemon failed to bind within 30s")
    if failure:
        raise failure[0]
    return DaemonHandle(daemon=daemon, thread=thread, _failure=failure)
