"""Sweep-as-a-service: the async sweep daemon and its client.

One long-lived :class:`~repro.serve.daemon.SweepDaemon` owns one
persistent :class:`~repro.sim.execution.SweepEngine` (worker pool,
memoized builds) and one content-addressed result cache behind a
pluggable :class:`~repro.sim.cache.CacheBackend`; many clients submit
PR-4 JSON sweep configs as jobs over HTTP and stream per-cell progress.
See ``docs/SERVE.md`` for the API schema and deployment topologies, and
``repro serve`` / ``repro submit`` on the CLI.
"""

from repro.serve.client import ServeError, SweepClient
from repro.serve.daemon import (
    SERVE_API_VERSION,
    DaemonHandle,
    Job,
    ServeConfig,
    SweepDaemon,
    start_daemon,
)

__all__ = [
    "DaemonHandle",
    "Job",
    "SERVE_API_VERSION",
    "ServeConfig",
    "ServeError",
    "SweepClient",
    "SweepDaemon",
    "start_daemon",
]
