"""Client for the sweep daemon (the ``repro submit`` verb's engine).

:class:`SweepClient` speaks the daemon's JSON-over-HTTP surface with
nothing but :mod:`http.client`: submit a PR-4 sweep config as a job,
follow its newline-delimited event stream, and reconstruct results
through the cache's lossless codec — so a sweep fetched over HTTP is
bit-for-bit the sweep :func:`repro.sim.sweep.run_sweep` would have
produced locally (the service tests assert exactly that).

Every request uses a short-lived connection (the daemon answers with
``Connection: close``), so a client value is cheap, picklable and safe
to share across threads — the 8-client load scenario in
``tools/profile_serve.py`` hammers one daemon with eight of them.

Degradation (PR 10, docs/ROBUSTNESS.md): requests retry transient
connection errors with deterministic backoff; :meth:`submit_payload`
honours a 429's ``Retry-After`` hint up to a bounded budget; and
:meth:`wait` tolerates connection drops mid-wait (a daemon restarting,
a stream cut) by falling back to status polling with growing intervals
instead of surfacing the first ``ConnectionError`` to the caller.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Iterator

from repro.faults.policy import RetryPolicy
from repro.sim.cache import decode_result
from repro.sim.sweep import SweepResult

#: Connection-level failures worth retrying: the daemon restarting, a
#: dropped socket, a refused connect during a respawn window. HTTP
#: *error responses* (4xx/5xx) are never in this set — they reached the
#: daemon and carry a structured answer.
TRANSIENT_ERRORS = (ConnectionError, http.client.HTTPException, TimeoutError, OSError)

#: Default per-request retry schedule (3 tries, ~0.1s/0.2s backoff).
DEFAULT_REQUEST_RETRY = RetryPolicy(attempts=3, base_delay=0.1, max_delay=1.0)


class ServeError(RuntimeError):
    """An HTTP error from the daemon, with its structured payload.

    ``status`` is the HTTP code (429 = queue full, 400 = bad config,
    503 = draining); ``payload`` is the daemon's JSON error document;
    ``retry_after`` is the parsed ``Retry-After`` header in seconds
    when the daemon sent one (429s do), else None.
    """

    def __init__(
        self, status: int, payload: dict, retry_after: float | None = None
    ) -> None:
        self.status = status
        self.payload = payload
        self.retry_after = retry_after
        detail = payload.get("error", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status}: {detail}")


def _parse_retry_after(value: str | None) -> float | None:
    """Seconds from a ``Retry-After`` header; None when absent/garbled."""
    if value is None:
        return None
    try:
        seconds = float(value)
    except ValueError:
        return None
    return max(0.0, seconds)


class SweepClient:
    """Talk to one daemon at ``http://host:port``."""

    def __init__(
        self,
        url: str,
        timeout: float = 600.0,
        retry: RetryPolicy | None = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"SweepClient needs an http://host:port URL, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.prefix = parsed.path.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else DEFAULT_REQUEST_RETRY
        #: Injectable sleeper — tests patch this to run instantly.
        self._sleep = time.sleep

    # ------------------------------------------------------------- plumbing

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request_once(self, method: str, path: str, payload: Any = None) -> dict:
        body = None
        headers = {"Connection": "close"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connection()
        try:
            connection.request(method, self.prefix + path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        document = json.loads(data.decode("utf-8")) if data else {}
        if response.status >= 400:
            raise ServeError(
                response.status,
                document,
                retry_after=_parse_retry_after(response.getheader("Retry-After")),
            )
        return document

    def _request(self, method: str, path: str, payload: Any = None) -> dict:
        """One endpoint call, retrying transient *connection* failures.

        Only idempotent-by-design requests flow through here (GETs, and
        POST /jobs whose duplicate submissions the engine dedups via the
        cache), so a retry after an ambiguous drop is safe. ServeError
        is never retried at this layer — it means the daemon answered.
        """
        return self.retry.call(
            lambda: self._request_once(method, path, payload),
            retry_on=TRANSIENT_ERRORS,
            token=f"{method}:{path}",
            sleep=self._sleep,
        )

    # ------------------------------------------------------------- endpoints

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit_payload(
        self, payload: dict, *, retry_after_budget: float = 0.0
    ) -> str:
        """Submit a raw job payload; returns the job id (or raises ServeError).

        With a positive ``retry_after_budget``, a 429 (queue full) whose
        ``Retry-After`` hint fits the remaining budget is waited out and
        the submission retried; the budget bounds total waiting, so a
        persistently full daemon still surfaces the 429.
        """
        remaining = max(0.0, retry_after_budget)
        while True:
            try:
                return self._request("POST", "/jobs", payload)["job"]
            except ServeError as exc:
                if exc.status != 429:
                    raise
                hint = exc.retry_after if exc.retry_after is not None else 1.0
                if remaining <= 0.0 or hint > remaining:
                    raise
                # A zero hint must still consume budget, or a daemon
                # answering `Retry-After: 0` forever would spin us here.
                remaining -= max(hint, 0.05)
                self._sleep(hint)

    def submit(
        self,
        systems: Any,
        benchmarks: Any,
        branches: int | None = None,
        warmup: int | None = None,
        backend: str | None = None,
        priority: int = 0,
        retry_after_budget: float = 0.0,
    ) -> str:
        """Submit one sweep job from PR-4 config pieces (see docs/SERVE.md)."""
        payload: dict[str, Any] = {"systems": systems, "benchmarks": benchmarks}
        if branches is not None:
            payload["branches"] = branches
        if warmup is not None:
            payload["warmup"] = warmup
        if backend is not None:
            payload["backend"] = backend
        if priority:
            payload["priority"] = priority
        return self.submit_payload(payload, retry_after_budget=retry_after_budget)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's events: full history first, then live.

        Yields each newline-delimited JSON event as a dict and returns
        after the terminal ``done`` event (or on daemon shutdown, when
        the stream closes).
        """
        connection = self._connection()
        try:
            connection.request(
                "GET", f"{self.prefix}/jobs/{job_id}/events",
                headers={"Connection": "close"},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raise ServeError(response.status, json.loads(response.read() or b"{}"))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def wait(self, job_id: str, poll: float = 0.2, timeout: float | None = None) -> dict:
        """Block until the job finishes; returns its final status document.

        Prefers the event stream (wakes exactly when the job does);
        falls back to polling if the stream drops before the terminal
        event. Transient connection failures — the stream cut mid-job,
        the daemon briefly unreachable between polls — degrade to
        further polling with a growing interval (capped at 10×
        ``poll``); only an expired ``timeout`` or a structured
        :class:`ServeError` surfaces to the caller.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            for event in self.events(job_id):
                if event.get("event") == "done":
                    return self.status(job_id)
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"job {job_id} still running after {timeout}s")
        except ServeError:
            raise
        except TRANSIENT_ERRORS:
            # Stream dropped (daemon restart, cut socket): the job may
            # well still finish — fall through to polling.
            pass
        interval = poll
        while True:
            try:
                document = self.status(job_id)
            except ServeError:
                raise
            except TRANSIENT_ERRORS:
                document = None  # unreachable right now; keep polling
            if document is not None:
                if document["state"] in ("done", "failed"):
                    return document
                interval = poll
            else:
                interval = min(interval * 2, poll * 10)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still running after {timeout}s")
            self._sleep(interval)

    # --------------------------------------------------------------- results

    def results(self, job_id: str) -> list[tuple[str, str, Any]]:
        """The finished job's cells as (system label, bench name, result).

        Results decode through :func:`repro.sim.cache.decode_result` —
        the same lossless codec a local cache hit uses, so they are
        bit-identical to a local :func:`~repro.sim.sweep.run_sweep`.
        Quarantined cells (rows carrying ``failure`` instead of
        ``result``) are skipped here; :meth:`sweep_result` files them
        under :attr:`~repro.sim.sweep.SweepResult.failures`.
        """
        document = self.status(job_id)
        if document["state"] == "failed":
            raise ServeError(500, document.get("error") or {"error": "job failed"})
        if document["state"] != "done" or document.get("results") is None:
            raise ServeError(409, {"error": f"job {job_id} is {document['state']}"})
        return [
            (row["system"], row["benchmark"], decode_result(row["result"]))
            for row in document["results"]
            if "result" in row
        ]

    def sweep_result(self, job_id: str) -> SweepResult:
        """The finished job as a :class:`~repro.sim.sweep.SweepResult`.

        Quarantined cells land in ``SweepResult.failures`` (keyed like
        runs), so ``sweep.get`` on one raises the same descriptive
        KeyError a local quarantining engine produces.
        """
        document = self.status(job_id)
        sweep = SweepResult()
        for system_label, bench_name, result in self.results(job_id):
            result.system = system_label
            result.benchmark = bench_name
            sweep.add(system_label, bench_name, result)
        if document["state"] == "done" and document.get("results"):
            for row in document["results"]:
                if "failure" in row:
                    sweep.add_failure(
                        row["system"], row["benchmark"], row["failure"]
                    )
        return sweep
