"""Client for the sweep daemon (the ``repro submit`` verb's engine).

:class:`SweepClient` speaks the daemon's JSON-over-HTTP surface with
nothing but :mod:`http.client`: submit a PR-4 sweep config as a job,
follow its newline-delimited event stream, and reconstruct results
through the cache's lossless codec — so a sweep fetched over HTTP is
bit-for-bit the sweep :func:`repro.sim.sweep.run_sweep` would have
produced locally (the service tests assert exactly that).

Every request uses a short-lived connection (the daemon answers with
``Connection: close``), so a client value is cheap, picklable and safe
to share across threads — the 8-client load scenario in
``tools/profile_serve.py`` hammers one daemon with eight of them.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Any, Iterator

from repro.sim.cache import decode_result
from repro.sim.sweep import SweepResult


class ServeError(RuntimeError):
    """An HTTP error from the daemon, with its structured payload.

    ``status`` is the HTTP code (429 = queue full, 400 = bad config,
    503 = draining); ``payload`` is the daemon's JSON error document.
    """

    def __init__(self, status: int, payload: dict) -> None:
        self.status = status
        self.payload = payload
        detail = payload.get("error", "") if isinstance(payload, dict) else ""
        super().__init__(f"HTTP {status}: {detail}")


class SweepClient:
    """Talk to one daemon at ``http://host:port``."""

    def __init__(self, url: str, timeout: float = 600.0) -> None:
        parsed = urllib.parse.urlsplit(url)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ValueError(f"SweepClient needs an http://host:port URL, got {url!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.prefix = parsed.path.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, payload: Any = None) -> dict:
        body = None
        headers = {"Connection": "close"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connection()
        try:
            connection.request(method, self.prefix + path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
        finally:
            connection.close()
        document = json.loads(data.decode("utf-8")) if data else {}
        if response.status >= 400:
            raise ServeError(response.status, document)
        return document

    # ------------------------------------------------------------- endpoints

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit_payload(self, payload: dict) -> str:
        """Submit a raw job payload; returns the job id (or raises ServeError)."""
        return self._request("POST", "/jobs", payload)["job"]

    def submit(
        self,
        systems: Any,
        benchmarks: Any,
        branches: int | None = None,
        warmup: int | None = None,
        backend: str | None = None,
        priority: int = 0,
    ) -> str:
        """Submit one sweep job from PR-4 config pieces (see docs/SERVE.md)."""
        payload: dict[str, Any] = {"systems": systems, "benchmarks": benchmarks}
        if branches is not None:
            payload["branches"] = branches
        if warmup is not None:
            payload["warmup"] = warmup
        if backend is not None:
            payload["backend"] = backend
        if priority:
            payload["priority"] = priority
        return self.submit_payload(payload)

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's events: full history first, then live.

        Yields each newline-delimited JSON event as a dict and returns
        after the terminal ``done`` event (or on daemon shutdown, when
        the stream closes).
        """
        connection = self._connection()
        try:
            connection.request(
                "GET", f"{self.prefix}/jobs/{job_id}/events",
                headers={"Connection": "close"},
            )
            response = connection.getresponse()
            if response.status >= 400:
                raise ServeError(response.status, json.loads(response.read() or b"{}"))
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def wait(self, job_id: str, poll: float = 0.2, timeout: float | None = None) -> dict:
        """Block until the job finishes; returns its final status document.

        Prefers the event stream (wakes exactly when the job does);
        falls back to polling if the stream drops before the terminal
        event.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        for event in self.events(job_id):
            if event.get("event") == "done":
                return self.status(job_id)
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still running after {timeout}s")
        while True:
            document = self.status(job_id)
            if document["state"] in ("done", "failed"):
                return document
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still running after {timeout}s")
            time.sleep(poll)

    # --------------------------------------------------------------- results

    def results(self, job_id: str) -> list[tuple[str, str, Any]]:
        """The finished job's cells as (system label, bench name, result).

        Results decode through :func:`repro.sim.cache.decode_result` —
        the same lossless codec a local cache hit uses, so they are
        bit-identical to a local :func:`~repro.sim.sweep.run_sweep`.
        """
        document = self.status(job_id)
        if document["state"] == "failed":
            raise ServeError(500, document.get("error") or {"error": "job failed"})
        if document["state"] != "done" or document.get("results") is None:
            raise ServeError(409, {"error": f"job {job_id} is {document['state']}"})
        return [
            (row["system"], row["benchmark"], decode_result(row["result"]))
            for row in document["results"]
        ]

    def sweep_result(self, job_id: str) -> SweepResult:
        """The finished job as a :class:`~repro.sim.sweep.SweepResult`."""
        sweep = SweepResult()
        for system_label, bench_name, result in self.results(job_id):
            result.system = system_label
            result.benchmark = bench_name
            sweep.add(system_label, bench_name, result)
        return sweep
