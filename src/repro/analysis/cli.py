"""The ``repro lint`` CLI verb (also reachable as ``tools/run_lint.py``).

Exit codes: 0 — clean (every finding baselined or suppressed inline);
1 — blocking findings (or unparseable files); 2 — usage errors (from
argparse).

Typical invocations::

    python -m repro lint                      # lint the repo, text report
    python -m repro lint --check              # CI spelling of the same
    python -m repro lint --format json        # machine-readable findings
    python -m repro lint --out lint.json      # text to stdout + JSON artifact
    python -m repro lint --write-baseline     # grandfather current findings
    python -m repro lint --update-schema      # re-pin the REP003 manifest
    python -m repro lint --list-rules         # the rule catalog
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.framework import Baseline
from repro.analysis.rules import ALL_RULES
from repro.analysis.runner import (
    BASELINE_REL,
    collect_project,
    lint_project,
)


def _find_root(start: Path) -> Path:
    """The enclosing project root (the directory holding src/repro)."""
    for candidate in (start, *start.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise SystemExit(
        f"error: no src/repro tree at or above {start}; pass --root explicitly"
    )


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--root", metavar="DIR", default=None,
        help="project root to lint (default: auto-detected from the cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format on stdout (default: text)",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="also write the JSON findings document to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file (default: <root>/{BASELINE_REL})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline: report every finding as blocking",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="explicit CI spelling: fail on any non-baselined finding "
        "(this is also the default behaviour)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover every current unsuppressed "
        "finding, then exit 0",
    )
    parser.add_argument(
        "--update-schema", action="store_true",
        help="regenerate the REP003 hash-schema manifest from the current "
        "tree (after an intentional SPEC_FORMAT_VERSION bump)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}")
            print(f"       {rule.rationale}")
        return 0

    root = _find_root(Path(args.root) if args.root else Path.cwd())
    project = collect_project(root)

    if args.update_schema:
        from repro.analysis.rules.hash_schema import MANIFEST_REL, generate_manifest

        manifest = generate_manifest(project)
        path = root / MANIFEST_REL
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
        print(
            f"pinned hash schema for format {manifest['spec_format_version']} "
            f"({len(manifest['classes'])} dataclasses) -> {path}"
        )
        return 0

    baseline_path = Path(args.baseline) if args.baseline else root / BASELINE_REL
    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    report = lint_project(project, ALL_RULES, baseline)

    if args.write_baseline:
        Baseline.save(baseline_path, report.new + report.baselined)
        count = len(report.new) + len(report.baselined)
        print(f"baselined {count} finding(s) -> {baseline_path}")
        return 0

    if args.out:
        Path(args.out).write_text(
            json.dumps(report.to_json(), indent=2) + "\n", encoding="utf-8"
        )
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based invariant checker for the repro tree "
        "(determinism, pickle hygiene, hash schema, backend parity, "
        "async safety); see docs/LINTING.md",
    )
    add_lint_arguments(parser)
    return run_lint(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
