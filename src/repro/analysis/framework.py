"""The repro-lint rule framework: files, findings, suppressions, baseline.

Every invariant this subsystem checks exists because our own changelog
shows it being violated: spec-schema drift silently re-keyed result
caches (PRs 3-4), memoized caches leaked through pickles until PR 8's
``__getstate__`` sweep, and PR 7's daemon shipped a runner-pause race
that only an end-to-end test caught. ``repro lint`` turns those bug
classes into commit-time errors (see ``docs/LINTING.md`` for the rule
catalog and the PR each rule is grounded in).

The moving parts:

* :class:`SourceFile` — one parsed Python file: text, AST, and the
  inline suppressions it declares (``# repro-lint: disable=REPxxx``).
* :class:`Project` — every scanned file plus cross-file indexes
  (class table, base-class walking) that project-wide rules need.
* :class:`Rule` — the per-rule base: a ``REPxxx`` code, a one-line
  name, a rationale, and ``check(project) -> findings``.
* :class:`Finding` — one violation at a file:line, with a content
  fingerprint that is stable across unrelated line-number drift.
* :class:`Baseline` — the checked-in ledger of grandfathered findings
  (``.repro-lint-baseline.json``): matched findings are reported but do
  not fail the run; entries that no longer match are flagged as stale
  so the ledger cannot rot silently.

Suppression grammar (both spellings are matched case-sensitively):

* ``# repro-lint: disable=REP001`` on the *reported line* silences the
  listed codes for that line (comma-separate several codes; a bare
  ``disable`` with no codes silences every rule on the line).
* ``# repro-lint: disable-file=REP004`` anywhere in the file silences
  the listed codes for the whole file.

Multi-line statements report at the line of the statement's first
token, so that is where the inline suppression belongs.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Matches one suppression comment; group 1 is the directive, group 2
#: the (optional) comma-separated code list.
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable-file|disable)\s*(?:=\s*([A-Z0-9,\s]+))?"
)

_CODE_RE = re.compile(r"^REP\d{3}$")

#: Sentinel meaning "every rule" in a suppression set.
ALL_RULES = "*"


def _parse_codes(raw: str | None) -> frozenset[str]:
    """The code set a suppression names; bare ``disable`` means all."""
    if raw is None:
        return frozenset({ALL_RULES})
    codes = frozenset(code.strip() for code in raw.split(",") if code.strip())
    return codes or frozenset({ALL_RULES})


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str  #: project-relative POSIX path
    line: int  #: 1-based
    message: str
    snippet: str = ""  #: the stripped source line (fingerprint input)

    def fingerprint(self) -> str:
        """Content identity for baseline matching.

        Hashes (rule, path, snippet) — *not* the line number — so a
        baselined finding keeps matching when unrelated edits shift the
        file, and stops matching the moment the offending line itself
        changes.
        """
        basis = "\x1f".join((self.rule, self.path, self.snippet))
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint(),
        }


class SourceFile:
    """One scanned file: source text, AST, and inline suppressions.

    Files that fail to parse keep ``tree is None`` and carry the error
    in ``parse_error``; the runner reports them as REP000 findings so a
    syntax error can never silently exempt a file from every rule.
    """

    def __init__(self, root: Path, path: Path) -> None:
        self.path = path
        self.rel = path.relative_to(root).as_posix()
        self.text = path.read_text(encoding="utf-8")
        self.lines = self.text.splitlines()
        self.parse_error: str | None = None
        try:
            self.tree: ast.Module | None = ast.parse(self.text, filename=self.rel)
        except SyntaxError as exc:
            self.tree = None
            self.parse_error = f"{exc.msg} (line {exc.lineno})"
        self.line_suppressions: dict[int, frozenset[str]] = {}
        self.file_suppressions: frozenset[str] = frozenset()
        self._scan_suppressions()

    @classmethod
    def from_text(cls, root: Path, rel: str, text: str) -> "SourceFile":
        """Build a file from in-memory text (mutation tests use this)."""
        obj = cls.__new__(cls)
        obj.path = root / rel
        obj.rel = Path(rel).as_posix()
        obj.text = text
        obj.lines = text.splitlines()
        obj.parse_error = None
        try:
            obj.tree = ast.parse(text, filename=obj.rel)
        except SyntaxError as exc:
            obj.tree = None
            obj.parse_error = f"{exc.msg} (line {exc.lineno})"
        obj.line_suppressions = {}
        obj.file_suppressions = frozenset()
        obj._scan_suppressions()
        return obj

    def _scan_suppressions(self) -> None:
        file_codes: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            codes = _parse_codes(match.group(2))
            if match.group(1) == "disable-file":
                file_codes |= codes
            else:
                merged = self.line_suppressions.get(lineno, frozenset()) | codes
                self.line_suppressions[lineno] = frozenset(merged)
        self.file_suppressions = frozenset(file_codes)

    def is_suppressed(self, rule: str, line: int) -> bool:
        if ALL_RULES in self.file_suppressions or rule in self.file_suppressions:
            return True
        codes = self.line_suppressions.get(line)
        if codes is None:
            return False
        return ALL_RULES in codes or rule in codes

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


def _decorator_name(node: ast.expr) -> str:
    """The trailing identifier of a decorator (``dataclass`` for both
    ``@dataclass`` and ``@dataclasses.dataclass(frozen=True)``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def is_dataclass_def(node: ast.ClassDef) -> bool:
    return any(_decorator_name(dec) == "dataclass" for dec in node.decorator_list)


def dataclass_fields(node: ast.ClassDef) -> list[tuple[str, ast.expr, int]]:
    """Declared fields of a dataclass body: (name, annotation, line).

    ``ClassVar`` annotations are skipped — they are not dataclass fields
    and never enter ``asdict``/hash payloads.
    """
    out: list[tuple[str, ast.expr, int]] = []
    for stmt in node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(stmt.target, ast.Name):
            continue
        if "ClassVar" in ast.dump(stmt.annotation):
            continue
        out.append((stmt.target.id, stmt.annotation, stmt.lineno))
    return out


def base_names(node: ast.ClassDef) -> list[str]:
    """Base-class identifiers, by trailing name (``module.Cls`` -> ``Cls``)."""
    names = []
    for base in node.bases:
        if isinstance(base, ast.Attribute):
            names.append(base.attr)
        elif isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Subscript):  # Generic[...] and friends
            names.append(_decorator_name(base.value))
    return names


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted import path they denote.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from os import urandom`` -> ``{"urandom": "os.urandom"}``.
    Relative imports keep a leading ``.`` so callers can recognise them.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            prefix = ("." * node.level) + (node.module or "")
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{prefix}.{alias.name}"
    return aliases


def resolve_call(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """The dotted, import-resolved target of a call, when statically known.

    ``np.random.randint(...)`` resolves to ``numpy.random.randint`` under
    ``import numpy as np``. Calls through arbitrary objects (``self.rng``)
    resolve to None — determinism rules only judge module-level entropy.
    """
    dotted = dotted_name(node.func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    resolved_head = aliases.get(head, head)
    return f"{resolved_head}.{rest}" if rest else resolved_head


class Project:
    """Every scanned file plus the cross-file indexes rules share."""

    def __init__(self, root: Path, files: Iterable[SourceFile]) -> None:
        self.root = Path(root)
        self.files = sorted(files, key=lambda sf: sf.rel)
        self._by_rel = {sf.rel: sf for sf in self.files}
        self._classes: dict[str, list[tuple[SourceFile, ast.ClassDef]]] | None = None

    def file(self, rel: str) -> SourceFile | None:
        return self._by_rel.get(rel)

    def replace_file(self, rel: str, text: str) -> None:
        """Swap one file's contents in place (seeded-mutation tests)."""
        sf = SourceFile.from_text(self.root, rel, text)
        self._by_rel[rel] = sf
        self.files = [sf if f.rel == rel else f for f in self.files]
        self._classes = None

    def iter_files(self, prefix: str = "") -> Iterator[SourceFile]:
        for sf in self.files:
            if sf.tree is not None and sf.rel.startswith(prefix):
                yield sf

    @property
    def classes(self) -> dict[str, list[tuple[SourceFile, ast.ClassDef]]]:
        """Simple-name index of every class definition in the project."""
        if self._classes is None:
            index: dict[str, list[tuple[SourceFile, ast.ClassDef]]] = {}
            for sf in self.iter_files():
                for node in ast.walk(sf.tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, []).append((sf, node))
            self._classes = index
        return self._classes

    def class_defines(self, class_name: str, method: str) -> bool:
        """Does ``class_name`` (or any resolvable ancestor) define ``method``?

        Bases that cannot be resolved inside the project (stdlib,
        third-party) are treated as not defining it — rules stay
        conservative and the inline suppression is the escape hatch.
        """
        return self._class_defines(class_name, method, set())

    def _class_defines(self, class_name: str, method: str, seen: set[str]) -> bool:
        if class_name in seen:
            return False
        seen.add(class_name)
        for _sf, node in self.classes.get(class_name, ()):
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == method
                ):
                    return True
            for base in base_names(node):
                if self._class_defines(base, method, seen):
                    return True
        return False


class Rule:
    """Base class for one ``REPxxx`` invariant check."""

    code: str = "REP000"
    name: str = ""
    rationale: str = ""

    def check(self, project: Project) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile, line: int, message: str) -> Finding:
        return Finding(
            rule=self.code,
            path=sf.rel,
            line=line,
            message=message,
            snippet=sf.snippet(line),
        )


BASELINE_VERSION = 1


class Baseline:
    """The checked-in ledger of grandfathered findings.

    Matching is by (rule, path, fingerprint) as a *multiset*: two
    identical offending lines in one file need two entries. Entries that
    match nothing are reported as stale rather than silently ignored.
    """

    def __init__(self, entries: Counter | None = None, path: Path | None = None):
        self.entries: Counter = entries if entries is not None else Counter()
        self.path = path

    @staticmethod
    def _key(finding: Finding) -> tuple[str, str, str]:
        return (finding.rule, finding.path, finding.fingerprint())

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls(path=path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {payload.get('version')!r}; "
                f"this build reads version {BASELINE_VERSION}"
            )
        entries: Counter = Counter()
        for entry in payload.get("findings", []):
            entries[(entry["rule"], entry["path"], entry["fingerprint"])] += 1
        return cls(entries, path=path)

    @staticmethod
    def save(path: Path, findings: Iterable[Finding], notes: dict | None = None) -> None:
        """Write a baseline covering ``findings`` (sorted, line included
        for human readers; matching ignores it)."""
        notes = notes or {}
        entries = [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "fingerprint": f.fingerprint(),
                "message": f.message,
                **({"note": notes[f.fingerprint()]} if f.fingerprint() in notes else {}),
            }
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        ]
        payload = {"version": BASELINE_VERSION, "findings": entries}
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def partition(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], list[Finding], list[tuple[str, str, str]]]:
        """Split findings into (new, baselined); also return stale entries."""
        remaining = Counter(self.entries)
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            key = self._key(finding)
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = sorted(key for key, count in remaining.items() if count > 0)
        return new, baselined, stale


def validate_rule(rule: Rule) -> None:
    """Registry hygiene: codes must be well-formed and documented."""
    if not _CODE_RE.match(rule.code):
        raise ValueError(f"rule code {rule.code!r} does not match REPxxx")
    if not rule.name or not rule.rationale:
        raise ValueError(f"rule {rule.code} needs a name and a rationale")
