"""repro-lint: an AST-based invariant checker for this repository.

The repo's correctness story rests on invariants that used to be
enforced only by convention — spec determinism, pickle hygiene for
memoized caches, hash-schema stability, batched-backend parity, and
event-loop safety in the serve layer. Each has a documented failure in
CHANGES.md; this package turns them into commit-time errors.

Entry points:

* ``python -m repro lint`` (the CLI verb; ``tools/run_lint.py`` is the
  standalone spelling) — see :mod:`repro.analysis.cli`;
* :func:`repro.analysis.runner.collect_project` +
  :func:`repro.analysis.runner.lint_project` — the programmatic API the
  self-tests drive;
* :data:`repro.analysis.rules.ALL_RULES` — the rule pack.

The rule catalog, suppression grammar and baseline workflow are
documented in ``docs/LINTING.md``.
"""

from repro.analysis.framework import Baseline, Finding, Project, Rule, SourceFile
from repro.analysis.runner import LintReport, collect_project, lint_project

__all__ = [
    "Baseline",
    "Finding",
    "LintReport",
    "Project",
    "Rule",
    "SourceFile",
    "collect_project",
    "lint_project",
]
