"""Collect a project, run the rule pack, report: the repro-lint engine.

The runner is deliberately side-effect free up to reporting: it parses
every scanned file once into a :class:`~repro.analysis.framework.Project`,
hands that to each rule, then filters the raw findings through inline
suppressions and the checked-in baseline. The CLI
(:mod:`repro.analysis.cli`) and the self-tests drive the same entry
points, so "what CI enforces" and "what the tests prove" cannot drift.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.framework import Baseline, Finding, Project, Rule, SourceFile

#: Directory trees scanned by default, relative to the project root.
#: tests/ and tools/ are included so project-wide rules (REP004's
#: differential-matrix check) can read them; file-scoped rules restrict
#: themselves to src/repro.
DEFAULT_SCAN = ("src/repro", "tests", "tools")

#: Default baseline location, relative to the project root.
BASELINE_REL = ".repro-lint-baseline.json"

#: Directories never scanned (caches, VCS internals).
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache"}


def collect_project(root: Path, scan: Sequence[str] = DEFAULT_SCAN) -> Project:
    """Parse every ``.py`` file under ``root``'s scan directories."""
    root = Path(root).resolve()
    files: list[SourceFile] = []
    for rel in scan:
        base = root / rel
        if base.is_file() and base.suffix == ".py":
            files.append(SourceFile(root, base))
            continue
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            if any(part in _SKIP_DIR_NAMES for part in path.parts):
                continue
            files.append(SourceFile(root, path))
    return Project(root, files)


@dataclass
class LintReport:
    """Everything one lint run produced, pre-sliced for reporting."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    stale_baseline: list[tuple[str, str, str]] = field(default_factory=list)
    parse_errors: list[Finding] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if (self.new or self.parse_errors) else 0

    def all_findings(self) -> list[Finding]:
        return sorted(
            self.new + self.baselined + self.suppressed + self.parse_errors,
            key=lambda f: (f.path, f.line, f.rule),
        )

    def to_json(self) -> dict:
        def bucket(findings: Iterable[Finding], status: str) -> list[dict]:
            return [{**f.to_json(), "status": status} for f in findings]

        return {
            "findings": sorted(
                bucket(self.new, "new")
                + bucket(self.baselined, "baselined")
                + bucket(self.suppressed, "suppressed")
                + bucket(self.parse_errors, "parse-error"),
                key=lambda f: (f["path"], f["line"], f["rule"]),
            ),
            "stale_baseline": [
                {"rule": rule, "path": path, "fingerprint": fp}
                for rule, path, fp in self.stale_baseline
            ],
            "summary": {
                "new": len(self.new),
                "baselined": len(self.baselined),
                "suppressed": len(self.suppressed),
                "parse_errors": len(self.parse_errors),
                "stale_baseline": len(self.stale_baseline),
            },
            "exit_code": self.exit_code,
        }

    def render_text(self) -> str:
        lines = []
        for finding in sorted(self.new, key=lambda f: (f.path, f.line, f.rule)):
            lines.append(finding.render())
        for finding in self.parse_errors:
            lines.append(finding.render())
        for rule, path, fp in self.stale_baseline:
            lines.append(
                f"warning: stale baseline entry {rule} {path} [{fp}] matches "
                "nothing — the finding was fixed; prune it with "
                "`repro lint --write-baseline`"
            )
        summary = (
            f"{len(self.new)} blocking finding(s); "
            f"{len(self.baselined)} baselined, "
            f"{len(self.suppressed)} suppressed inline"
        )
        if self.parse_errors:
            summary += f", {len(self.parse_errors)} unparseable file(s)"
        lines.append(summary)
        return "\n".join(lines)


def run_rules(project: Project, rules: Sequence[Rule]) -> list[Finding]:
    """Raw findings from every rule, inline suppressions *not* applied."""
    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(project))
    return findings


def lint_project(
    project: Project,
    rules: Sequence[Rule],
    baseline: Baseline | None = None,
) -> LintReport:
    """Run ``rules`` and classify the findings."""
    report = LintReport()
    for sf in project.files:
        if sf.parse_error is not None:
            report.parse_errors.append(
                Finding(
                    rule="REP000",
                    path=sf.rel,
                    line=1,
                    message=f"file does not parse ({sf.parse_error}); no rule "
                    "can vouch for it",
                )
            )
    raw = run_rules(project, rules)
    unsuppressed: list[Finding] = []
    for finding in raw:
        sf = project.file(finding.path)
        if sf is not None and sf.is_suppressed(finding.rule, finding.line):
            report.suppressed.append(finding)
        else:
            unsuppressed.append(finding)
    if baseline is None:
        baseline = Baseline()
    report.new, report.baselined, report.stale_baseline = baseline.partition(
        unsuppressed
    )
    return report


def parseable(text: str) -> bool:
    """Quick syntax probe used by the self-tests' fixture helper."""
    try:
        ast.parse(text)
    except SyntaxError:
        return False
    return True
