"""REP003 — hash-schema guard: spec fields may not drift silently.

The scar tissue behind this rule: PR 3 added
``SimulationConfig.collect_predictor_stats`` and PR 4 re-described
predictors as expanded geometries — both changed
:meth:`SweepCell.content_hash` payloads, and both silently invalidated
every existing result cache (the PR 4 one at least bumped
``SPEC_FORMAT_VERSION``; the PR 3 one was discovered from re-filling
caches). A field *added* to any dataclass reachable from the hash
payload re-keys every cache entry on the next run — correct but
invisible, which is exactly how a fleet of daemons ends up recomputing
a warehouse of results nobody meant to throw away. A field added to the
payload *without* entering the hash (like ``backend``) is worse: two
behaviourally different cells could share an entry.

The machine-checked contract: every field of every dataclass reachable
from ``SweepCell.content_hash()`` / ``ProgramSpec.build_key()`` is
either **pinned** in the checked-in manifest
(``src/repro/analysis/hash_schema.json``) at the current
``SPEC_FORMAT_VERSION``, or listed there as **explicitly excluded**
from hashing (with the exclusion implemented in code, e.g.
``specs._described_config`` popping ``backend``). Any drift — a new
field, a removed field, a version/manifest mismatch — is a REP003
finding until the author either bumps ``SPEC_FORMAT_VERSION`` and
regenerates the manifest (``repro lint --update-schema``), or declares
the field excluded.

Reachability is computed statically: starting from ``SweepCell`` and
``ProgramSpec`` in ``src/repro/sim/specs.py``, any project dataclass
named in a reachable dataclass's field annotations is itself reachable.
"""

from __future__ import annotations

import ast
import json
from typing import Iterable

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    dataclass_fields,
    is_dataclass_def,
)

SPECS_REL = "src/repro/sim/specs.py"
MANIFEST_REL = "src/repro/analysis/hash_schema.json"
VERSION_NAME = "SPEC_FORMAT_VERSION"
ROOTS = ("SweepCell", "ProgramSpec")
UPDATE_HINT = "python -m repro lint --update-schema"


def _spec_format_version(project: Project) -> tuple[int | None, int]:
    """(value, line) of the SPEC_FORMAT_VERSION constant in specs.py."""
    sf = project.file(SPECS_REL)
    if sf is None or sf.tree is None:
        return None, 1
    for node in sf.tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id == VERSION_NAME:
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(value.value, int):
                    return value.value, node.lineno
    return None, 1


def reachable_dataclasses(project: Project) -> dict[str, tuple[str, int, list[str]]]:
    """name -> (file rel, line, field names) for every hash-reachable
    dataclass, walking field annotations from the ROOTS."""
    index: dict[str, tuple] = {}
    for sf in project.iter_files("src/repro/"):
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef) and is_dataclass_def(node):
                index.setdefault(node.name, (sf, node))
    reachable: dict[str, tuple[str, int, list[str]]] = {}
    queue = [name for name in ROOTS if name in index]
    while queue:
        name = queue.pop()
        if name in reachable:
            continue
        sf, node = index[name]
        fields = dataclass_fields(node)
        reachable[name] = (sf.rel, node.lineno, [f[0] for f in fields])
        for _fname, annotation, _line in fields:
            for sub in ast.walk(annotation):
                ref = None
                if isinstance(sub, ast.Name):
                    ref = sub.id
                elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
                    ref = sub.value  # string annotation
                if ref in index and ref not in reachable:
                    queue.append(ref)
    return reachable


def load_manifest(project: Project) -> dict | None:
    path = project.root / MANIFEST_REL
    if not path.exists():
        return None
    return json.loads(path.read_text(encoding="utf-8"))


def generate_manifest(project: Project) -> dict:
    """The manifest matching the current tree.

    Exclusion lists are *declarations*, not derivable facts — an existing
    manifest's exclusions are preserved; first-time generation starts
    with none and authors add exclusions by hand (each one must have a
    matching implementation in the describe()/hash path).
    """
    previous = load_manifest(project) or {"classes": {}}
    version, _line = _spec_format_version(project)
    classes = {}
    for name, (rel, _lineno, fields) in sorted(reachable_dataclasses(project).items()):
        excluded = previous.get("classes", {}).get(name, {}).get("excluded", [])
        classes[name] = {
            "module": rel,
            "hashed": [f for f in fields if f not in excluded],
            "excluded": [f for f in excluded if f in fields],
        }
    return {
        "spec_format_version": version,
        "comment": (
            "Pinned hash schema for REP003. Every field of every dataclass "
            "reachable from SweepCell.content_hash()/ProgramSpec.build_key() "
            "must be listed: in 'hashed' (part of the content hash) or in "
            "'excluded' (deliberately outside it, with the exclusion "
            "implemented in the describe()/hash path). Regenerate with "
            f"`{UPDATE_HINT}` after bumping {VERSION_NAME}."
        ),
        "classes": classes,
    }


class HashSchemaRule(Rule):
    code = "REP003"
    name = "hash-schema"
    rationale = (
        "spec-schema changes silently invalidated result caches in PRs 3-4; "
        "every hash-reachable field must be pinned or explicitly excluded, "
        "and schema changes must bump SPEC_FORMAT_VERSION"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        specs = project.file(SPECS_REL)
        if specs is None or specs.tree is None:
            return  # not a repro tree (fixture projects without a spec layer)
        manifest = load_manifest(project)
        if manifest is None:
            yield self.finding(
                specs, 1,
                f"no pinned hash-schema manifest at {MANIFEST_REL}; generate "
                f"one with `{UPDATE_HINT}`",
            )
            return
        version, version_line = _spec_format_version(project)
        pinned_version = manifest.get("spec_format_version")
        if version is None:
            yield self.finding(
                specs, 1,
                f"{VERSION_NAME} constant not found in {SPECS_REL}; the "
                "hash-schema guard cannot anchor cache compatibility",
            )
            return
        if version != pinned_version:
            yield self.finding(
                specs, version_line,
                f"{VERSION_NAME} is {version} but the pinned manifest was "
                f"generated at version {pinned_version}; regenerate it with "
                f"`{UPDATE_HINT}` (intentional bumps re-key every cache entry)",
            )
            # Field-level drift is expected mid-bump; stop here.
            return
        current = reachable_dataclasses(project)
        pinned_classes = manifest.get("classes", {})
        for name, (rel, lineno, fields) in sorted(current.items()):
            sf = project.file(rel)
            if name not in pinned_classes:
                yield self.finding(
                    sf, lineno,
                    f"dataclass `{name}` is newly reachable from the content-"
                    f"hash payload but absent from the pinned manifest; bump "
                    f"{VERSION_NAME} and regenerate (`{UPDATE_HINT}`)",
                )
                continue
            entry = pinned_classes[name]
            hashed = set(entry.get("hashed", []))
            excluded = set(entry.get("excluded", []))
            known = hashed | excluded
            for fname in fields:
                if fname not in known:
                    line = self._field_line(project, rel, name, fname, lineno)
                    yield self.finding(
                        sf, line,
                        f"field `{name}.{fname}` is not pinned in the hash-"
                        f"schema manifest — adding it re-keys every cache "
                        f"entry silently; bump {VERSION_NAME} and regenerate "
                        f"(`{UPDATE_HINT}`), or implement + declare an "
                        "explicit hash exclusion",
                    )
            for fname in sorted(known - set(fields)):
                kind = "excluded" if fname in excluded else "pinned"
                yield self.finding(
                    sf, lineno,
                    f"manifest lists {kind} field `{name}.{fname}` but the "
                    f"dataclass no longer declares it; bump {VERSION_NAME} "
                    f"and regenerate (`{UPDATE_HINT}`)",
                )
        for name in sorted(set(pinned_classes) - set(current)):
            yield self.finding(
                specs, 1,
                f"manifest pins dataclass `{name}` which is no longer "
                f"reachable from the content-hash payload; regenerate the "
                f"manifest (`{UPDATE_HINT}`)",
            )

    @staticmethod
    def _field_line(
        project: Project, rel: str, class_name: str, field_name: str, default: int
    ) -> int:
        sf = project.file(rel)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ClassDef) and node.name == class_name:
                for fname, _ann, line in dataclass_fields(node):
                    if fname == field_name:
                        return line
        return default
