"""REP001 — determinism: no ambient entropy in result-producing code.

The whole caching story (PR 1's result cache, PR 5's resumable sweeps,
PR 7's cross-client dedup) rests on one contract, stated in
``sim/specs.py``: *every* source of randomness in a cell derives from
the spec itself, never from process identity, wall clock or execution
order. One ``random.random()`` in a workload behaviour and two runs of
the same content hash disagree — the cache then serves whichever ran
first, forever, bit-stably wrong.

What this rule flags, anywhere under ``src/repro``:

* calls to the *module-level* stdlib RNG (``random.random``,
  ``random.randint``, …) and unseeded ``random.Random()`` — seeded
  generator objects (``random.Random(seed)``, ``utils.rng``) are fine;
* the legacy numpy global RNG (``np.random.randint`` etc.) and unseeded
  ``np.random.default_rng()``;
* ambient entropy: ``os.urandom``, ``uuid.uuid1``/``uuid.uuid4``,
  ``secrets.*``.

Additionally, *only* inside ``src/repro/sim`` and
``src/repro/workloads`` (the code that produces and keys results):

* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, …) — the serve layer and the profiling tools
  measure wall time legitimately and are out of scope;
* inside hash-feeding functions (names matching hash/digest/describe/
  canonical/build_key/cell_seed): ``json.dumps`` without
  ``sort_keys=True``, and iteration over a freshly built ``set`` (wrap
  it in ``sorted(...)`` — set order is salted per process).
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    import_aliases,
    resolve_call,
)

SCOPE = "src/repro/"
CLOCK_SCOPES = ("src/repro/sim/", "src/repro/workloads/")

#: Module-level stdlib RNG entry points (the shared hidden-state ones).
RANDOM_MODULE_FNS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "shuffle", "sample", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "randbytes", "seed",
    "vonmisesvariate", "paretovariate", "weibullvariate", "lognormvariate",
})

#: Legacy numpy global-RNG functions (shared ``numpy.random`` state).
NUMPY_GLOBAL_FNS = frozenset({
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "seed", "bytes", "binomial", "poisson",
})

CLOCK_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "thread_time",
})

#: Function names considered to feed content hashes / cache keys.
HASH_FEEDER_RE = re.compile(
    r"hash|digest|describ|canonical|build_key|cell_seed", re.IGNORECASE
)


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


class DeterminismRule(Rule):
    code = "REP001"
    name = "determinism"
    rationale = (
        "content-hash-keyed caching (PRs 1, 5, 7) requires every source of "
        "randomness to derive from the spec; ambient entropy or clock reads "
        "in sim/ or workloads/ make cached results irreproducible"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in project.iter_files(SCOPE):
            if sf.rel.startswith("src/repro/analysis/"):
                continue
            yield from self._check_file(sf)

    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(sf.tree)
        clock_scoped = sf.rel.startswith(CLOCK_SCOPES)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(sf, node, aliases, clock_scoped)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if HASH_FEEDER_RE.search(node.name):
                    yield from self._check_hash_feeder(sf, node, aliases)

    def _check_call(
        self,
        sf: SourceFile,
        node: ast.Call,
        aliases: dict[str, str],
        clock_scoped: bool,
    ) -> Iterator[Finding]:
        target = resolve_call(node, aliases)
        if target is None:
            return
        head, _, tail = target.partition(".")
        if head == "random" and tail in RANDOM_MODULE_FNS:
            yield self.finding(
                sf, node.lineno,
                f"module-level `random.{tail}` draws from shared unseeded "
                "state; derive a seeded generator from the spec "
                "(random.Random(seed) or repro.utils.rng)",
            )
        elif target == "random.Random" and not node.args and not node.keywords:
            yield self.finding(
                sf, node.lineno,
                "`random.Random()` without a seed falls back to OS entropy; "
                "pass a spec-derived seed",
            )
        elif head == "numpy" and tail.startswith("random."):
            fn = tail.rsplit(".", 1)[-1]
            if fn in NUMPY_GLOBAL_FNS:
                yield self.finding(
                    sf, node.lineno,
                    f"legacy numpy global RNG `numpy.{tail}` has shared "
                    "process-wide state; use numpy.random.default_rng(seed)",
                )
            elif fn == "default_rng" and not node.args and not node.keywords:
                yield self.finding(
                    sf, node.lineno,
                    "`default_rng()` without a seed draws OS entropy; pass a "
                    "spec-derived seed",
                )
        elif target == "os.urandom" or head == "secrets":
            yield self.finding(
                sf, node.lineno,
                f"`{target}` is pure OS entropy — results built from it can "
                "never be reproduced from a spec",
            )
        elif target in ("uuid.uuid1", "uuid.uuid4"):
            yield self.finding(
                sf, node.lineno,
                f"`{target}` embeds host/clock/OS entropy; derive identifiers "
                "from content hashes instead",
            )
        elif clock_scoped:
            if head == "time" and tail in CLOCK_FNS:
                yield self.finding(
                    sf, node.lineno,
                    f"wall-clock read `time.{tail}` inside {sf.rel.split('/')[2]}/ "
                    "— simulated results must not depend on host time (timing "
                    "harnesses live in tools/ and benchmarks/)",
                )
            elif target is not None and (
                target.endswith("datetime.now")
                or target.endswith("datetime.utcnow")
                or target.endswith("date.today")
            ):
                yield self.finding(
                    sf, node.lineno,
                    f"wall-clock read `{target.rsplit('.', 2)[-2]}.{target.rsplit('.', 1)[-1]}` "
                    "inside result-producing code",
                )

    def _check_hash_feeder(
        self,
        sf: SourceFile,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        aliases: dict[str, str],
    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                target = resolve_call(node, aliases)
                if target == "json.dumps":
                    sorts = any(kw.arg == "sort_keys" for kw in node.keywords)
                    if not sorts:
                        yield self.finding(
                            sf, node.lineno,
                            f"json.dumps without sort_keys=True inside hash-"
                            f"feeding `{fn.name}` — dict insertion order would "
                            "leak into the digest",
                        )
                elif (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("list", "tuple", "min", "max")
                    and node.args
                    and _is_set_expr(node.args[0])
                ):
                    if node.func.id in ("min", "max"):
                        continue  # order-insensitive reductions are fine
                    yield self.finding(
                        sf, node.lineno,
                        f"materialising a set in hash-feeding `{fn.name}` — "
                        "set iteration order is salted per process; wrap in "
                        "sorted(...)",
                    )
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if _is_set_expr(iter_expr):
                    yield self.finding(
                        sf, iter_expr.lineno,
                        f"iterating a set in hash-feeding `{fn.name}` — set "
                        "iteration order is salted per process; wrap in "
                        "sorted(...)",
                    )
