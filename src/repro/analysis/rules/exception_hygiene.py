"""REP006 — exception hygiene: no silent broad catches.

PR 10's fault-injection sweep found the repo's worst failure modes were
not crashes but *silences*: a ``try: ... except Exception: pass`` around
trace-handle cleanup that would have eaten a corrupted-stream
``TraceFormatError`` the same way it ate a benign double-close, and
daemon catch-alls that turned engine bugs into bare job failures with
no record of what happened. A broad handler is sometimes right — a
daemon thread must not die of an unexpected exception, ``__del__`` must
never raise — but it must then *account* for what it swallowed.

The rule: every ``except Exception``, ``except BaseException`` and bare
``except:`` handler under ``src/repro`` must either

* **re-raise** — contain a ``raise`` statement (the wrap-and-reraise
  idiom of :func:`repro.sim.execution._wrap_cell_error` and the
  cleanup-then-reraise pattern in the atomic writers), or
* **degrade through the faults layer** — call
  :func:`repro.faults.handling.degrade`, which re-raises
  ``KeyboardInterrupt``/``SystemExit``, records the exception in the
  process-wide degradation ring, and logs a warning. Swallowing is then
  a *decision* with a paper trail, not an accident.

``contextlib.suppress(Exception)`` / ``suppress(BaseException)`` is the
same smell without the ``except`` keyword and is flagged identically
(suppressing a *narrow* exception type is fine and common).

``KeyboardInterrupt``/``SystemExit`` hygiene falls out for free: an
``except Exception`` never catches them, a compliant ``except
BaseException`` either re-raises or routes through ``degrade`` (whose
default ``reraise`` tuple is exactly those two), so no handler in scope
can swallow an interrupt.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    import_aliases,
    resolve_call,
)

SCOPE = "src/repro/"

#: Handler types that catch (nearly) everything.
BROAD_NAMES = frozenset({"Exception", "BaseException"})

#: Import-resolved callables that turn a swallow into a logged,
#: interrupt-safe degradation (see :mod:`repro.faults.handling`).
DEGRADE_TARGETS = frozenset({
    "repro.faults.handling.degrade",
    "repro.faults.degrade",
})


def _broad_caught_name(handler: ast.ExceptHandler) -> str | None:
    """``"Exception"``/``"BaseException"`` if the handler is broad,
    ``"(bare)"`` for ``except:``, else None."""
    if handler.type is None:
        return "(bare)"
    candidates: list[ast.expr] = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for node in candidates:
        if isinstance(node, ast.Name) and node.id in BROAD_NAMES:
            return node.id
    return None


def _own_scope_nodes(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every node under ``nodes``, excluding nested function/class scopes
    (a ``raise`` inside a callback defined in the handler proves nothing
    about the handler itself)."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _handler_accounts(handler: ast.ExceptHandler, aliases: dict[str, str]) -> bool:
    """Does the handler re-raise or degrade through the faults layer?"""
    for node in _own_scope_nodes(handler.body):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            if resolve_call(node, aliases) in DEGRADE_TARGETS:
                return True
    return False


class ExceptionHygieneRule(Rule):
    code = "REP006"
    name = "exception-hygiene"
    rationale = (
        "a broad except that neither re-raises nor degrades through "
        "repro.faults.handling.degrade turns corruption, injected faults "
        "and real bugs alike into silence — the chaos suite can only "
        "prove recovery paths that leave evidence"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in project.iter_files(SCOPE):
            yield from self._check_file(sf)

    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(sf.tree)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ExceptHandler):
                caught = _broad_caught_name(node)
                if caught is None:
                    continue
                if _handler_accounts(node, aliases):
                    continue
                what = (
                    "bare `except:`" if caught == "(bare)"
                    else f"`except {caught}`"
                )
                yield self.finding(
                    sf, node.lineno,
                    f"{what} neither re-raises nor records the swallowed "
                    "exception; re-raise (optionally wrapped), narrow the "
                    "type, or route it through "
                    "repro.faults.handling.degrade()",
                )
            elif isinstance(node, ast.Call):
                if resolve_call(node, aliases) != "contextlib.suppress":
                    continue
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id in BROAD_NAMES:
                        yield self.finding(
                            sf, node.lineno,
                            f"contextlib.suppress({arg.id}) silently drops "
                            "every failure with no record; suppress a "
                            "narrow type or handle-and-degrade instead",
                        )
                        break
