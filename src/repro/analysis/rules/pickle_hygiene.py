"""REP002 — pickle hygiene: memoized caches must not cross pickle
boundaries.

PR 8 documented the failure mode this rule fossilises: the batched
kernel memoizes multi-megabyte derived state on live objects —
architectural trace columns (``_trace_cache``), fused-replay precompute
contexts (``_replay_ctx``) and numpy constant tables (``*_np``). Before
``Program.__getstate__``/``DirectionPredictor.__getstate__`` dropped
them, every pool chunk and cache entry shipped those caches through
pickle: chunk submission cost ballooned, and whether a pickle was
megabytes or kilobytes depended on *which code path touched the object
first* — a Heisenberg serialization format.

The invariant: any class that assigns a memoized-cache attribute
(``_trace_cache``, ``_replay_ctx``, or anything ending in ``_np``) to
its instances must define ``__getstate__`` — on itself or an ancestor
resolvable inside the project — so the cache is provably dropped at the
pickle boundary. Both plain ``self.x = ...`` assignments and the frozen-
dataclass spelling ``object.__setattr__(self, "x", ...)`` are tracked.

Dynamic ``setattr(obj, name_variable, ...)`` memoization (as
``sim.batched._np_table`` does) is invisible to this rule by design; the
``*_np`` convention plus ``DirectionPredictor.__getstate__``'s suffix
filter is the contract that covers it.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import Finding, Project, Rule, SourceFile

SCOPE = "src/repro/"

#: Exact attribute names that are per-process memoized caches.
CACHE_ATTRS = frozenset({"_trace_cache", "_replay_ctx"})

#: Attribute-name suffix for memoized numpy constant tables.
CACHE_SUFFIX = "_np"


def _is_cache_attr(name: str) -> bool:
    return name in CACHE_ATTRS or name.endswith(CACHE_SUFFIX)


def _self_name(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> str | None:
    args = fn.args.posonlyargs + fn.args.args
    return args[0].arg if args else None


def _cache_assignments(node: ast.ClassDef) -> Iterator[tuple[str, int]]:
    """(attr, line) for every cache-attr assignment to ``self``."""
    for method in node.body:
        if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        self_name = _self_name(method)
        if self_name is None:
            continue
        for sub in ast.walk(method):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == self_name
                        and _is_cache_attr(target.attr)
                    ):
                        yield target.attr, sub.lineno
            elif isinstance(sub, ast.Call):
                # object.__setattr__(self, "_x_np", ...) — the frozen-
                # dataclass memoization spelling.
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "__setattr__"
                    and len(sub.args) >= 2
                    and isinstance(sub.args[0], ast.Name)
                    and sub.args[0].id == self_name
                    and isinstance(sub.args[1], ast.Constant)
                    and isinstance(sub.args[1].value, str)
                    and _is_cache_attr(sub.args[1].value)
                ):
                    yield sub.args[1].value, sub.lineno


class PickleHygieneRule(Rule):
    code = "REP002"
    name = "pickle-hygiene"
    rationale = (
        "memoized caches (_trace_cache, _replay_ctx, *_np) leaked through "
        "pickles until PR 8's __getstate__ sweep, bloating pool chunks and "
        "making pickle size depend on execution history"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in project.iter_files(SCOPE):
            if sf.rel.startswith("src/repro/analysis/"):
                continue
            yield from self._check_file(project, sf)

    def _check_file(self, project: Project, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            assigned = list(_cache_assignments(node))
            if not assigned:
                continue
            if project.class_defines(node.name, "__getstate__"):
                continue
            attrs = sorted({attr for attr, _line in assigned})
            first_line = min(line for _attr, line in assigned)
            yield self.finding(
                sf, node.lineno,
                f"class `{node.name}` assigns memoized cache attribute(s) "
                f"{', '.join(attrs)} (first at line {first_line}) but defines "
                "no __getstate__ dropping them — the cache would ship through "
                "every pickle (pool chunks, result-cache entries)",
            )
