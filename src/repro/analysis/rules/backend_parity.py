"""REP004 — backend parity: every predictor kind is batched or declared.

PR 6 introduced the batched structure-of-arrays kernel with a silent
scalar fallback for system shapes it does not specialize. Silent is the
operative hazard: register a new predictor kind and forget the batched
arm, and every sweep quietly runs it 3-4x slower than its peers —
nothing fails, dashboards just drift. Worse, a kind that *is* dispatched
but never exercised by the differential matrix
(``tests/sim/test_differential_kernel.py``) has no bit-identity proof
backing the "results are identical, so backend is excluded from content
hashes" contract that the whole cache design leans on.

The contract, per registered predictor kind (``register_predictor``
call in ``src/repro/predictors/``):

1. the kind's module contributes a class to ``sim/batched.py``'s
   dispatch tables (``_PROPHET_KINDS`` / ``_CRITIC_KINDS``), **or** the
   kind is named in ``sim/batched.py``'s ``SCALAR_FALLBACK_KINDS``
   allowlist — an explicit, reviewable statement that the scalar
   fallback is intentional;
2. the kind's string appears in the differential matrix test file, so
   scalar/batched agreement (trivial for fallback kinds, load-bearing
   for dispatched ones) is exercised on every CI run;
3. the allowlist itself stays honest: entries must name registered
   kinds, and an entry whose module later gains a batched arm is
   reported as stale.

Module-granularity caveat: support is attributed via the imports in
``batched.py`` (dispatch class -> defining module -> kinds registered by
that module). A module registering several kinds of which only some are
batched would need the unbatched ones rechecked by hand — today every
multi-kind module (``static.py``) is entirely fallback.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.framework import Finding, Project, Rule

BATCHED_REL = "src/repro/sim/batched.py"
PREDICTORS_PREFIX = "src/repro/predictors/"
MATRIX_REL = "tests/sim/test_differential_kernel.py"
DISPATCH_TABLES = ("_PROPHET_KINDS", "_CRITIC_KINDS")
ALLOWLIST_NAME = "SCALAR_FALLBACK_KINDS"


def _registrations(project: Project) -> list[tuple[str, object, int]]:
    """(kind, source file, line) for every ``register_predictor`` call."""
    out = []
    for sf in project.iter_files(PREDICTORS_PREFIX):
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "register_predictor"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                out.append((node.args[0].value, sf, node.lineno))
    return out


def _string_elements(node: ast.expr) -> list[str] | None:
    """String members of a set/frozenset/tuple/list literal, else None."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("frozenset", "set", "tuple") and len(node.args) == 1:
            return _string_elements(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values = []
        for elt in node.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            values.append(elt.value)
        return values
    return None


class BackendParityRule(Rule):
    code = "REP004"
    name = "backend-parity"
    rationale = (
        "PR 6's batched kernel falls back to the scalar loop silently; an "
        "undeclared unbatched kind runs 3-4x slow with no failure, and an "
        "unexercised kind has no bit-identity proof behind the shared-cache "
        "contract"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        registrations = _registrations(project)
        if not registrations:
            return  # no predictor layer in this tree (rule fixtures)
        batched = project.file(BATCHED_REL)
        if batched is None or batched.tree is None:
            yield Finding(
                rule=self.code, path=BATCHED_REL, line=1,
                message="batched backend module missing but predictor kinds "
                        "are registered; the dispatch/fallback contract "
                        "cannot be checked",
            )
            return

        # Dispatch class names and the class -> module import map.
        dispatch_classes: set[str] = set()
        allowlist: list[str] | None = None
        allowlist_line = 1
        imports: dict[str, str] = {}
        for node in ast.walk(batched.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                module_rel = "src/" + node.module.replace(".", "/") + ".py"
                for alias in node.names:
                    imports[alias.asname or alias.name] = module_rel
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if not isinstance(target, ast.Name):
                        continue
                    if target.id in DISPATCH_TABLES and isinstance(node.value, ast.Dict):
                        for key in node.value.keys:
                            if isinstance(key, ast.Name):
                                dispatch_classes.add(key.id)
                    elif target.id == ALLOWLIST_NAME:
                        allowlist = _string_elements(node.value)
                        allowlist_line = node.lineno

        if allowlist is None:
            yield self.finding(
                batched, 1,
                f"no parseable `{ALLOWLIST_NAME}` set literal in {BATCHED_REL}; "
                "kinds that intentionally run on the scalar fallback must be "
                "declared there explicitly",
            )
            allowlist = []

        supported_modules = {
            imports[cls] for cls in dispatch_classes if cls in imports
        }
        registered = {kind for kind, _sf, _line in registrations}

        matrix = project.file(MATRIX_REL)
        matrix_text = matrix.text if matrix is not None else None

        for kind, sf, line in sorted(registrations, key=lambda r: (r[1].rel, r[2])):
            module_batched = sf.rel in supported_modules
            if not module_batched and kind not in allowlist:
                yield self.finding(
                    sf, line,
                    f"predictor kind `{kind}` is neither dispatched by the "
                    f"batched backend ({BATCHED_REL}) nor declared in "
                    f"{ALLOWLIST_NAME} — it would fall back to the scalar "
                    "loop silently; add a batched arm or declare the "
                    "fallback",
                )
            if matrix_text is not None and f'"{kind}"' not in matrix_text:
                yield self.finding(
                    sf, line,
                    f"predictor kind `{kind}` is not exercised by the "
                    f"differential backend matrix ({MATRIX_REL}); "
                    "scalar/batched bit-identity for it is unproven",
                )

        for kind in allowlist:
            if kind not in registered:
                yield self.finding(
                    batched, allowlist_line,
                    f"{ALLOWLIST_NAME} names `{kind}`, which is not a "
                    "registered predictor kind",
                )
            else:
                reg_file = next(sf for k, sf, _l in registrations if k == kind)
                if reg_file.rel in supported_modules:
                    yield self.finding(
                        batched, allowlist_line,
                        f"{ALLOWLIST_NAME} entry `{kind}` is stale: its "
                        "module now contributes a batched dispatch class; "
                        "drop the entry",
                    )
