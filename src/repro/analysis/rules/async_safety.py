"""REP005 — async safety: no blocking calls on the daemon's event loop.

PR 7 put every client of the sweep service behind one asyncio event
loop. A single blocking call inside a coroutine — ``time.sleep``, a
synchronous ``open``, a :class:`~repro.sim.cache.ResultCache` disk or
HTTP-peer operation — stalls *all* of them at once: health checks time
out, event streams stutter, and a tiered cache read against a dead peer
can freeze the daemon for the full socket timeout. The same PR's
history also shows how subtle loop-thread bugs get (the runner-pause
race was only caught by an e2e test); this rule makes the grossest
class — synchronous I/O on the loop — a commit-time error instead.

What counts as blocking (statically, by name):

* ``time.sleep``;
* the ``open`` builtin and ``Path``-style ``read_text``/``write_bytes``
  etc.;
* cache-backend byte ops (``get_bytes``/``put_bytes``) and
  ``get``/``put``/``load``/``store`` calls on receivers whose name
  contains ``cache``, ``backend`` or ``store`` — the
  :class:`ResultCache`/:class:`CacheBackend` surface, which may hide a
  disk write or a blocking HTTP round trip to a peer daemon;
* ``socket``/``urllib``/``subprocess`` synchronous entry points.

Where it looks: the body of every ``async def`` under ``src/repro``,
*nearest scope only* — code inside a nested ``def`` or ``lambda`` is
excluded, because that is exactly how work is handed to
``loop.run_in_executor``/``asyncio.to_thread``. One level of indirection
is also caught: an ``async def`` that calls a same-module synchronous
helper whose own body contains blocking calls is flagged at the call
site (the PR 7 daemon's original ``/cache`` handler was exactly this
shape).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.analysis.framework import (
    Finding,
    Project,
    Rule,
    SourceFile,
    import_aliases,
    resolve_call,
)

SCOPE = "src/repro/"

BLOCKING_DOTTED = frozenset({
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "urllib.request.urlopen",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "shutil.copy",
    "shutil.copy2",
    "shutil.copytree",
    "shutil.rmtree",
    "os.replace",
    "os.rename",
})

#: Unambiguously-blocking method names, any receiver.
BLOCKING_METHODS = frozenset({
    "get_bytes", "put_bytes",
    "read_bytes", "write_bytes", "read_text", "write_text",
})

#: Blocking only on cache-flavoured receivers (a ResultCache ``get`` may
#: be a disk read or an HTTP round trip to a peer daemon).
CACHE_METHODS = frozenset({"get", "put", "load", "store"})
CACHE_RECEIVER_MARKERS = ("cache", "backend", "store")


def _receiver_name(func: ast.Attribute) -> str:
    """The textual name of a method call's receiver (`self._cache` ->
    `_cache`, `backend` -> `backend`)."""
    value = func.value
    if isinstance(value, ast.Attribute):
        return value.attr
    if isinstance(value, ast.Name):
        return value.id
    return ""


def _blocking_reason(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Why this call is considered blocking, or None."""
    if isinstance(node.func, ast.Name) and node.func.id == "open":
        return "synchronous builtin open()"
    target = resolve_call(node, aliases)
    if target in BLOCKING_DOTTED:
        return f"blocking call `{target}`"
    if isinstance(node.func, ast.Attribute):
        method = node.func.attr
        if method in BLOCKING_METHODS:
            return f"blocking I/O method `.{method}()`"
        if method in CACHE_METHODS:
            receiver = _receiver_name(node.func).lower()
            if any(marker in receiver for marker in CACHE_RECEIVER_MARKERS):
                return (
                    f"cache operation `{_receiver_name(node.func)}.{method}()` "
                    "(disk or HTTP-peer I/O)"
                )
    return None


def _own_scope_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Call nodes in ``fn``'s body, excluding nested function/lambda
    scopes (executor thunks run off-loop by construction)."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncSafetyRule(Rule):
    code = "REP005"
    name = "async-safety"
    rationale = (
        "one synchronous disk/socket/cache call inside a PR 7 daemon "
        "coroutine stalls every client on the shared event loop; blocking "
        "work belongs in run_in_executor/to_thread"
    )

    def check(self, project: Project) -> Iterable[Finding]:
        for sf in project.iter_files(SCOPE):
            if sf.rel.startswith("src/repro/analysis/"):
                continue
            yield from self._check_file(sf)

    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        aliases = import_aliases(sf.tree)

        # Pass 1: which sync functions/methods in this module contain
        # blocking calls in their own scope?
        blocking_helpers: dict[str, tuple[str, int]] = {}
        async_fns: list[ast.AsyncFunctionDef] = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                async_fns.append(node)
            elif isinstance(node, ast.FunctionDef):
                for call in _own_scope_calls(node):
                    reason = _blocking_reason(call, aliases)
                    if reason is not None:
                        blocking_helpers.setdefault(
                            node.name, (reason, call.lineno)
                        )
                        break

        # Pass 2: judge every coroutine's own scope.
        for fn in async_fns:
            for call in _own_scope_calls(fn):
                reason = _blocking_reason(call, aliases)
                if reason is not None:
                    yield self.finding(
                        sf, call.lineno,
                        f"{reason} inside `async def {fn.name}` blocks the "
                        "event loop for every client; hand it to "
                        "loop.run_in_executor / asyncio.to_thread",
                    )
                    continue
                helper = self._local_callee(call)
                if helper is not None and helper in blocking_helpers:
                    inner_reason, inner_line = blocking_helpers[helper]
                    yield self.finding(
                        sf, call.lineno,
                        f"await-free call to `{helper}` inside `async def "
                        f"{fn.name}` — the helper performs {inner_reason} at "
                        f"line {inner_line}, blocking the event loop; make "
                        "it async or run it in an executor",
                    )

    @staticmethod
    def _local_callee(node: ast.Call) -> str | None:
        """`f(...)` or `self.f(...)` -> "f"; anything else -> None."""
        if isinstance(node.func, ast.Name):
            return node.func.id
        if (
            isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            return node.func.attr
        return None
