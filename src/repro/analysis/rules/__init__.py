"""The repro-lint rule pack, one module per ``REPxxx`` invariant.

Each rule is grounded in a failure class this repo has actually shipped
(see the module docstrings and ``docs/LINTING.md``). Adding a rule:
subclass :class:`repro.analysis.framework.Rule`, give it a fresh
``REPxxx`` code, a name and a rationale, and append an instance here —
:func:`repro.analysis.framework.validate_rule` enforces the metadata at
import time.
"""

from __future__ import annotations

from repro.analysis.framework import Rule, validate_rule
from repro.analysis.rules.async_safety import AsyncSafetyRule
from repro.analysis.rules.backend_parity import BackendParityRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.exception_hygiene import ExceptionHygieneRule
from repro.analysis.rules.hash_schema import HashSchemaRule
from repro.analysis.rules.pickle_hygiene import PickleHygieneRule

ALL_RULES: tuple[Rule, ...] = (
    DeterminismRule(),
    PickleHygieneRule(),
    HashSchemaRule(),
    BackendParityRule(),
    AsyncSafetyRule(),
    ExceptionHygieneRule(),
)

for _rule in ALL_RULES:
    validate_rule(_rule)

RULES_BY_CODE = {rule.code: rule for rule in ALL_RULES}
if len(RULES_BY_CODE) != len(ALL_RULES):
    raise ValueError("duplicate rule codes in ALL_RULES")

__all__ = ["ALL_RULES", "RULES_BY_CODE"]
