"""Figure 7 — prophet/critic hybrids vs conventional predictors.

For each of gshare, 2Bc-gskew and perceptron: the predictor alone at the
full budget vs half-budget prophet + half-budget critic (8 future bits),
with both critic types. Sub-figure (a) is 16KB total, (b) is 32KB total.
The paper reports 15-31% mispredict-rate reductions, largest for gshare
(most aliased) and smallest for the perceptron with a tagged-gshare
critic.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.base import (
    ExperimentResult,
    hybrid_spec,
    run_grid,
    scaled_config,
    single_spec,
)
from repro.utils.statistics import percent_reduction

PROPHETS: tuple[str, ...] = ("gshare", "2bc-gskew", "perceptron")
CRITICS: tuple[str, ...] = ("filtered-perceptron", "tagged-gshare")

DEFAULT_BENCHMARKS: tuple[str, ...] = ("gcc", "specjbb", "flash")

FUTURE_BITS = 8


def run(
    total_kb: int = 16,
    scale: float = 1.0,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    future_bits: int = FUTURE_BITS,
) -> ExperimentResult:
    """Reproduce Figure 7(a) (total_kb=16) or 7(b) (total_kb=32)."""
    if total_kb not in (16, 32):
        raise ValueError("the paper plots 16KB and 32KB totals")
    half = total_kb // 2
    config = scaled_config(scale)
    sub = "a" if total_kb == 16 else "b"
    result = ExperimentResult(
        experiment_id=f"figure7{sub}",
        title=f"{total_kb}KB conventional predictors vs {half}KB+{half}KB hybrids "
        f"({future_bits} future bits)",
        headers=["configuration", "misp/Kuops", "reduction_vs_alone_%"],
    )

    systems = {}
    for prophet_kind in PROPHETS:
        systems[f"{total_kb}KB {prophet_kind}"] = single_spec(prophet_kind, total_kb)
        for critic_kind in CRITICS:
            systems[f"{half}KB {prophet_kind} + {half}KB {critic_kind}"] = hybrid_spec(
                prophet_kind, half, critic_kind, half, future_bits
            )
    sweep = run_grid(systems, benchmarks, config)
    for prophet_kind in PROPHETS:
        alone = sweep.average_misp_per_kuops(f"{total_kb}KB {prophet_kind}")
        result.rows.append([f"{total_kb}KB {prophet_kind}", round(alone, 3), 0.0])
        for critic_kind in CRITICS:
            label = f"{half}KB {prophet_kind} + {half}KB {critic_kind}"
            hybrid = sweep.average_misp_per_kuops(label)
            result.rows.append(
                [label, round(hybrid, 3), round(percent_reduction(alone, hybrid), 1)]
            )
    result.notes = (
        "Paper (16KB): gshare 24.6/30.7%, 2Bc-gskew 25.5/28%, perceptron "
        "15.2/25.4% reductions (f.perceptron / t.gshare critics); "
        "(32KB): 28.1/31.2, 30/29.5, 17.5/26.8."
    )
    return result
