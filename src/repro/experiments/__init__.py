"""Experiment modules — one per table/figure of the paper's evaluation.

Each module exposes a ``run(...)`` returning an
:class:`~repro.experiments.base.ExperimentResult` whose rows/series mirror
what the paper plots. The registry in :mod:`repro.experiments.runner`
maps experiment ids ("figure5", "table4", …) to these functions; the
benchmark harness under ``benchmarks/`` calls them with a laptop-scale
default and honours ``REPRO_SCALE`` for longer runs.
"""

from repro.experiments.base import (
    BASE_BRANCHES,
    BASE_WARMUP,
    ExperimentResult,
    hybrid_system,
    scaled_config,
    single_system,
)
from repro.experiments.runner import EXPERIMENTS, run_experiment

__all__ = [
    "BASE_BRANCHES",
    "BASE_WARMUP",
    "EXPERIMENTS",
    "ExperimentResult",
    "hybrid_system",
    "run_experiment",
    "scaled_config",
    "single_system",
]
