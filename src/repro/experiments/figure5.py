"""Figure 5 — the importance of future bits.

Mispredict rate (misp/Kuops) as the number of future bits varies over
{0, 1, 4, 8, 12}, for six named benchmarks plus their average. Prophet:
8KB perceptron; critic: 8KB tagged gshare (the paper's §7.1 setup).

Paper's findings this experiment checks:

* 0 → 1 future bits is a large drop on average (~15% for this pair) —
  the first future bit is the prophet's own prediction;
* beyond 1 bit the behaviour is benchmark-specific: premiere-like
  benchmarks get most of the gain at 1 bit, msvc7/flash-like peak at a
  mid count, tpcc-like never benefit past 1.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.base import (
    ExperimentResult,
    average_series,
    hybrid_spec,
    run_grid,
    scaled_config,
)
from repro.workloads.suites import FIGURE5_BENCHMARKS

#: The future-bit counts Figure 5 sweeps.
FUTURE_BIT_POINTS: tuple[int, ...] = (0, 1, 4, 8, 12)

PROPHET = ("perceptron", 8)
CRITIC = ("tagged-gshare", 8)


def run(
    scale: float = 1.0,
    benchmarks: Sequence[str] = FIGURE5_BENCHMARKS,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
) -> ExperimentResult:
    """Reproduce Figure 5's series (one per benchmark plus AVG)."""
    config = scaled_config(scale)
    result = ExperimentResult(
        experiment_id="figure5",
        title="misp/Kuops vs number of future bits "
        "(prophet: 8KB perceptron; critic: 8KB tagged gshare)",
        headers=["benchmark"] + [f"fb={fb}" for fb in future_bits],
    )
    systems = {
        f"fb={fb}": hybrid_spec(PROPHET[0], PROPHET[1], CRITIC[0], CRITIC[1], fb)
        for fb in future_bits
    }
    sweep = run_grid(systems, benchmarks, config)
    per_benchmark: list[list[float]] = []
    for name in benchmarks:
        ys = [sweep.get(f"fb={fb}", name).misp_per_kuops for fb in future_bits]
        per_benchmark.append(ys)
        result.series[name] = (list(future_bits), ys)
        result.rows.append([name] + [round(y, 3) for y in ys])
    avg = average_series(per_benchmark)
    result.series["AVG"] = (list(future_bits), avg)
    result.rows.append(["AVG"] + [round(y, 3) for y in avg])
    result.notes = (
        "Paper: AVG drops ~15% from 0 to 1 future bit; per-benchmark "
        "optima vary (premiere at 1, flash at 4, msvc7 at 8, tpcc never past 1)."
    )
    return result
