"""Experiment registry.

Maps experiment ids to their ``run`` functions so the benchmark harness,
the examples and ad-hoc scripts share one entry point:

>>> from repro.experiments import run_experiment
>>> result = run_experiment("figure5", scale=0.5)
>>> print(result.render())

Pass ``engine=`` (a :class:`~repro.sim.execution.SweepEngine`) to run
the experiment's sweep grids in parallel and/or against a result cache;
the engine is installed as the process default for the duration of the
call, so every grid inside the experiment picks it up.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.execution import SweepEngine, use_engine

from repro.experiments import (
    ablations,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    headline,
    table3,
    table4,
)
from repro.experiments.base import ExperimentResult

#: id -> run callable (all accept at least ``scale``).
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table3": table3.run,
    "figure5": figure5.run,
    "figure6a": lambda scale=1.0, **kw: figure6.run("a", scale=scale, **kw),
    "figure6b": lambda scale=1.0, **kw: figure6.run("b", scale=scale, **kw),
    "figure6c": lambda scale=1.0, **kw: figure6.run("c", scale=scale, **kw),
    "figure7a": lambda scale=1.0, **kw: figure7.run(16, scale=scale, **kw),
    "figure7b": lambda scale=1.0, **kw: figure7.run(32, scale=scale, **kw),
    "figure8": figure8.run,
    "table4": table4.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "headline": headline.run,
    "ablation-oracle": ablations.run_oracle_vs_wrongpath,
    "ablation-filtering": ablations.run_filtering,
    "ablation-insert-policy": ablations.run_insert_policy,
    "ablation-tage": ablations.run_vs_tage,
}


def run_experiment(
    experiment_id: str,
    scale: float = 1.0,
    engine: SweepEngine | None = None,
    **kwargs,
) -> ExperimentResult:
    """Run one experiment by id; see :data:`EXPERIMENTS` for the catalog.

    ``engine`` (optional) routes the experiment's sweep grids through a
    specific :class:`~repro.sim.execution.SweepEngine` — e.g. a process
    pool with an on-disk cache — instead of the serial default.
    """
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    with use_engine(engine):
        return EXPERIMENTS[experiment_id](scale=scale, **kwargs)
