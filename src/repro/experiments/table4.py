"""Table 4 — percentage of prophet predictions filtered by the critic.

For a 4KB perceptron prophet and tagged-gshare critics of 2/8/32KB with
{1, 4, 12} future bits: the share of branches whose critique was implicit
(filter miss), split by whether the prophet (hence the final prediction)
was correct. The paper's rows: ``% correct none``, ``% incorrect none``
and their total; ~65-78% of predictions are filtered, the total *rises*
with future bits (1 critique per 3 branches at 1 fb → 1 per 4 at 12 fb)
and falls slightly with filter size.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.critiques import CritiqueKind
from repro.experiments.base import (
    ExperimentResult,
    hybrid_spec,
    run_grid,
    scaled_config,
)

PROPHET = ("perceptron", 4)
CRITIC_KBS: tuple[int, ...] = (2, 8, 32)
FUTURE_BIT_POINTS: tuple[int, ...] = (1, 4, 12)
DEFAULT_BENCHMARK = "gcc"


def run(
    scale: float = 1.0,
    critic_kbs: Sequence[int] = CRITIC_KBS,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
    bench_name: str = DEFAULT_BENCHMARK,
) -> ExperimentResult:
    """Reproduce Table 4's filter-share grid."""
    config = scaled_config(scale)
    result = ExperimentResult(
        experiment_id="table4",
        title="% of prophet predictions filtered by the critic "
        "(prophet: 4KB perceptron; critic: tagged gshare)",
        headers=[
            "critic_kb",
            "future_bits",
            "pct_correct_none",
            "pct_incorrect_none",
            "pct_none_total",
        ],
    )
    systems = {
        f"c{critic_kb}/fb{fb}": hybrid_spec(
            PROPHET[0], PROPHET[1], "tagged-gshare", critic_kb, fb
        )
        for critic_kb in critic_kbs
        for fb in future_bits
    }
    sweep = run_grid(systems, [bench_name], config)
    for critic_kb in critic_kbs:
        for fb in future_bits:
            census = sweep.get(f"c{critic_kb}/fb{fb}", bench_name).census
            correct_none = 100.0 * census.fraction(CritiqueKind.CORRECT_NONE)
            incorrect_none = 100.0 * census.fraction(CritiqueKind.INCORRECT_NONE)
            result.rows.append(
                [
                    critic_kb,
                    fb,
                    round(correct_none, 1),
                    round(incorrect_none, 1),
                    round(correct_none + incorrect_none, 1),
                ]
            )
    result.notes = (
        "Paper: totals 65.7-77.7%; more future bits raise the filtered "
        "share (better mispredict-context identification); larger filters "
        "lower it slightly (more tag hits)."
    )
    return result
