"""Figure 10 — uPC per benchmark suite.

The 2Bc-gskew + tagged gshare configuration of Figure 9, broken out by
the seven Table-1 suites. The paper's speedups at 12 future bits range
from +1.7% (FP00, already predictable) to +10.7% (INT00).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.base import (
    BASE_BRANCHES,
    BASE_WARMUP,
    ExperimentResult,
    hybrid_spec,
    run_timed_grid,
    single_spec,
)
from repro.utils.statistics import speedup_percent
from repro.workloads.suites import SUITES

FUTURE_BIT_POINTS: tuple[int, ...] = (4, 8, 12)

#: One representative member per suite keeps the bench target tractable;
#: pass members_per_suite=None to run every member.
DEFAULT_MEMBERS_PER_SUITE = 1


def run(
    scale: float = 1.0,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
    suites: Sequence[str] | None = None,
    members_per_suite: int | None = DEFAULT_MEMBERS_PER_SUITE,
) -> ExperimentResult:
    """Reproduce Figure 10's per-suite uPC bars."""
    n_branches = max(2_000, int(BASE_BRANCHES * scale))
    warmup = max(500, int(BASE_WARMUP * scale))
    suite_names = list(suites) if suites is not None else list(SUITES)
    result = ExperimentResult(
        experiment_id="figure10",
        title="uPC per suite: 16KB 2Bc-gskew alone vs 8KB+8KB "
        "2Bc-gskew + tagged gshare",
        headers=["suite", "configuration", "uPC", "speedup_%"],
    )

    def members_of(suite: str) -> Sequence[str]:
        members = SUITES[suite]
        if members_per_suite is not None:
            members = members[:members_per_suite]
        return members

    systems = {"alone": single_spec("2bc-gskew", 16)}
    for fb in future_bits:
        systems[f"fb{fb}"] = hybrid_spec("2bc-gskew", 8, "tagged-gshare", 8, fb)
    all_members: list[str] = []
    for suite in suite_names:
        for name in members_of(suite):
            if name not in all_members:
                all_members.append(name)
    timed = run_timed_grid(systems, all_members, n_branches, warmup)

    def upc_for(suite: str, label: str) -> float:
        members = members_of(suite)
        return sum(timed[(label, name)].upc for name in members) / len(members)

    for suite in suite_names:
        alone = upc_for(suite, "alone")
        result.rows.append([suite, "16KB alone", round(alone, 3), 0.0])
        ys = [alone]
        for fb in future_bits:
            upc = upc_for(suite, f"fb{fb}")
            ys.append(upc)
            result.rows.append(
                [suite, f"8+8 hybrid ({fb} fb)", round(upc, 3), round(speedup_percent(alone, upc), 1)]
            )
        result.series[suite] = (["alone"] + list(future_bits), ys)
    result.notes = (
        "Paper at 12 future bits: FP00 +1.7%, WEB +6%, INT00 +10.7%; the "
        "hybrid never loses to the 16KB prophet on any suite."
    )
    return result
