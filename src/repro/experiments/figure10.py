"""Figure 10 — uPC per benchmark suite.

The 2Bc-gskew + tagged gshare configuration of Figure 9, broken out by
the seven Table-1 suites. The paper's speedups at 12 future bits range
from +1.7% (FP00, already predictable) to +10.7% (INT00).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.hybrid import ProphetCriticSystem, SinglePredictorSystem
from repro.experiments.base import BASE_BRANCHES, BASE_WARMUP, ExperimentResult
from repro.pipeline.machine import TimedMachine
from repro.predictors.budget import make_critic, make_prophet
from repro.utils.statistics import speedup_percent
from repro.workloads.suites import SUITES, benchmark

FUTURE_BIT_POINTS: tuple[int, ...] = (4, 8, 12)

#: One representative member per suite keeps the bench target tractable;
#: pass members_per_suite=None to run every member.
DEFAULT_MEMBERS_PER_SUITE = 1


def run(
    scale: float = 1.0,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
    suites: Sequence[str] | None = None,
    members_per_suite: int | None = DEFAULT_MEMBERS_PER_SUITE,
) -> ExperimentResult:
    """Reproduce Figure 10's per-suite uPC bars."""
    n_branches = max(2_000, int(BASE_BRANCHES * scale))
    warmup = max(500, int(BASE_WARMUP * scale))
    suite_names = list(suites) if suites is not None else list(SUITES)
    result = ExperimentResult(
        experiment_id="figure10",
        title="uPC per suite: 16KB 2Bc-gskew alone vs 8KB+8KB "
        "2Bc-gskew + tagged gshare",
        headers=["suite", "configuration", "uPC", "speedup_%"],
    )

    def upc_for(suite: str, factory) -> float:
        members = SUITES[suite]
        if members_per_suite is not None:
            members = members[:members_per_suite]
        total = 0.0
        for name in members:
            machine = TimedMachine(benchmark(name), factory())
            total += machine.run(n_branches, warmup=warmup).upc
        return total / len(members)

    for suite in suite_names:
        alone = upc_for(
            suite, lambda: SinglePredictorSystem(make_prophet("2bc-gskew", 16))
        )
        result.rows.append([suite, "16KB alone", round(alone, 3), 0.0])
        ys = [alone]
        for fb in future_bits:
            upc = upc_for(
                suite,
                lambda: ProphetCriticSystem(
                    make_prophet("2bc-gskew", 8),
                    make_critic("tagged-gshare", 8),
                    future_bits=fb,
                ),
            )
            ys.append(upc)
            result.rows.append(
                [suite, f"8+8 hybrid ({fb} fb)", round(upc, 3), round(speedup_percent(alone, upc), 1)]
            )
        result.series[suite] = (["alone"] + list(future_bits), ys)
    result.notes = (
        "Paper at 12 future bits: FP00 +1.7%, WEB +6%, INT00 +10.7%; the "
        "hybrid never loses to the 16KB prophet on any suite."
    )
    return result
