"""Shared experiment scaffolding: result container, system specs, grid runners.

Experiments describe their grids as :class:`~repro.sim.specs.SystemSpec`
× benchmark-name cells and hand them to :func:`run_grid` /
:func:`run_timed_grid`, which route through the process-wide sweep
engine — so ``--jobs`` and ``--cache-dir`` on the CLI parallelise and
cache every experiment without touching its code.

:func:`single_spec` / :func:`hybrid_spec` cover the paper's Table-3
budget vocabulary; :func:`system_spec` opens the whole predictor
registry (any kind, any geometry, config-dict spellings included — see
``docs/CONFIG.md``). The legacy closure factories
(:func:`single_system`, :func:`hybrid_system`) remain for ad-hoc
in-process use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.hybrid import PredictionSystem, ProphetCriticSystem, SinglePredictorSystem
from repro.pipeline.machine import PipelineResult
from repro.predictors.budget import make_critic, make_prophet
from repro.sim.driver import SimulationConfig
from repro.sim.execution import SweepEngine, get_default_engine
from repro.sim.results import format_table, render_series
from repro.sim.specs import (
    MODE_TIMING,
    PredictorSpec,
    ProgramSpec,
    SweepCell,
    SystemSpec,
)
from repro.sim.sweep import SweepResult, run_sweep

#: Default measurement window at scale 1.0 — small enough for a laptop
#: bench run; multiply with REPRO_SCALE (e.g. 8-20) for runs closer to
#: the paper's 30M-instruction traces.
BASE_BRANCHES = 16_000
BASE_WARMUP = 4_000


def scaled_config(scale: float = 1.0, **overrides) -> SimulationConfig:
    """A :class:`SimulationConfig` whose window scales linearly."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    config = SimulationConfig(
        n_branches=max(2_000, int(BASE_BRANCHES * scale)),
        warmup=max(500, int(BASE_WARMUP * scale)),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def single_spec(kind: str, budget_kb: int) -> SystemSpec:
    """Spec for a prophet-alone baseline at a Table-3 budget."""
    return SystemSpec.single(kind, budget_kb)


def hybrid_spec(
    prophet_kind: str,
    prophet_kb: int,
    critic_kind: str,
    critic_kb: int,
    future_bits: int,
    insert_on: str = "final",
) -> SystemSpec:
    """Spec for a prophet/critic hybrid at Table-3 budgets."""
    return SystemSpec.hybrid(
        prophet_kind, prophet_kb, critic_kind, critic_kb, future_bits, insert_on
    )


def system_spec(
    prophet,
    critic=None,
    future_bits: int = 0,
    insert_on: str = "final",
) -> SystemSpec:
    """Spec for any registered predictor composition.

    ``prophet`` and ``critic`` accept everything
    :meth:`~repro.sim.specs.PredictorSpec.from_config` does: a
    :class:`~repro.sim.specs.PredictorSpec`, a bare kind string (schema
    defaults), a ``(kind, budget_kb)`` pair, or a config mapping with
    explicit geometry params. With no critic the system is a single
    prophet; with one it is a prophet/critic hybrid.
    """
    if critic is None:
        return SystemSpec(kind="single", prophet=PredictorSpec.from_config(prophet))
    return SystemSpec(
        kind="hybrid",
        prophet=PredictorSpec.from_config(prophet),
        critic=PredictorSpec.from_config(critic),
        future_bits=future_bits,
        insert_on=insert_on,
    )


def run_grid(
    systems: Mapping[str, SystemSpec],
    benchmarks: Sequence[str],
    config: SimulationConfig,
    engine: SweepEngine | None = None,
    progress: Callable | None = None,
) -> SweepResult:
    """Run a (system × benchmark) accuracy grid through the sweep engine.

    Cells fan out across the engine's executor (``--jobs``; the worker
    pool persists across grids, so consecutive experiments share warm
    workers and memoized program builds) and hit its result cache
    (``--cache-dir``) when one is attached; the defaults reproduce the
    original serial in-process loop exactly. ``progress`` (or the
    engine's own ``progress`` attribute, which the CLI's ``--progress``
    installs) is called per finished cell as cells stream in.
    """
    return run_sweep(
        systems, {name: name for name in benchmarks}, config, engine,
        progress=progress,
    )


def run_timed_grid(
    systems: Mapping[str, SystemSpec],
    benchmarks: Sequence[str],
    n_branches: int,
    warmup: int,
    engine: SweepEngine | None = None,
    progress: Callable | None = None,
) -> dict[tuple[str, str], PipelineResult]:
    """Run a (system × benchmark) Table-2 timing grid through the engine.

    Returns results keyed by (system label, benchmark name). Same
    parallelism, caching and progress behaviour as :func:`run_grid`.
    """
    engine = engine if engine is not None else get_default_engine()
    config = SimulationConfig(n_branches=n_branches, warmup=warmup)
    cells = [
        SweepCell(
            system_label=label,
            bench_name=name,
            system=spec,
            program=ProgramSpec(benchmark=name),
            config=config,
            mode=MODE_TIMING,
        )
        for name in benchmarks
        for label, spec in systems.items()
    ]
    results = engine.run_cells(cells, progress=progress)
    return {
        (cell.system_label, cell.bench_name): result
        for cell, result in zip(cells, results)
    }


def single_system(kind: str, budget_kb: int) -> Callable[[], PredictionSystem]:
    """Factory for a prophet-alone baseline at a Table-3 budget."""

    def build() -> PredictionSystem:
        return SinglePredictorSystem(make_prophet(kind, budget_kb))

    return build


def hybrid_system(
    prophet_kind: str,
    prophet_kb: int,
    critic_kind: str,
    critic_kb: int,
    future_bits: int,
) -> Callable[[], PredictionSystem]:
    """Factory for a prophet/critic hybrid at Table-3 budgets."""

    def build() -> PredictionSystem:
        return ProphetCriticSystem(
            make_prophet(prophet_kind, prophet_kb),
            make_critic(critic_kind, critic_kb),
            future_bits=future_bits,
        )

    return build


@dataclass
class ExperimentResult:
    """One reproduced table or figure, renderable as text."""

    experiment_id: str
    title: str
    headers: list[str] = field(default_factory=list)
    rows: list[list] = field(default_factory=list)
    #: Figure series: name -> (xs, ys).
    series: dict[str, tuple[list, list[float]]] = field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        """The text the bench target prints: the paper's rows/series."""
        parts: list[str] = [f"== {self.experiment_id}: {self.title} =="]
        if self.rows:
            parts.append(format_table(self.headers, self.rows))
        for name, (xs, ys) in self.series.items():
            parts.append(render_series(name, xs, ys))
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def series_values(self, name: str) -> list[float]:
        return list(self.series[name][1])

    def column(self, header: str) -> list:
        index = self.headers.index(header)
        return [row[index] for row in self.rows]


def average_series(all_series: Sequence[Sequence[float]]) -> list[float]:
    """Pointwise arithmetic mean of equal-length series (the AVG line)."""
    if not all_series:
        return []
    length = len(all_series[0])
    if any(len(s) != length for s in all_series):
        raise ValueError("series lengths differ")
    return [sum(s[i] for s in all_series) / len(all_series) for i in range(length)]
