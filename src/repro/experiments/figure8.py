"""Figure 8 — distribution of critiques.

Counts of the four explicit-critique classes (correct_agree,
incorrect_disagree, incorrect_agree, correct_disagree) as the number of
future bits varies, for a 4KB perceptron prophet with an 8KB tagged
gshare critic. The paper's observations:

* incorrect_disagree (wins) outnumber correct_disagree (damage);
* from 1 to 12 future bits, wins grow and damage shrinks;
* correct_agree dominates all explicit critiques;
* the total number of explicit critiques falls as future bits increase
  (the filter identifies mispredict contexts more precisely).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.critiques import CritiqueKind
from repro.experiments.base import (
    ExperimentResult,
    hybrid_spec,
    run_grid,
    scaled_config,
)

PROPHET = ("perceptron", 4)
CRITIC = ("tagged-gshare", 8)
FUTURE_BIT_POINTS: tuple[int, ...] = (1, 4, 8, 12)
DEFAULT_BENCHMARK = "gcc"

#: The classes Figure 8 stacks, in its legend order.
PLOTTED_CLASSES: tuple[CritiqueKind, ...] = (
    CritiqueKind.CORRECT_AGREE,
    CritiqueKind.INCORRECT_DISAGREE,
    CritiqueKind.INCORRECT_AGREE,
    CritiqueKind.CORRECT_DISAGREE,
)


def run(
    scale: float = 1.0,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
    bench_name: str = DEFAULT_BENCHMARK,
) -> ExperimentResult:
    """Reproduce Figure 8's critique census."""
    config = scaled_config(scale)
    result = ExperimentResult(
        experiment_id="figure8",
        title="distribution of critiques (prophet: 4KB perceptron; "
        "critic: 8KB tagged gshare)",
        headers=["future_bits"]
        + [kind.value for kind in PLOTTED_CLASSES]
        + ["explicit_total"],
    )
    systems = {
        f"fb={fb}": hybrid_spec(PROPHET[0], PROPHET[1], CRITIC[0], CRITIC[1], fb)
        for fb in future_bits
    }
    sweep = run_grid(systems, [bench_name], config)
    for fb in future_bits:
        census = sweep.get(f"fb={fb}", bench_name).census
        row = [fb] + [census.counts[kind] for kind in PLOTTED_CLASSES]
        row.append(census.explicit_total)
        result.rows.append(row)
    for kind in PLOTTED_CLASSES:
        result.series[kind.value] = (
            list(future_bits),
            [float(row[1 + PLOTTED_CLASSES.index(kind)]) for row in result.rows],
        )
    result.notes = (
        "Paper: wins (incorrect_disagree) exceed damage (correct_disagree); "
        "1→12 future bits grows wins ~20% and cuts damage ~40%; the "
        "explicit-critique total shrinks."
    )
    return result
