"""Figure 9 — average uPC of conventional predictors vs hybrids.

Runs the Table-2 timing model: each 16KB prophet alone, then the 8KB+8KB
prophet/critic hybrid (tagged gshare critic) with 4, 8 and 12 future
bits. The paper reports uPC speedups of 4.7/3.4/2.7% at 4 future bits
(gshare/2Bc-gskew/perceptron) growing to 8/7/5.2% at 12.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.core.hybrid import ProphetCriticSystem, SinglePredictorSystem
from repro.experiments.base import BASE_BRANCHES, BASE_WARMUP, ExperimentResult
from repro.pipeline.machine import TimedMachine
from repro.predictors.budget import make_critic, make_prophet
from repro.utils.statistics import speedup_percent
from repro.workloads.suites import benchmark

PROPHETS: tuple[str, ...] = ("gshare", "2bc-gskew", "perceptron")
FUTURE_BIT_POINTS: tuple[int, ...] = (4, 8, 12)
DEFAULT_BENCHMARKS: tuple[str, ...] = ("gcc", "flash")


def _timed_upc(system_factory, benchmarks: Sequence[str], n_branches: int, warmup: int) -> float:
    total = 0.0
    for name in benchmarks:
        machine = TimedMachine(benchmark(name), system_factory())
        total += machine.run(n_branches, warmup=warmup).upc
    return total / len(benchmarks)


def run(
    scale: float = 1.0,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
    prophets: Sequence[str] = PROPHETS,
) -> ExperimentResult:
    """Reproduce Figure 9's uPC bars."""
    n_branches = max(2_000, int(BASE_BRANCHES * scale))
    warmup = max(500, int(BASE_WARMUP * scale))
    result = ExperimentResult(
        experiment_id="figure9",
        title="average uPC: 16KB prophets alone vs 8KB+8KB hybrids "
        "(tagged gshare critic)",
        headers=["prophet", "configuration", "uPC", "speedup_%"],
    )
    for prophet_kind in prophets:
        alone = _timed_upc(
            lambda: SinglePredictorSystem(make_prophet(prophet_kind, 16)),
            benchmarks,
            n_branches,
            warmup,
        )
        result.rows.append([prophet_kind, "16KB alone", round(alone, 3), 0.0])
        ys = [alone]
        for fb in future_bits:
            upc = _timed_upc(
                lambda: ProphetCriticSystem(
                    make_prophet(prophet_kind, 8),
                    make_critic("tagged-gshare", 8),
                    future_bits=fb,
                ),
                benchmarks,
                n_branches,
                warmup,
            )
            ys.append(upc)
            result.rows.append(
                [
                    prophet_kind,
                    f"8+8 hybrid ({fb} fb)",
                    round(upc, 3),
                    round(speedup_percent(alone, upc), 1),
                ]
            )
        result.series[prophet_kind] = (["alone"] + list(future_bits), ys)
    result.notes = (
        "Paper speedups over 16KB alone: gshare 4.7→8%, 2Bc-gskew 3.4→7%, "
        "perceptron 2.7→5.2% as future bits go 4→12."
    )
    return result
