"""Figure 9 — average uPC of conventional predictors vs hybrids.

Runs the Table-2 timing model: each 16KB prophet alone, then the 8KB+8KB
prophet/critic hybrid (tagged gshare critic) with 4, 8 and 12 future
bits. The paper reports uPC speedups of 4.7/3.4/2.7% at 4 future bits
(gshare/2Bc-gskew/perceptron) growing to 8/7/5.2% at 12.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.base import (
    BASE_BRANCHES,
    BASE_WARMUP,
    ExperimentResult,
    hybrid_spec,
    run_timed_grid,
    single_spec,
)
from repro.utils.statistics import speedup_percent

PROPHETS: tuple[str, ...] = ("gshare", "2bc-gskew", "perceptron")
FUTURE_BIT_POINTS: tuple[int, ...] = (4, 8, 12)
DEFAULT_BENCHMARKS: tuple[str, ...] = ("gcc", "flash")


def run(
    scale: float = 1.0,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
    future_bits: Sequence[int] = FUTURE_BIT_POINTS,
    prophets: Sequence[str] = PROPHETS,
) -> ExperimentResult:
    """Reproduce Figure 9's uPC bars."""
    n_branches = max(2_000, int(BASE_BRANCHES * scale))
    warmup = max(500, int(BASE_WARMUP * scale))
    result = ExperimentResult(
        experiment_id="figure9",
        title="average uPC: 16KB prophets alone vs 8KB+8KB hybrids "
        "(tagged gshare critic)",
        headers=["prophet", "configuration", "uPC", "speedup_%"],
    )
    systems = {}
    for prophet_kind in prophets:
        systems[f"{prophet_kind}/alone"] = single_spec(prophet_kind, 16)
        for fb in future_bits:
            systems[f"{prophet_kind}/fb{fb}"] = hybrid_spec(
                prophet_kind, 8, "tagged-gshare", 8, fb
            )
    timed = run_timed_grid(systems, benchmarks, n_branches, warmup)

    def averaged_upc(label: str) -> float:
        return sum(timed[(label, name)].upc for name in benchmarks) / len(benchmarks)

    for prophet_kind in prophets:
        alone = averaged_upc(f"{prophet_kind}/alone")
        result.rows.append([prophet_kind, "16KB alone", round(alone, 3), 0.0])
        ys = [alone]
        for fb in future_bits:
            upc = averaged_upc(f"{prophet_kind}/fb{fb}")
            ys.append(upc)
            result.rows.append(
                [
                    prophet_kind,
                    f"8+8 hybrid ({fb} fb)",
                    round(upc, 3),
                    round(speedup_percent(alone, upc), 1),
                ]
            )
        result.series[prophet_kind] = (["alone"] + list(future_bits), ys)
    result.notes = (
        "Paper speedups over 16KB alone: gshare 4.7→8%, 2Bc-gskew 3.4→7%, "
        "perceptron 2.7→5.2% as future bits go 4→12."
    )
    return result
