"""Table 3 — predictor configurations and hardware budgets.

Definitional rather than measured: verifies that every Table-3 geometry
instantiates and that its modelled storage lands on the stated budget
(core predictors within 10%, tagged structures within 30% — tags and LRU
state are charged explicitly here where the paper rounds).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.predictors.budget import BUDGETS_KB, PREDICTOR_BUDGETS, make_predictor


def run(scale: float = 1.0) -> ExperimentResult:
    """Render Table 3 with modelled byte costs (scale is ignored)."""
    del scale
    result = ExperimentResult(
        experiment_id="table3",
        title="prophet and critic configurations (hardware budgets)",
        headers=["predictor", "budget_kb", "modelled_kb", "within_budget"],
    )
    for kind in PREDICTOR_BUDGETS:
        tolerance = 0.10 if kind in ("gshare", "perceptron", "2bc-gskew") else 0.30
        for budget_kb in BUDGETS_KB:
            predictor = make_predictor(kind, budget_kb)
            modelled_kb = predictor.storage_bytes() / 1024.0
            ok = abs(modelled_kb - budget_kb) / budget_kb <= tolerance
            result.rows.append([kind, budget_kb, round(modelled_kb, 2), ok])
    result.notes = "history lengths and entry counts are pinned in predictors/budget.py"
    return result
