"""The paper's §1 headline numbers.

An 8K+8K byte prophet/critic hybrid vs a 16KB 2Bc-gskew (EV8-style)
predictor:

* 39% fewer mispredicts (across the whole benchmark set);
* distance between pipeline flushes: 418 → 680 uops;
* gcc mispredict rate: 3.11% → 1.23%;
* uPC +7.8% (gcc +18%); uops fetched −8.6%.

This module reproduces each of those rows on the synthetic benchmark
panel (one member per suite plus gcc), with accuracy numbers from the
functional simulator and uPC/fetch numbers from the timing model.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.base import (
    BASE_BRANCHES,
    BASE_WARMUP,
    ExperimentResult,
    hybrid_spec,
    run_grid,
    run_timed_grid,
    scaled_config,
    single_spec,
)
from repro.utils.statistics import percent_reduction, speedup_percent

#: One member per suite, gcc first (it has its own headline row).
PANEL: tuple[str, ...] = ("gcc", "facerec", "specjbb", "flash", "msvc7", "tpcc", "cad")

FUTURE_BITS = 8
BASELINE = ("2bc-gskew", 16)
HYBRID = ("2bc-gskew", 8, "tagged-gshare", 8)


def run(scale: float = 1.0, panel: Sequence[str] = PANEL) -> ExperimentResult:
    """Reproduce the headline comparison."""
    config = scaled_config(scale)
    result = ExperimentResult(
        experiment_id="headline",
        title="8K+8K prophet/critic vs 16KB 2Bc-gskew (paper §1)",
        headers=["metric", "16KB 2Bc-gskew", "8+8 hybrid", "delta", "paper"],
    )

    systems = {
        "baseline": single_spec(*BASELINE),
        "hybrid": hybrid_spec(*HYBRID, FUTURE_BITS),
    }
    sweep = run_grid(systems, panel, config)
    pooled_base = sweep.aggregate("baseline")
    pooled_hyb = sweep.aggregate("hybrid")
    gcc_base = sweep.get("baseline", "gcc")
    gcc_hyb = sweep.get("hybrid", "gcc")

    reduction = percent_reduction(
        pooled_base.misp_per_kuops, pooled_hyb.misp_per_kuops
    )
    result.rows.append(
        [
            "misp/Kuops (panel)",
            round(pooled_base.misp_per_kuops, 3),
            round(pooled_hyb.misp_per_kuops, 3),
            f"-{reduction:.1f}%",
            "-39%",
        ]
    )
    result.rows.append(
        [
            "uops per flush (panel)",
            round(pooled_base.uops_per_flush, 0),
            round(pooled_hyb.uops_per_flush, 0),
            f"x{pooled_hyb.uops_per_flush / max(pooled_base.uops_per_flush, 1e-9):.2f}",
            "418 -> 680 (x1.63)",
        ]
    )
    result.rows.append(
        [
            "gcc mispredict %",
            round(100 * gcc_base.mispredict_rate, 2),
            round(100 * gcc_hyb.mispredict_rate, 2),
            f"-{percent_reduction(gcc_base.mispredict_rate, gcc_hyb.mispredict_rate):.1f}%",
            "3.11% -> 1.23%",
        ]
    )

    # Timing rows (gcc): uPC and total fetched uops.
    n_branches = max(2_000, int(BASE_BRANCHES * scale))
    warmup = max(500, int(BASE_WARMUP * scale))
    timed = run_timed_grid(systems, ["gcc"], n_branches, warmup)
    timed_base = timed[("baseline", "gcc")]
    timed_hyb = timed[("hybrid", "gcc")]
    result.rows.append(
        [
            "uPC (gcc)",
            round(timed_base.upc, 3),
            round(timed_hyb.upc, 3),
            f"+{speedup_percent(timed_base.upc, timed_hyb.upc):.1f}%",
            "+7.8% avg, +18% gcc",
        ]
    )
    result.rows.append(
        [
            "uops fetched (gcc)",
            timed_base.fetched_uops,
            timed_hyb.fetched_uops,
            f"{speedup_percent(timed_base.fetched_uops, timed_hyb.fetched_uops):+.1f}%",
            "-8.6%",
        ]
    )
    result.notes = (
        "Panel pools one benchmark per suite. Accuracy rows come from the "
        "wrong-path functional simulator, timing rows from the Table-2 "
        "machine model."
    )
    return result
