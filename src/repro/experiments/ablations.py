"""Ablations for the design choices DESIGN.md calls out.

1. **Wrong-path vs oracle future bits** (§6). The paper insists the
   critic must be fed future bits produced by *actually fetching down the
   wrong path*; a correct-path trace hands it oracle bits. This ablation
   runs both and shows the oracle inflates accuracy — i.e. a trace-driven
   evaluation would overstate the hybrid.
2. **Filtering** (§4, §7.2). Tagged (filtered) gshare critic vs a plain
   gshare critic of equal budget across future-bit counts.
3. **Filter insertion policy.** Insert on final-mispredict (paper) vs on
   prophet-mispredict.
4. **TAGE** (§9's "try newer components", and the design that eventually
   superseded prophet/critic): 16KB TAGE alone vs the 8+8 hybrid.
"""

from __future__ import annotations

from repro.experiments.base import (
    ExperimentResult,
    hybrid_spec,
    run_grid,
    scaled_config,
    single_spec,
)
from repro.predictors.budget import make_critic, make_prophet
from repro.sim.driver import oracle_replay
from repro.workloads.suites import benchmark
from repro.workloads.trace import capture_trace

DEFAULT_BENCHMARK = "gcc"


def run_oracle_vs_wrongpath(
    scale: float = 1.0, bench_name: str = DEFAULT_BENCHMARK, future_bits: int = 8
) -> ExperimentResult:
    """Ablation 1: honest wrong-path simulation vs oracle trace replay.

    The oracle arm routes through :func:`repro.sim.driver.oracle_replay`
    — the same code the CLI's ``trace replay --oracle`` uses — fed by an
    in-memory capture of the committed stream.
    """
    config = scaled_config(scale)
    honest_sweep = run_grid(
        {"honest": hybrid_spec("2bc-gskew", 8, "tagged-gshare", 8, future_bits)},
        [bench_name],
        config,
    )
    honest = honest_sweep.get("honest", bench_name)
    trace = capture_trace(benchmark(bench_name), config.n_branches)
    oracle = oracle_replay(
        trace,
        prophet=make_prophet("2bc-gskew", 8),
        critic=make_critic("tagged-gshare", 8),
        future_bits=future_bits,
        warmup=config.warmup,
    )
    result = ExperimentResult(
        experiment_id="ablation-oracle",
        title="wrong-path future bits (honest) vs oracle trace future bits (§6)",
        headers=["evaluation", "mispredict_%"],
        rows=[
            ["wrong-path simulation", round(100 * honest.mispredict_rate, 3)],
            ["oracle trace replay", round(100 * oracle.mispredict_rate, 3)],
        ],
        notes=(
            "The oracle replay hands the critic the branch's actual outcome "
            "inside its own index; its 'accuracy' is inflated and unreal — "
            "the paper's argument for execution-driven wrong-path evaluation."
        ),
    )
    return result


def run_filtering(
    scale: float = 1.0, bench_name: str = DEFAULT_BENCHMARK
) -> ExperimentResult:
    """Ablation 2: filtered vs unfiltered critic across future bits."""
    config = scaled_config(scale)
    result = ExperimentResult(
        experiment_id="ablation-filtering",
        title="filtered (tagged gshare) vs unfiltered (gshare) critic",
        headers=["future_bits", "filtered misp/Ku", "unfiltered misp/Ku"],
    )
    fb_points = (1, 8, 12)
    systems = {}
    for fb in fb_points:
        systems[f"filtered/fb{fb}"] = hybrid_spec("2bc-gskew", 8, "tagged-gshare", 8, fb)
        systems[f"unfiltered/fb{fb}"] = hybrid_spec("2bc-gskew", 8, "gshare", 8, fb)
    sweep = run_grid(systems, [bench_name], config)
    for fb in fb_points:
        filtered = sweep.get(f"filtered/fb{fb}", bench_name)
        unfiltered = sweep.get(f"unfiltered/fb{fb}", bench_name)
        result.rows.append(
            [fb, round(filtered.misp_per_kuops, 3), round(unfiltered.misp_per_kuops, 3)]
        )
    result.notes = (
        "Paper §7.2: without a filter the critic critiques the ~90% of "
        "branches the prophet already gets right, wasting capacity and "
        "history bits; filtering keeps future bits useful."
    )
    return result


def run_insert_policy(
    scale: float = 1.0, bench_name: str = DEFAULT_BENCHMARK, future_bits: int = 8
) -> ExperimentResult:
    """Ablation 3: filter allocation on final- vs prophet-mispredict."""
    config = scaled_config(scale)
    systems = {
        policy: hybrid_spec(
            "2bc-gskew", 8, "tagged-gshare", 8, future_bits, insert_on=policy
        )
        for policy in ("final", "prophet")
    }
    sweep = run_grid(systems, [bench_name], config)
    rows = [
        [policy, round(sweep.get(policy, bench_name).misp_per_kuops, 3)]
        for policy in ("final", "prophet")
    ]
    return ExperimentResult(
        experiment_id="ablation-insert-policy",
        title="filter insertion trigger: final-mispredict (paper) vs prophet-mispredict",
        headers=["insert_on", "misp/Kuops"],
        rows=rows,
        notes="The paper allocates on a mispredict with a tag miss (§4).",
    )


def run_vs_tage(
    scale: float = 1.0, bench_name: str = DEFAULT_BENCHMARK
) -> ExperimentResult:
    """Ablation 4: the hybrid vs TAGE at equal total budget."""
    config = scaled_config(scale)
    systems = {
        "16KB 2Bc-gskew": single_spec("2bc-gskew", 16),
        "16KB TAGE": single_spec("tage", 16),
        "8+8 prophet/critic (8 fb)": hybrid_spec("2bc-gskew", 8, "tagged-gshare", 8, 8),
    }
    sweep = run_grid(systems, [bench_name], config)
    rows = [
        [label, round(sweep.get(label, bench_name).misp_per_kuops, 3)]
        for label in systems
    ]
    return ExperimentResult(
        experiment_id="ablation-tage",
        title="prophet/critic vs TAGE at equal hardware budget",
        headers=["configuration", "misp/Kuops"],
        rows=rows,
        notes=(
            "Historical context: TAGE-class predictors eventually superseded "
            "prophet/critic hybrids; this bench quantifies the gap on the "
            "synthetic workloads."
        ),
    )


def run(scale: float = 1.0) -> ExperimentResult:
    """All ablations merged into one renderable result."""
    parts = [
        run_oracle_vs_wrongpath(scale),
        run_filtering(scale),
        run_insert_policy(scale),
        run_vs_tage(scale),
    ]
    merged = ExperimentResult(
        experiment_id="ablations",
        title="design-choice ablations (see DESIGN.md §5)",
    )
    merged.notes = "\n".join(part.render() for part in parts)
    return merged
