"""Figure 6 — prediction accuracies of prophet/critic combinations.

Three sub-figures, each a grid over prophet size {4, 16}KB × critic size
{2, 8, 32}KB × future bits {no critic, 1, 4, 8, 12}:

* (a) 2Bc-gskew prophet + **unfiltered** perceptron critic — shows the
  mispredict rate *rising* past ~8 future bits because the unfiltered
  critic wastes history bits critiquing easy branches;
* (b) gshare prophet + filtered perceptron critic;
* (c) perceptron prophet + tagged gshare critic — with filtering, more
  future bits keep helping (or at least stop hurting).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.experiments.base import (
    ExperimentResult,
    hybrid_spec,
    run_grid,
    scaled_config,
    single_spec,
)

#: Sub-figure definitions: (prophet kind, critic kind, filtered?).
SUBFIGURES: dict[str, tuple[str, str, bool]] = {
    "a": ("2bc-gskew", "perceptron", False),
    "b": ("gshare", "filtered-perceptron", True),
    "c": ("perceptron", "tagged-gshare", True),
}

#: Benchmarks averaged in the bench harness (one INT-heavy, one WEB-like;
#: the full paper averages 108 benchmarks — see EXPERIMENTS.md).
DEFAULT_BENCHMARKS: tuple[str, ...] = ("gcc", "specjbb")

FUTURE_BIT_POINTS: tuple[int | None, ...] = (None, 1, 4, 8, 12)


def run(
    subfigure: str = "c",
    scale: float = 1.0,
    prophet_kbs: Sequence[int] = (4, 16),
    critic_kbs: Sequence[int] = (2, 8, 32),
    future_bits: Sequence[int | None] = FUTURE_BIT_POINTS,
    benchmarks: Sequence[str] = DEFAULT_BENCHMARKS,
) -> ExperimentResult:
    """Reproduce one Figure 6 sub-figure's grid.

    ``future_bits`` entries of None mean "no critic" (prophet alone at
    its own size, as in the paper's first bar of each group).
    """
    if subfigure not in SUBFIGURES:
        raise KeyError(f"subfigure must be one of {sorted(SUBFIGURES)}")
    prophet_kind, critic_kind, _filtered = SUBFIGURES[subfigure]
    config = scaled_config(scale)
    result = ExperimentResult(
        experiment_id=f"figure6{subfigure}",
        title=f"misp/Kuops grid — prophet: {prophet_kind}; critic: {critic_kind}",
        headers=["prophet_kb", "critic_kb"]
        + ["no critic" if fb is None else f"fb={fb}" for fb in future_bits],
    )
    def label(prophet_kb: int, critic_kb: int, fb: int | None) -> str:
        suffix = "none" if fb is None else f"fb={fb}"
        return f"p{prophet_kb}/c{critic_kb}/{suffix}"

    systems = {}
    for prophet_kb in prophet_kbs:
        for critic_kb in critic_kbs:
            for fb in future_bits:
                if fb is None:
                    spec = single_spec(prophet_kind, prophet_kb)
                else:
                    spec = hybrid_spec(
                        prophet_kind, prophet_kb, critic_kind, critic_kb, fb
                    )
                systems[label(prophet_kb, critic_kb, fb)] = spec
    sweep = run_grid(systems, benchmarks, config)
    for prophet_kb in prophet_kbs:
        for critic_kb in critic_kbs:
            row: list = [prophet_kb, critic_kb]
            ys = [
                sweep.average_misp_per_kuops(label(prophet_kb, critic_kb, fb))
                for fb in future_bits
            ]
            row.extend(round(y, 3) for y in ys)
            result.rows.append(row)
            result.series[f"{prophet_kb}KB prophet + {critic_kb}KB critic"] = (
                ["none" if fb is None else fb for fb in future_bits],
                ys,
            )
    result.notes = (
        "Paper: adding a critic always lowers the rate; larger critics are "
        "better; unfiltered critics (a) degrade past ~8 future bits while "
        "filtered critics (b, c) hold or improve."
    )
    return result
