"""Named benchmarks and suite profiles mirroring the paper's Table 1.

The paper simulates 108 benchmarks across seven suites. We mirror the
*structure*: seven suites, each with named members whose behaviour mixes
follow the qualitative characters the paper reports:

* **INT00** (SPECint2K) — branchy, correlation-rich, moderate noise; the
  suite where prophet/critic gains are largest (Fig. 10: +4.2–10.7%).
* **FP00** (SPECfp2K) — loop-dominated, highly predictable; tiny gains
  (Fig. 10: +0.6–1.7%).
* **WEB** — mixed, phase-heavy (Fig. 10: +3–6%).
* **MM** (multimedia) — loops plus data-dependent branches.
* **PROD** (productivity) — large static footprints, aliasing pressure.
* **SERV** (server, tpcc/timesten) — random-dominated; future bits beyond
  1 barely help and can hurt (Fig. 5 tpcc line).
* **WS** (workstation/CAD) — long deterministic phases with correlation.

Named members used by specific figures: ``gcc`` (headline), ``unzip``,
``premiere``, ``msvc7``, ``flash``, ``facerec``, ``tpcc`` (Fig. 5).
Profiles are deterministic: the same name always yields the same program.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.workloads.generator import WorkloadProfile, generate_program
from repro.workloads.program import Program

# ---------------------------------------------------------------------------
# Behaviour-mix archetypes
# ---------------------------------------------------------------------------

_INT_MIX = {"loop": 0.14, "pattern": 0.03, "random": 0.05, "correlated": 0.30, "path": 0.16, "modal": 0.07, "caller": 0.25}
_FP_MIX = {"loop": 0.50, "pattern": 0.10, "random": 0.03, "correlated": 0.16, "path": 0.10, "modal": 0.03, "caller": 0.08}
_WEB_MIX = {"loop": 0.12, "pattern": 0.03, "random": 0.08, "correlated": 0.24, "path": 0.14, "modal": 0.12, "caller": 0.27}
_MM_MIX = {"loop": 0.28, "pattern": 0.05, "random": 0.08, "correlated": 0.20, "path": 0.15, "modal": 0.06, "caller": 0.18}
_PROD_MIX = {"loop": 0.12, "pattern": 0.03, "random": 0.07, "correlated": 0.26, "path": 0.16, "modal": 0.10, "caller": 0.26}
_SERV_MIX = {"loop": 0.10, "pattern": 0.03, "random": 0.42, "correlated": 0.13, "path": 0.10, "modal": 0.08, "caller": 0.14}
_WS_MIX = {"loop": 0.22, "pattern": 0.06, "random": 0.04, "correlated": 0.28, "path": 0.16, "modal": 0.06, "caller": 0.18}


def _profile(name: str, seed: int, mix: dict[str, float], **kwargs) -> WorkloadProfile:
    return WorkloadProfile(name=name, seed=seed, behavior_mix=dict(mix), **kwargs)


#: Every named benchmark. Keys are the names used throughout experiments.
BENCHMARKS: dict[str, WorkloadProfile] = {
    # ---- INT00 ------------------------------------------------------------
    # gcc: huge static footprint (headline: 3.11% -> 1.23% mispredicts),
    # correlation-rich, long-distance correlations stress short histories.
    "gcc": _profile(
        "gcc", 101, _INT_MIX,
        static_branch_target=2600, n_functions=14,
        correlation_distance=(3, 36), correlation_noise=0.03,
    ),
    "crafty": _profile(
        "crafty", 102, _INT_MIX,
        static_branch_target=1500, n_functions=10,
        correlation_distance=(2, 18),
    ),
    "parser": _profile(
        "parser", 103, _INT_MIX,
        static_branch_target=1200, n_functions=9,
        correlation_noise=0.06,
    ),
    # ---- FP00 -------------------------------------------------------------
    # facerec: Fig. 5 shows it nearly insensitive to future bits.
    "facerec": _profile(
        "facerec", 201, _FP_MIX,
        static_branch_target=320, n_functions=5,
        loop_trips=(8, 16, 32, 64), variable_loop_fraction=0.15,
    ),
    "ammp": _profile(
        "ammp", 202, _FP_MIX,
        static_branch_target=380, n_functions=6,
        loop_trips=(4, 8, 12, 50),
    ),
    "swim": _profile(
        "swim", 203, _FP_MIX,
        static_branch_target=220, n_functions=4,
        loop_trips=(16, 32, 128), variable_loop_fraction=0.05,
    ),
    # ---- WEB --------------------------------------------------------------
    "specjbb": _profile(
        "specjbb", 301, _WEB_MIX,
        static_branch_target=1700, n_functions=12,
    ),
    "webmark": _profile(
        "webmark", 302, _WEB_MIX,
        static_branch_target=1400, n_functions=10,
        correlation_distance=(3, 30),
    ),
    # ---- MM ---------------------------------------------------------------
    # flash: Fig. 5 peak at 4 future bits — short path signatures.
    "flash": _profile(
        "flash", 401, _MM_MIX,
        static_branch_target=900, n_functions=8,
        correlation_distance=(2, 8), path_window=(6, 16),
    ),
    "mpeg": _profile(
        "mpeg", 402, _MM_MIX,
        static_branch_target=700, n_functions=7,
        loop_trips=(4, 8, 16),
    ),
    "quake": _profile(
        "quake", 403, _MM_MIX,
        static_branch_target=1000, n_functions=8,
        bias_range=(0.3, 0.9),
    ),
    # ---- PROD -------------------------------------------------------------
    # msvc7: Fig. 5 optimum at 8 future bits. premiere: most gain at 1 bit.
    # unzip: gains keep growing to 12 bits — long wrong-path signatures.
    "msvc7": _profile(
        "msvc7", 501, _PROD_MIX,
        static_branch_target=2200, n_functions=13,
        correlation_distance=(4, 20), path_window=(12, 40),
    ),
    "premiere": _profile(
        "premiere", 502, _PROD_MIX,
        static_branch_target=1700, n_functions=11,
        correlation_distance=(2, 6), path_window=(4, 12),
    ),
    "unzip": _profile(
        "unzip", 503, _PROD_MIX,
        static_branch_target=1300, n_functions=9,
        correlation_distance=(10, 48), path_window=(24, 64),
        correlation_noise=0.02,
    ),
    "winstone": _profile(
        "winstone", 504, _PROD_MIX,
        static_branch_target=1900, n_functions=11,
    ),
    # ---- SERV -------------------------------------------------------------
    # tpcc: random-dominated; Fig. 5 shows future bits beyond 1 never help.
    "tpcc": _profile(
        "tpcc", 601, _SERV_MIX,
        static_branch_target=1500, n_functions=10,
        bias_range=(0.25, 0.75), correlation_noise=0.12,
    ),
    "timesten": _profile(
        "timesten", 602, _SERV_MIX,
        static_branch_target=1200, n_functions=9,
        bias_range=(0.2, 0.8),
    ),
    # ---- WS ---------------------------------------------------------------
    "cad": _profile(
        "cad", 701, _WS_MIX,
        static_branch_target=1100, n_functions=8,
        correlation_distance=(3, 28),
    ),
    "verilog": _profile(
        "verilog", 702, _WS_MIX,
        static_branch_target=950, n_functions=8,
        loop_trips=(3, 4, 6, 10),
    ),
}

#: Table-1 suite membership.
SUITES: dict[str, tuple[str, ...]] = {
    "INT00": ("gcc", "crafty", "parser"),
    "FP00": ("facerec", "ammp", "swim"),
    "WEB": ("specjbb", "webmark"),
    "MM": ("flash", "mpeg", "quake"),
    "PROD": ("msvc7", "premiere", "unzip", "winstone"),
    "SERV": ("tpcc", "timesten"),
    "WS": ("cad", "verilog"),
}

#: The six benchmarks Figure 5 plots.
FIGURE5_BENCHMARKS: tuple[str, ...] = ("unzip", "premiere", "msvc7", "flash", "facerec", "tpcc")

#: Registered on-disk traces: workload name -> trace file path. Trace
#: workloads resolve through :func:`benchmark` and
#: :class:`~repro.sim.specs.ProgramSpec` exactly like generated ones.
TRACES: dict[str, Path] = {}

_program_cache: dict[str, Program] = {}


def register_trace(path: str | os.PathLike, name: str | None = None) -> str:
    """Register a recorded trace file as a named workload.

    The name defaults to the one stored in the trace header. Once
    registered, the name works everywhere a benchmark name does —
    :func:`benchmark`, experiment grids, ``ProgramSpec(benchmark=...)`` —
    with cache keys derived from the trace's content digest, not its
    path. Returns the registered name.
    """
    from repro.workloads.trace_io import read_trace_header

    header = read_trace_header(path)
    name = name or header.name
    if name in BENCHMARKS:
        raise ValueError(
            f"trace name {name!r} collides with a generated benchmark; "
            "pass an explicit name"
        )
    resolved = Path(path).resolve()
    if name in TRACES and TRACES[name] != resolved:
        raise ValueError(
            f"trace name {name!r} is already registered to {TRACES[name]}; "
            "pass an explicit name to register both"
        )
    TRACES[name] = resolved
    return name


def register_trace_suite(
    directory: str | os.PathLike, pattern: str = "*.trace", prefix: str = "trace:"
) -> list[str]:
    """Register every trace file in a directory; return the names.

    The record-once / sweep-many workflow: ``repro trace record --suite``
    fills a directory, and this call turns it into a workload suite any
    experiment grid can iterate. Each workload is registered as
    ``prefix + header name`` — the default prefix keeps recordings of
    named benchmarks (``swim`` → ``trace:swim``) from shadowing their
    generators.
    """
    from repro.workloads.trace_io import read_trace_header

    names = [
        register_trace(path, name=prefix + read_trace_header(path).name)
        for path in sorted(Path(directory).glob(pattern))
    ]
    if not names:
        raise FileNotFoundError(
            f"no trace files matching {pattern!r} under {os.fspath(directory)}"
        )
    return names


def trace_names() -> list[str]:
    """All registered trace workloads, stable order."""
    return list(TRACES)


def trace_path(name: str) -> Path:
    """The trace file backing a registered trace workload."""
    if name not in TRACES:
        raise KeyError(f"unknown trace workload {name!r}; known: {sorted(TRACES)}")
    return TRACES[name]


def benchmark(name: str, fresh: bool = True) -> Program:
    """Build the named workload's program.

    Resolves generated benchmarks first, then registered traces
    (:func:`register_trace`). Programs contain stateful behaviours, so by
    default a fresh instance is built per call; pass ``fresh=False`` to
    reuse (and reset) a cached instance when only structure matters.
    Trace-backed programs are always fresh (each carries its own stream
    cursor).

    >>> benchmark("swim").name
    'swim'
    """
    if name in BENCHMARKS:
        if fresh:
            return generate_program(BENCHMARKS[name])
        if name not in _program_cache:
            _program_cache[name] = generate_program(BENCHMARKS[name])
        program = _program_cache[name]
        program.reset()
        return program
    if name in TRACES:
        from repro.workloads.trace import replay_program

        return replay_program(TRACES[name])
    raise KeyError(
        f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}"
        + (f"; registered traces: {sorted(TRACES)}" if TRACES else "")
    )


def benchmark_names() -> list[str]:
    """All named generated benchmarks, stable order.

    >>> "gcc" in benchmark_names() and "tpcc" in benchmark_names()
    True
    """
    return list(BENCHMARKS)


def suite_names() -> list[str]:
    """The seven Table-1 suites."""
    return list(SUITES)


def suite_benchmarks(suite: str) -> list[Program]:
    """Fresh programs for every member of ``suite``."""
    if suite not in SUITES:
        raise KeyError(f"unknown suite {suite!r}; known: {sorted(SUITES)}")
    return [benchmark(name) for name in SUITES[suite]]
