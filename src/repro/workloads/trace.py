"""Branch traces: recording, persistence and exact replay.

Traces serve two distinct purposes, and the module keeps them honest
about which is which:

* **Exact replay** (:func:`record_trace` → :func:`replay_program`). A
  recorded trace file carries the program's CFG structure plus the
  committed outcome stream (see :mod:`repro.workloads.trace_io`), so a
  replayed program runs through :func:`repro.sim.driver.simulate` with
  genuine wrong-path fetch and reproduces the live run's statistics
  bit-for-bit. This is the record-once / sweep-many workflow.
* **Oracle replay** (:class:`BranchTrace` + the §6 ablation). The paper
  warns that feeding a critic future bits harvested from a correct-path
  trace gives it *oracle* information a real machine never has.
  :meth:`BranchTrace.future_bits` packages exactly that leak so the
  ablation can quantify the gap against the honest simulation.

In-memory capture and inspection:

>>> trace = BranchTrace("demo")
>>> trace.append(BranchRecord(pc=0x100, taken=True, uops=6))
>>> trace.append(BranchRecord(pc=0x104, taken=False, uops=4))
>>> (len(trace), trace.total_uops, trace.taken_rate)
(2, 10, 0.5)
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.workloads.behaviors import BranchBehavior, ExecutionContext
from repro.workloads.program import Program

if TYPE_CHECKING:  # runtime imports stay lazy: trace_io imports this module
    from repro.workloads.trace_io import TraceHeader


@dataclass(frozen=True)
class BranchRecord:
    """One committed conditional branch."""

    pc: int
    taken: bool
    #: uops committed since the previous conditional branch (inclusive of
    #: this branch's block) — reconstructs uop denominators from a trace.
    uops: int = 1


class BranchTrace:
    """An in-memory sequence of committed branch records.

    For anything longer than an ablation window prefer the streaming
    file APIs (:func:`record_trace`, :class:`~repro.workloads.trace_io.TraceReader`);
    this class materialises every record.
    """

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._records: list[BranchRecord] = []

    def append(self, record: BranchRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BranchRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "BranchTrace":
        """Load a trace file's records into memory (ablation-sized only)."""
        from repro.workloads.trace_io import TraceReader

        with TraceReader(path) as reader:
            trace = cls(reader.header.name)
            for record in reader.records():
                trace.append(record)
        return trace

    @property
    def total_uops(self) -> int:
        return sum(r.uops for r in self._records)

    @property
    def taken_rate(self) -> float:
        if not self._records:
            return 0.0
        return sum(r.taken for r in self._records) / len(self._records)

    def distinct_sites(self) -> int:
        return len({r.pc for r in self._records})

    def window(self, start: int, length: int) -> list[BranchRecord]:
        """A slice of the trace (bounds-checked).

        >>> trace = BranchTrace()
        >>> for index in range(4):
        ...     trace.append(BranchRecord(pc=index, taken=index % 2 == 0))
        >>> [r.pc for r in trace.window(1, 2)]
        [1, 2]
        """
        if start < 0 or length < 0:
            raise ValueError("start and length must be non-negative")
        return self._records[start : start + length]

    def future_bits(self, index: int, count: int) -> int:
        """Oracle future bits for the branch at ``index``.

        Packs the actual outcomes of branches ``index .. index+count-1``
        with the branch's own outcome at bit ``count-1`` and the newest
        outcome at bit 0 — the same layout the critic's BOR would hold if
        every prophet prediction were correct. This is precisely the
        information §6 warns a trace-driven evaluation would leak.
        """
        value = 0
        for offset in range(count):
            position = count - 1 - offset
            record_index = index + offset
            if record_index < len(self._records):
                value |= int(self._records[record_index].taken) << position
        return value


# ---------------------------------------------------------------------------
# Recording
# ---------------------------------------------------------------------------


def capture_trace(program: Program, n_branches: int) -> BranchTrace:
    """Record ``program``'s committed branch stream into memory.

    The program is reset first, so the capture matches what a fresh
    :func:`~repro.sim.driver.simulate` run commits.
    """
    trace = BranchTrace(program.name)
    for record in _committed_stream(program, n_branches):
        trace.append(record)
    return trace


def record_trace(
    program: Program,
    n_branches: int,
    path: str | os.PathLike,
    *,
    source: dict | None = None,
) -> "TraceHeader":
    """Record ``program``'s committed branch stream to a trace file.

    Streams straight to disk (constant memory) and publishes the file
    atomically; returns the written header. ``source`` is free-form
    provenance stored alongside (e.g. the generating profile).
    """
    from repro.workloads.trace_io import TraceWriter

    with TraceWriter(path, program.structure(), source=source) as writer:
        for record in _committed_stream(program, n_branches):
            writer.write(record)
    assert writer.header is not None
    return writer.header


def _committed_stream(program: Program, n_branches: int) -> Iterator[BranchRecord]:
    """Yield the first ``n_branches`` committed branches of a fresh run."""
    # Engine imports stay local: the engine depends on workloads, not
    # the other way around.
    from repro.engine.executor import ArchitecturalExecutor

    if n_branches < 1:
        raise ValueError("n_branches must be positive")
    program.reset()
    executor = ArchitecturalExecutor(program)
    for _ in range(n_branches):
        resolved = executor.next_branch()
        yield BranchRecord(pc=resolved.pc, taken=resolved.taken, uops=resolved.uops)


# ---------------------------------------------------------------------------
# Exact replay
# ---------------------------------------------------------------------------


class ReplayCursor:
    """Shared commit-order read position over a trace file's records.

    Every replayed conditional branch pulls its outcome from the same
    cursor, which streams records from disk on demand. ``rewind`` (used
    by ``Program.reset``) reopens the stream from the first record.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self.consumed = 0
        self._reader = None
        self._records: Iterator[BranchRecord] | None = None

    def rewind(self) -> None:
        """Restart from the first record (idempotent)."""
        if self._reader is not None:
            self._reader.close()
        self._reader = None
        self._records = None
        self.consumed = 0

    def next_record(self) -> BranchRecord:
        """The next committed branch record, in trace order."""
        from repro.workloads.trace_io import TraceFormatError, TraceReader

        if self._records is None:
            self._reader = TraceReader(self.path)
            self._records = self._reader.records()
        try:
            record = next(self._records)
        except StopIteration:
            exhausted_at = self.consumed
            self.close()
            raise TraceFormatError(
                "trace exhausted: the simulation needs more branches than "
                "were recorded",
                path=self.path,
                offset=exhausted_at,
                actual=f"{exhausted_at} records available",
            ) from None
        self.consumed += 1
        return record

    def close(self) -> None:
        if self._reader is not None:
            self._reader.close()
        self._reader = None
        self._records = None

    def __del__(self) -> None:
        # Deterministic-enough cleanup on CPython: a replayed program
        # going out of scope releases its trace file handle immediately
        # (rewind/close also release it explicitly mid-run).
        try:
            self.close()
        except (OSError, ValueError):
            # The narrow set a close can actually raise (I/O failure,
            # double-close of a wrapped stream); anything else is a bug
            # that must not be muffled by interpreter teardown.
            pass


class TraceReplayBehavior(BranchBehavior):
    """Replays a recorded outcome for one branch site.

    All sites of a replayed program share one :class:`ReplayCursor`;
    because behaviours are resolved exactly once per committed branch in
    program order, popping the cursor in resolution order reproduces the
    recorded stream exactly. A pc mismatch means the trace and the CFG
    disagree (tampering or a format bug) and raises
    :class:`~repro.workloads.trace_io.TraceFormatError`.
    """

    kind = "replay"

    def __init__(self, cursor: ReplayCursor) -> None:
        self.cursor = cursor

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        from repro.workloads.trace_io import TraceFormatError

        record = self.cursor.next_record()
        if record.pc != site:
            raise TraceFormatError(
                "replay desync: recorded branch does not match the CFG walk",
                path=self.cursor.path,
                offset=self.cursor.consumed - 1,
                expected=hex(site),
                actual=hex(record.pc),
            )
        return record.taken

    def reset(self) -> None:
        self.cursor.rewind()


def replay_program(path: str | os.PathLike) -> Program:
    """Build a trace-backed :class:`Program` from a recorded file.

    The returned program carries the recorded CFG with every conditional
    branch scripted to its recorded outcomes, so the wrong-path-accurate
    simulator treats it exactly like a generated workload — and produces
    bit-for-bit the statistics of the original live run (the differential
    tests in ``tests/sim/test_trace_replay.py`` enforce this).
    """
    from repro.workloads.trace_io import TraceReader

    with TraceReader(path) as reader:
        structure = reader.structure()
    cursor = ReplayCursor(path)
    return Program.from_structure(
        structure, lambda block_id, pc: TraceReplayBehavior(cursor)
    )
