"""Branch traces: recording and (oracle) replay.

Traces serve the §6 ablation: the paper warns that feeding a critic
future bits harvested from a correct-path trace gives it *oracle*
information a real machine never has. :class:`BranchTrace` lets the
ablation quantify exactly that gap — record the architectural branch
stream once, then replay it with oracle future bits and compare against
the honest wrong-path simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class BranchRecord:
    """One committed conditional branch."""

    pc: int
    taken: bool
    #: uops committed since the previous conditional branch (inclusive of
    #: this branch's block) — reconstructs uop denominators from a trace.
    uops: int = 1


class BranchTrace:
    """An in-memory sequence of committed branch records."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._records: list[BranchRecord] = []

    def append(self, record: BranchRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BranchRecord]:
        return iter(self._records)

    def __getitem__(self, index):
        return self._records[index]

    @property
    def total_uops(self) -> int:
        return sum(r.uops for r in self._records)

    @property
    def taken_rate(self) -> float:
        if not self._records:
            return 0.0
        return sum(r.taken for r in self._records) / len(self._records)

    def distinct_sites(self) -> int:
        return len({r.pc for r in self._records})

    def window(self, start: int, length: int) -> list[BranchRecord]:
        """A slice of the trace (bounds-checked)."""
        if start < 0 or length < 0:
            raise ValueError("start and length must be non-negative")
        return self._records[start : start + length]

    def future_bits(self, index: int, count: int) -> int:
        """Oracle future bits for the branch at ``index``.

        Packs the actual outcomes of branches ``index .. index+count-1``
        with the branch's own outcome at bit ``count-1`` and the newest
        outcome at bit 0 — the same layout the critic's BOR would hold if
        every prophet prediction were correct. This is precisely the
        information §6 warns a trace-driven evaluation would leak.
        """
        value = 0
        for offset in range(count):
            position = count - 1 - offset
            record_index = index + offset
            if record_index < len(self._records):
                value |= int(self._records[record_index].taken) << position
        return value
