"""Synthetic program representation: a control-flow graph of basic blocks.

A :class:`Program` is a closed CFG (every path continues forever — the
outermost loop wraps around), so simulations can run for any number of
branches. Blocks carry uop counts, giving the misp/Kuops denominators.

Block terminators:

* ``COND`` — two successors (taken/fall-through) and a behaviour model;
* ``JUMP`` — one successor;
* ``CALL`` — control transfers to ``callee``; the *fall-through* is the
  return point, pushed on the (simulated) return address stack;
* ``RETURN`` — control returns to the top of the RAS.

PCs are assigned per block with realistic spacing so BTB/index hashing
sees address entropy comparable to a real text segment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.workloads.behaviors import BranchBehavior, ExecutionContext


class BlockKind(enum.Enum):
    """Terminator type of a basic block."""

    COND = "cond"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"


class CompiledSegment:
    """One precompiled straight-line run of the CFG.

    A segment starts at a given block and swallows every JUMP/CALL/RETURN
    up to (and including) either the next conditional branch or the first
    RETURN whose target is not statically known (a return address pushed
    *before* the segment began). Traversers replay a segment in O(1) plus
    its recorded call/return traffic, instead of walking block by block.

    ``ras_ops``/``call_ops`` are parallel scripts: entry ``i`` of both
    describes the same CALL (push the return point / push the call-site
    block) or the same statically-paired RETURN (``-1``: pop). Replaying
    the script verbatim — rather than its net effect — preserves the
    exact overflow/drop-oldest behaviour of a bounded hardware RAS.

    Static pairing is only valid while the paired push is guaranteed to
    survive on a bounded RAS, so the compiler caps the un-popped local
    call depth at the table's ``pair_limit`` (the traverser's RAS
    capacity): a CALL nesting deeper ends the segment with a
    *continuation* into the callee, and the matching RETURNs become
    run-time pops in later segments — which read the live stack top and
    therefore reproduce drop-oldest/underflow behaviour exactly.
    """

    __slots__ = (
        "branch",
        "call_ops",
        "ends_at_branch",
        "next_block",
        "ras_ops",
        "steps",
        "uops",
        "watched",
    )

    def __init__(
        self,
        uops: int,
        steps: int,
        ras_ops: tuple[int, ...],
        call_ops: tuple[int, ...],
        watched: tuple[tuple[int, int], ...],
        branch: "BasicBlock | None",
        next_block: int | None = None,
    ) -> None:
        #: Total uops of every consumed block (terminator included).
        self.uops = uops
        #: Blocks consumed (drives the context's ``step`` clock).
        self.steps = steps
        #: RAS script: push return-point block id (>= 0) or pop (-1).
        self.ras_ops = ras_ops
        #: Caller-stack script, parallel to ``ras_ops`` (call-site ids).
        self.call_ops = call_ops
        #: ``(step_offset, block_id)`` for watched blocks consumed, in
        #: traversal order; offsets are 1-based within the segment.
        self.watched = watched
        #: The terminating conditional block, or None when the segment
        #: ends before one (run-time pop or depth-capped continuation).
        self.branch = branch
        #: Set (with ``branch`` None) when the segment was split by the
        #: pairing depth cap: traversal continues at this block without
        #: popping. None with ``branch`` None means: pop the live RAS.
        self.next_block = next_block
        self.ends_at_branch = branch is not None


class CompiledCFG:
    """Per-block transition table over :class:`CompiledSegment`.

    Built lazily: segments are compiled on first traversal of each start
    block, so only reachable fetch/commit targets pay compilation cost.
    The table assumes the CFG is structurally frozen after ``Program``
    construction (which the rest of the engine already relies on — block
    identity underpins snapshots and trace serialisation).

    ``pair_limit`` must not exceed the RAS capacity of the traverser
    using the table (see :class:`CompiledSegment` on why); traversers
    request a table via ``Program.compiled(pair_limit=ras_capacity)``.
    """

    __slots__ = ("_program", "_segments", "entry", "pair_limit")

    #: Upper bound on blocks consumed while compiling one segment. A
    #: segment longer than this means a branch-free CFG cycle, which the
    #: old block-stepping walker would have spun on forever; failing at
    #: compile time turns that hang into a diagnosable error.
    MAX_SEGMENT_BLOCKS = 100_000

    def __init__(self, program: "Program", pair_limit: int = 64) -> None:
        if pair_limit < 1:
            raise ValueError("pair_limit must be positive")
        self._program = program
        self._segments: dict[int, CompiledSegment] = {}
        self.entry = program.entry
        self.pair_limit = pair_limit

    def segment(self, block_id: int) -> CompiledSegment:
        """The segment starting at ``block_id`` (compiled on first use)."""
        seg = self._segments.get(block_id)
        if seg is None:
            seg = self._compile(block_id)
            self._segments[block_id] = seg
        return seg

    def _compile(self, start: int) -> CompiledSegment:
        program = self._program
        watched_set = program.watched_blocks
        pair_limit = self.pair_limit
        uops = 0
        steps = 0
        ras_ops: list[int] = []
        call_ops: list[int] = []
        watched: list[tuple[int, int]] = []
        local_stack: list[int] = []
        next_block: int | None = None
        block_id = start
        limit = max(self.MAX_SEGMENT_BLOCKS, 16 * len(program.blocks))
        while True:
            block = program.block(block_id)
            steps += 1
            if steps > limit:
                raise ValueError(
                    f"no conditional branch reachable from block {start}: "
                    "the CFG contains a branch-free cycle"
                )
            uops += block.uops
            if block.block_id in watched_set:
                watched.append((steps, block.block_id))
            kind = block.kind
            if kind is BlockKind.COND:
                branch = block
                break
            if kind is BlockKind.JUMP:
                block_id = block.taken_target
            elif kind is BlockKind.CALL:
                ras_ops.append(block.fallthrough)
                call_ops.append(block.block_id)
                if len(local_stack) >= pair_limit:
                    # Pairing this push with its RETURN would not survive
                    # a capacity-`pair_limit` RAS (drop-oldest could
                    # evict it). Split: the segment ends here and the
                    # callee starts a new one; the matching RETURNs
                    # become run-time pops, which read the live stack.
                    branch = None
                    next_block = block.taken_target
                    break
                local_stack.append(block.fallthrough)
                block_id = block.taken_target
            else:  # RETURN
                if local_stack:
                    # Paired with a CALL inside this segment: the target
                    # is static, and the pop is scripted so the real RAS
                    # sees the exact same push/pop sequence.
                    ras_ops.append(-1)
                    call_ops.append(-1)
                    block_id = local_stack.pop()
                else:
                    # Return address predates the segment — the traverser
                    # must pop the live RAS and continue from there.
                    branch = None
                    break
        return CompiledSegment(
            uops=uops,
            steps=steps,
            ras_ops=tuple(ras_ops),
            call_ops=tuple(call_ops),
            watched=tuple(watched),
            branch=branch,
            next_block=next_block,
        )


@dataclass
class BasicBlock:
    """One basic block: some uops, then a control-flow terminator."""

    block_id: int
    pc: int
    uops: int
    kind: BlockKind
    #: Successor block id when taken (COND), the only successor (JUMP),
    #: or the callee entry (CALL). None for RETURN.
    taken_target: int | None = None
    #: Successor when not taken (COND) or the return point (CALL).
    fallthrough: int | None = None
    #: Outcome model; present iff kind is COND.
    behavior: BranchBehavior | None = None

    def validate(self) -> None:
        """Raise ValueError on structurally impossible blocks."""
        if self.uops < 1:
            raise ValueError(f"block {self.block_id}: uop count must be positive")
        if self.kind is BlockKind.COND:
            if self.taken_target is None or self.fallthrough is None or self.behavior is None:
                raise ValueError(f"block {self.block_id}: COND needs both targets and a behaviour")
        elif self.kind is BlockKind.JUMP:
            if self.taken_target is None:
                raise ValueError(f"block {self.block_id}: JUMP needs a target")
        elif self.kind is BlockKind.CALL:
            if self.taken_target is None or self.fallthrough is None:
                raise ValueError(f"block {self.block_id}: CALL needs a callee and a return point")


@dataclass
class Program:
    """A closed CFG plus metadata; the unit the engine executes."""

    name: str
    blocks: list[BasicBlock]
    entry: int
    seed: int = 0
    #: Block ids that path-correlated behaviours observe.
    watched_blocks: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._by_id = {b.block_id: b for b in self.blocks}
        if len(self._by_id) != len(self.blocks):
            raise ValueError("duplicate block ids")
        if self.entry not in self._by_id:
            raise ValueError("entry block missing")
        self._compiled: dict[int, CompiledCFG] = {}
        # Behaviours must be attached before Program construction (the
        # generator and from_structure both do); capturing them once makes
        # reset() O(#conditionals), which matters now that the execution
        # engine resets memoized programs between every sweep cell.
        self._stateful = tuple(b.behavior for b in self.blocks if b.behavior is not None)

    def block(self, block_id: int) -> BasicBlock:
        """Look up a block by id."""
        return self._by_id[block_id]

    def compiled(self, pair_limit: int = 64) -> CompiledCFG:
        """The precompiled traversal table for this program.

        Built lazily on first use and shared by every traverser of this
        program instance (walker, executor, timing model) that uses the
        same ``pair_limit`` — which must not exceed the traverser's RAS
        capacity (the engine default, 64, is also the default here). The
        CFG is treated as structurally immutable after construction;
        behaviours remain free to mutate (segments reference blocks, not
        outcomes).
        """
        table = self._compiled.get(pair_limit)
        if table is None:
            table = self._compiled[pair_limit] = CompiledCFG(self, pair_limit)
        return table

    def validate(self) -> None:
        """Validate every block and that all edges resolve."""
        for block in self.blocks:
            block.validate()
            for target in (block.taken_target, block.fallthrough):
                if target is not None and target not in self._by_id:
                    raise ValueError(f"block {block.block_id}: dangling edge to {target}")

    def make_context(self) -> ExecutionContext:
        """Create a fresh architectural context for this program."""
        return ExecutionContext(seed=self.seed, watched_blocks=set(self.watched_blocks))

    def __getstate__(self) -> dict:
        """Pickle without memoized replay state.

        The batched kernel caches architectural-trace columns
        (``_trace_cache``) and a fused-replay precompute context
        (``_replay_ctx``) on the program object; both are multi-megabyte,
        derivable, and per-process. Shipping them across the pool's
        pickle boundary would dominate chunk submission cost, so they
        are dropped here and rebuilt (or refetched from the persistent
        trace store) on first use in the receiving process. The
        ``_build_key`` stamp survives — it is a small string and the
        trace store's key.
        """
        state = dict(self.__dict__)
        state.pop("_trace_cache", None)
        state.pop("_replay_ctx", None)
        return state

    def reset(self) -> None:
        """Reset all stateful behaviours (between simulation runs).

        Behaviour state and trace replay cursors rewind; the lazily
        compiled CFG transition tables (:meth:`compiled`) survive, so a
        reused program re-runs without recompilation — the contract the
        execution engine's build memoization relies on.
        """
        for behavior in self._stateful:
            behavior.reset()

    # -- inventory helpers (used by tests and reports) ------------------------

    @property
    def static_conditional_branches(self) -> int:
        return sum(1 for b in self.blocks if b.kind is BlockKind.COND)

    @property
    def static_calls(self) -> int:
        return sum(1 for b in self.blocks if b.kind is BlockKind.CALL)

    def behavior_census(self) -> dict[str, int]:
        """Count conditional branches by behaviour kind."""
        census: dict[str, int] = {}
        for block in self.blocks:
            if block.behavior is not None:
                census[block.behavior.kind] = census.get(block.behavior.kind, 0) + 1
        return census

    def conditional_sites(self) -> list[int]:
        """PCs of all conditional branch sites."""
        return [b.pc for b in self.blocks if b.kind is BlockKind.COND]

    # -- structural (de)serialisation -----------------------------------------
    #
    # The on-disk trace format (workloads/trace_io.py) persists a program's
    # *shape* — everything the speculative walker and executor traverse —
    # without its behaviour models, which are replaced on replay by
    # scripted behaviours that feed back the recorded outcome stream.

    def structure(self) -> dict:
        """JSON-serialisable CFG structure (no behaviour models).

        Round-trips through :meth:`from_structure`:

        >>> from repro.workloads.behaviors import PatternBehavior
        >>> block = BasicBlock(0, 0x40, 2, BlockKind.COND, taken_target=0,
        ...                    fallthrough=0, behavior=PatternBehavior("TN"))
        >>> data = Program("demo", [block], entry=0, seed=7).structure()
        >>> data["blocks"]
        [[0, 64, 2, 'cond', 0, 0]]
        >>> rebuilt = Program.from_structure(
        ...     data, lambda block_id, pc: PatternBehavior("TN"))
        >>> (rebuilt.name, rebuilt.seed, rebuilt.block(0).pc)
        ('demo', 7, 64)
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "entry": self.entry,
            "watched": sorted(self.watched_blocks),
            "blocks": [
                [b.block_id, b.pc, b.uops, b.kind.value, b.taken_target, b.fallthrough]
                for b in self.blocks
            ],
        }

    @staticmethod
    def from_structure(
        data: dict,
        behavior_for: Callable[[int, int], BranchBehavior | None],
    ) -> "Program":
        """Rebuild a program from :meth:`structure` output.

        ``behavior_for(block_id, pc)`` supplies the behaviour for each
        conditional block (the structure itself carries none). Raises
        :class:`ValueError` on structurally invalid data — the same
        validation a generated program gets.
        """
        try:
            blocks = [
                BasicBlock(
                    block_id=int(block_id),
                    pc=int(pc),
                    uops=int(uops),
                    kind=BlockKind(kind),
                    taken_target=None if taken is None else int(taken),
                    fallthrough=None if fall is None else int(fall),
                )
                for block_id, pc, uops, kind, taken, fall in data["blocks"]
            ]
            for block in blocks:
                if block.kind is BlockKind.COND:
                    block.behavior = behavior_for(block.block_id, block.pc)
            program = Program(
                name=str(data["name"]),
                blocks=blocks,
                entry=int(data["entry"]),
                seed=int(data["seed"]),
                watched_blocks={int(b) for b in data.get("watched", ())},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed program structure: {exc}") from exc
        program.validate()
        return program
