"""Synthetic program representation: a control-flow graph of basic blocks.

A :class:`Program` is a closed CFG (every path continues forever — the
outermost loop wraps around), so simulations can run for any number of
branches. Blocks carry uop counts, giving the misp/Kuops denominators.

Block terminators:

* ``COND`` — two successors (taken/fall-through) and a behaviour model;
* ``JUMP`` — one successor;
* ``CALL`` — control transfers to ``callee``; the *fall-through* is the
  return point, pushed on the (simulated) return address stack;
* ``RETURN`` — control returns to the top of the RAS.

PCs are assigned per block with realistic spacing so BTB/index hashing
sees address entropy comparable to a real text segment.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

from repro.workloads.behaviors import BranchBehavior, ExecutionContext


class BlockKind(enum.Enum):
    """Terminator type of a basic block."""

    COND = "cond"
    JUMP = "jump"
    CALL = "call"
    RETURN = "return"


@dataclass
class BasicBlock:
    """One basic block: some uops, then a control-flow terminator."""

    block_id: int
    pc: int
    uops: int
    kind: BlockKind
    #: Successor block id when taken (COND), the only successor (JUMP),
    #: or the callee entry (CALL). None for RETURN.
    taken_target: int | None = None
    #: Successor when not taken (COND) or the return point (CALL).
    fallthrough: int | None = None
    #: Outcome model; present iff kind is COND.
    behavior: BranchBehavior | None = None

    def validate(self) -> None:
        """Raise ValueError on structurally impossible blocks."""
        if self.uops < 1:
            raise ValueError(f"block {self.block_id}: uop count must be positive")
        if self.kind is BlockKind.COND:
            if self.taken_target is None or self.fallthrough is None or self.behavior is None:
                raise ValueError(f"block {self.block_id}: COND needs both targets and a behaviour")
        elif self.kind is BlockKind.JUMP:
            if self.taken_target is None:
                raise ValueError(f"block {self.block_id}: JUMP needs a target")
        elif self.kind is BlockKind.CALL:
            if self.taken_target is None or self.fallthrough is None:
                raise ValueError(f"block {self.block_id}: CALL needs a callee and a return point")


@dataclass
class Program:
    """A closed CFG plus metadata; the unit the engine executes."""

    name: str
    blocks: list[BasicBlock]
    entry: int
    seed: int = 0
    #: Block ids that path-correlated behaviours observe.
    watched_blocks: set[int] = field(default_factory=set)

    def __post_init__(self) -> None:
        self._by_id = {b.block_id: b for b in self.blocks}
        if len(self._by_id) != len(self.blocks):
            raise ValueError("duplicate block ids")
        if self.entry not in self._by_id:
            raise ValueError("entry block missing")

    def block(self, block_id: int) -> BasicBlock:
        """Look up a block by id."""
        return self._by_id[block_id]

    def validate(self) -> None:
        """Validate every block and that all edges resolve."""
        for block in self.blocks:
            block.validate()
            for target in (block.taken_target, block.fallthrough):
                if target is not None and target not in self._by_id:
                    raise ValueError(f"block {block.block_id}: dangling edge to {target}")

    def make_context(self) -> ExecutionContext:
        """Create a fresh architectural context for this program."""
        return ExecutionContext(seed=self.seed, watched_blocks=set(self.watched_blocks))

    def reset(self) -> None:
        """Reset all stateful behaviours (between simulation runs)."""
        for block in self.blocks:
            if block.behavior is not None:
                block.behavior.reset()

    # -- inventory helpers (used by tests and reports) ------------------------

    @property
    def static_conditional_branches(self) -> int:
        return sum(1 for b in self.blocks if b.kind is BlockKind.COND)

    @property
    def static_calls(self) -> int:
        return sum(1 for b in self.blocks if b.kind is BlockKind.CALL)

    def behavior_census(self) -> dict[str, int]:
        """Count conditional branches by behaviour kind."""
        census: dict[str, int] = {}
        for block in self.blocks:
            if block.behavior is not None:
                census[block.behavior.kind] = census.get(block.behavior.kind, 0) + 1
        return census

    def conditional_sites(self) -> list[int]:
        """PCs of all conditional branch sites."""
        return [b.pc for b in self.blocks if b.kind is BlockKind.COND]

    # -- structural (de)serialisation -----------------------------------------
    #
    # The on-disk trace format (workloads/trace_io.py) persists a program's
    # *shape* — everything the speculative walker and executor traverse —
    # without its behaviour models, which are replaced on replay by
    # scripted behaviours that feed back the recorded outcome stream.

    def structure(self) -> dict:
        """JSON-serialisable CFG structure (no behaviour models).

        Round-trips through :meth:`from_structure`:

        >>> from repro.workloads.behaviors import PatternBehavior
        >>> block = BasicBlock(0, 0x40, 2, BlockKind.COND, taken_target=0,
        ...                    fallthrough=0, behavior=PatternBehavior("TN"))
        >>> data = Program("demo", [block], entry=0, seed=7).structure()
        >>> data["blocks"]
        [[0, 64, 2, 'cond', 0, 0]]
        >>> rebuilt = Program.from_structure(
        ...     data, lambda block_id, pc: PatternBehavior("TN"))
        >>> (rebuilt.name, rebuilt.seed, rebuilt.block(0).pc)
        ('demo', 7, 64)
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "entry": self.entry,
            "watched": sorted(self.watched_blocks),
            "blocks": [
                [b.block_id, b.pc, b.uops, b.kind.value, b.taken_target, b.fallthrough]
                for b in self.blocks
            ],
        }

    @staticmethod
    def from_structure(
        data: dict,
        behavior_for: Callable[[int, int], BranchBehavior | None],
    ) -> "Program":
        """Rebuild a program from :meth:`structure` output.

        ``behavior_for(block_id, pc)`` supplies the behaviour for each
        conditional block (the structure itself carries none). Raises
        :class:`ValueError` on structurally invalid data — the same
        validation a generated program gets.
        """
        try:
            blocks = [
                BasicBlock(
                    block_id=int(block_id),
                    pc=int(pc),
                    uops=int(uops),
                    kind=BlockKind(kind),
                    taken_target=None if taken is None else int(taken),
                    fallthrough=None if fall is None else int(fall),
                )
                for block_id, pc, uops, kind, taken, fall in data["blocks"]
            ]
            for block in blocks:
                if block.kind is BlockKind.COND:
                    block.behavior = behavior_for(block.block_id, block.pc)
            program = Program(
                name=str(data["name"]),
                blocks=blocks,
                entry=int(data["entry"]),
                seed=int(data["seed"]),
                watched_blocks={int(b) for b in data.get("watched", ())},
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed program structure: {exc}") from exc
        program.validate()
        return program
