"""Portable on-disk branch-trace format with streaming I/O.

The paper's evaluation records a committed branch stream once and studies
it many times (§6); this module gives the repo the same workflow. A trace
file carries everything :func:`repro.sim.driver.simulate` needs to replay
a recorded run **bit-for-bit**, wrong-path fetch included:

* the program's **CFG structure** (blocks, pcs, uop counts, edges — no
  behaviour models), which the speculative walker traverses down both
  correct and wrong paths; and
* the **committed branch stream** — one fixed-width
  :class:`~repro.workloads.trace.BranchRecord` per architecturally
  resolved conditional branch, in commit order.

Because behaviours are, by contract, resolved exactly once per committed
branch in program order (see :mod:`repro.workloads.behaviors`), replaying
the recorded outcomes through the same CFG reproduces the live run's
every statistic, including wrong-path uops.

File layout (version 1)::

    REPROTRACE {header json}\\n      <- one uncompressed ASCII line
    <gzip stream>
        {structure json}\\n           <- CFG structure, one line
        record * record_count        <- little-endian packed, 13 B each

The header line is tiny and uncompressed, so :func:`read_trace_header`
is O(1) — spec hashing and ``trace info`` never decompress the stream.
It carries a SHA-256 **content digest** over the structure line plus all
packed records; the digest is the trace's identity in
:class:`~repro.sim.specs.ProgramSpec` hashing, so cache keys survive
renaming or moving the file. The gzip stream is written with a fixed
mtime, making equal-content traces byte-identical on disk.

Reads and writes are streaming: neither :class:`TraceWriter` nor
:class:`TraceReader` ever materialises the full record list in memory.
Malformed input of any kind — bad magic, unsupported version, truncated
or corrupt gzip data, a short record block, trailing bytes, a digest
mismatch — raises :exc:`TraceFormatError` with the offending path,
offset and expected/actual detail, never a bare ``struct`` or EOF error.

Writing and reading round-trip exactly:

>>> import os, tempfile
>>> from repro.workloads.trace import BranchRecord
>>> structure = {"name": "doc", "seed": 1, "entry": 0, "watched": [],
...              "blocks": [[0, 64, 2, "cond", 0, 0]]}
>>> path = os.path.join(tempfile.mkdtemp(), "doc.trace")
>>> with TraceWriter(path, structure) as writer:
...     writer.write(BranchRecord(pc=64, taken=True, uops=2))
...     writer.write(BranchRecord(pc=64, taken=False, uops=2))
>>> header = read_trace_header(path)
>>> (header.record_count, header.taken_count, header.total_uops)
(2, 1, 4)
>>> with TraceReader(path) as reader:
...     [record.taken for record in reader.records()]
[True, False]
"""

from __future__ import annotations

import gzip
import hashlib
import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, Iterator

from repro.workloads.trace import BranchRecord

#: Leads the uncompressed header line of every trace file.
TRACE_MAGIC = b"REPROTRACE"

#: Bumped on any incompatible change to the layout above.
TRACE_FORMAT_VERSION = 1

#: pc (u64), taken (u8), uops (u32) — little endian, unpadded.
_RECORD = struct.Struct("<QBI")

#: Records decoded per read; multiple of the record size.
_CHUNK_RECORDS = 4096

#: Upper bound on the uncompressed header line (it is ~300 bytes).
_MAX_HEADER_BYTES = 1 << 20


class TraceFormatError(ValueError):
    """A trace file is malformed, truncated or corrupt.

    Carries structured context so callers (and error messages) can say
    exactly what went wrong where:

    ``path``
        The offending file.
    ``offset``
        Record index (or byte offset, as stated in the message) at which
        the problem was detected.
    ``expected`` / ``actual``
        The mismatching quantities (counts, byte lengths, digests).
    ``version``
        The format version involved, when the problem is version-related.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | os.PathLike | None = None,
        offset: int | None = None,
        expected: object | None = None,
        actual: object | None = None,
        version: int | None = None,
    ) -> None:
        details = []
        if offset is not None:
            details.append(f"offset {offset}")
        if expected is not None:
            details.append(f"expected {expected!r}")
        if actual is not None:
            details.append(f"actual {actual!r}")
        if version is not None:
            details.append(f"version {version}")
        suffix = f" ({', '.join(details)})" if details else ""
        prefix = f"{os.fspath(path)}: " if path is not None else ""
        super().__init__(f"{prefix}{message}{suffix}")
        self.path = os.fspath(path) if path is not None else None
        self.offset = offset
        self.expected = expected
        self.actual = actual
        self.version = version


@dataclass(frozen=True)
class TraceHeader:
    """The O(1)-readable identity and inventory of a trace file."""

    version: int
    name: str
    record_count: int
    total_uops: int
    taken_count: int
    #: SHA-256 over the structure line + all packed records: the trace's
    #: content identity (what :class:`~repro.sim.specs.ProgramSpec` hashes).
    digest: str
    #: Optional provenance (recording profile, branch count, …).
    source: dict | None = None

    @property
    def taken_rate(self) -> float:
        """Fraction of recorded branches that were taken."""
        if self.record_count == 0:
            return 0.0
        return self.taken_count / self.record_count

    def describe(self) -> dict:
        """Flat summary for ``trace info`` and tests."""
        payload = {
            "version": self.version,
            "name": self.name,
            "records": self.record_count,
            "total_uops": self.total_uops,
            "taken_rate": round(self.taken_rate, 4),
            "digest": self.digest,
        }
        if self.source:
            payload["source"] = dict(self.source)
        return payload


def pack_record(record: BranchRecord) -> bytes:
    """Encode one record to its fixed-width wire form."""
    if record.pc < 0 or record.pc > 0xFFFFFFFFFFFFFFFF:
        raise ValueError(f"pc {record.pc:#x} does not fit an unsigned 64-bit field")
    if record.uops < 0 or record.uops > 0xFFFFFFFF:
        raise ValueError(f"uop count {record.uops} does not fit an unsigned 32-bit field")
    return _RECORD.pack(record.pc, int(record.taken), record.uops)


class TraceWriter:
    """Streams committed branch records into a trace file.

    The record stream is gzipped to a sibling temp file while counters
    and the running content digest accumulate; :meth:`close` then writes
    ``<header line> + <gzip bytes>`` to a second temp file and publishes
    it with an atomic rename. A crashed or aborted write never leaves a
    partial trace at the target path, and memory use is constant in the
    trace length. Use as a context manager: the file is published on
    clean exit and the partials removed if the block raises.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        structure: dict,
        *,
        name: str | None = None,
        source: dict | None = None,
    ) -> None:
        self.path = Path(path)
        self.name = name if name is not None else str(structure.get("name", "trace"))
        self.source = source
        self.record_count = 0
        self.total_uops = 0
        self.taken_count = 0
        #: Set by :meth:`close`; the header of the published file.
        self.header: TraceHeader | None = None
        self._digest = hashlib.sha256()
        self._body_path = self.path.with_name(self.path.name + ".body.part")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._raw: IO[bytes] | None = open(self._body_path, "wb")
        # Fixed mtime and empty filename keep equal-content traces
        # byte-identical — the digest story extends to the file itself.
        self._gz: gzip.GzipFile | None = gzip.GzipFile(
            filename="", mode="wb", fileobj=self._raw, mtime=0
        )
        structure_line = (
            json.dumps(structure, sort_keys=True, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        self._gz.write(structure_line)
        self._digest.update(structure_line)

    def write(self, record: BranchRecord) -> None:
        """Append one committed branch record."""
        if self._gz is None:
            raise ValueError("trace writer is closed")
        packed = pack_record(record)
        self._gz.write(packed)
        self._digest.update(packed)
        self.record_count += 1
        self.total_uops += record.uops
        self.taken_count += int(record.taken)

    def close(self) -> TraceHeader:
        """Finalise counters, assemble the file, publish atomically."""
        if self._gz is None:
            assert self.header is not None
            return self.header
        self._gz.close()
        self._gz = None
        assert self._raw is not None
        self._raw.close()
        self._raw = None
        header = TraceHeader(
            version=TRACE_FORMAT_VERSION,
            name=self.name,
            record_count=self.record_count,
            total_uops=self.total_uops,
            taken_count=self.taken_count,
            digest=self._digest.hexdigest(),
            source=self.source,
        )
        header_json = json.dumps(
            {
                "version": header.version,
                "name": header.name,
                "record_count": header.record_count,
                "total_uops": header.total_uops,
                "taken_count": header.taken_count,
                "digest": header.digest,
                "source": header.source,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        final_part = self.path.with_name(self.path.name + ".part")
        try:
            with open(final_part, "wb") as out:
                out.write(TRACE_MAGIC + b" " + header_json.encode("utf-8") + b"\n")
                with open(self._body_path, "rb") as body:
                    while chunk := body.read(1 << 20):
                        out.write(chunk)
            os.replace(final_part, self.path)
        except BaseException:
            _unlink_quietly(final_part)
            raise
        finally:
            _unlink_quietly(self._body_path)
        self.header = header
        return header

    def abort(self) -> None:
        """Discard everything written; leave no file behind."""
        if self._gz is not None:
            self._gz.close()
            self._gz = None
        if self._raw is not None:
            self._raw.close()
            self._raw = None
        _unlink_quietly(self._body_path)

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def _unlink_quietly(path: Path) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


class TraceReader:
    """Streams a trace file back: header, structure, then records.

    The header is parsed eagerly (and cheaply); the gzip stream is only
    opened when :meth:`structure` or :meth:`records` is first used.
    Iterating :meth:`records` to completion verifies the record count and
    the content digest against the header; any shortfall, excess or
    mismatch raises :exc:`TraceFormatError`. Partial iteration (a replay
    shorter than the trace) performs no verification.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)
        self._raw: IO[bytes] | None = open(self.path, "rb")
        try:
            self.header = _parse_header_line(self._raw, self.path)
        except BaseException:
            self._raw.close()
            self._raw = None
            raise
        self._gz: gzip.GzipFile | None = None
        self._structure: dict | None = None
        self._structure_line: bytes | None = None

    def _open_stream(self) -> gzip.GzipFile:
        if self._raw is None:
            raise ValueError("trace reader is closed")
        if self._gz is None:
            self._gz = gzip.GzipFile(fileobj=self._raw, mode="rb")
            try:
                line = self._gz.readline(_MAX_HEADER_BYTES << 4)
            except (EOFError, OSError, zlib.error) as exc:
                raise TraceFormatError(
                    f"compressed stream is truncated or corrupt: {exc}",
                    path=self.path,
                ) from exc
            if not line.endswith(b"\n"):
                raise TraceFormatError(
                    "structure line is truncated (no terminating newline)",
                    path=self.path,
                    actual=f"{len(line)} bytes",
                )
            self._structure_line = line
            try:
                self._structure = json.loads(line)
            except ValueError as exc:
                raise TraceFormatError(
                    f"structure line is not valid JSON: {exc}", path=self.path
                ) from exc
        return self._gz

    def structure(self) -> dict:
        """The recorded program's CFG structure (decoded JSON)."""
        self._open_stream()
        assert self._structure is not None
        return self._structure

    def records(self) -> Iterator[BranchRecord]:
        """Yield every record in commit order, verifying at exhaustion."""
        stream = self._open_stream()
        assert self._structure_line is not None
        digest = hashlib.sha256(self._structure_line)
        expected = self.header.record_count
        produced = 0
        pending = b""
        while produced < expected:
            try:
                chunk = stream.read(_RECORD.size * _CHUNK_RECORDS)
            except (EOFError, OSError, zlib.error) as exc:
                raise TraceFormatError(
                    f"compressed stream is truncated or corrupt: {exc}",
                    path=self.path,
                    offset=produced,
                    expected=f"{expected} records",
                ) from exc
            if not chunk:
                raise TraceFormatError(
                    "record stream ends early",
                    path=self.path,
                    offset=produced,
                    expected=f"{expected} records",
                    actual=f"{produced} records"
                    + (f" + {len(pending)} stray bytes" if pending else ""),
                )
            pending += chunk
            usable = len(pending) - (len(pending) % _RECORD.size)
            take = min(usable, (expected - produced) * _RECORD.size)
            block, pending = pending[:take], pending[take:]
            digest.update(block)
            for pc, taken, uops in _RECORD.iter_unpack(block):
                if taken > 1:
                    raise TraceFormatError(
                        "corrupt record: taken flag out of range",
                        path=self.path,
                        offset=produced,
                        expected="0 or 1",
                        actual=taken,
                    )
                produced += 1
                yield BranchRecord(pc=pc, taken=bool(taken), uops=uops)
        if pending or stream.read(1):
            raise TraceFormatError(
                "trailing data after the final record",
                path=self.path,
                offset=produced,
                expected=f"{expected} records",
            )
        if digest.hexdigest() != self.header.digest:
            raise TraceFormatError(
                "content digest mismatch (file tampered or corrupt)",
                path=self.path,
                expected=self.header.digest,
                actual=digest.hexdigest(),
            )

    def __iter__(self) -> Iterator[BranchRecord]:
        return self.records()

    def close(self) -> None:
        if self._gz is not None:
            self._gz.close()
            self._gz = None
        if self._raw is not None:
            self._raw.close()
            self._raw = None

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _parse_header_line(handle: IO[bytes], path: Path) -> TraceHeader:
    line = handle.readline(_MAX_HEADER_BYTES)
    if not line.startswith(TRACE_MAGIC + b" "):
        raise TraceFormatError(
            "not a repro trace file (bad magic)",
            path=path,
            expected=TRACE_MAGIC.decode(),
            actual=line[: len(TRACE_MAGIC)].decode("ascii", "replace"),
        )
    if not line.endswith(b"\n"):
        raise TraceFormatError(
            "header line is truncated (no terminating newline)", path=path
        )
    try:
        payload = json.loads(line[len(TRACE_MAGIC) + 1 :])
        version = int(payload["version"])
        if version != TRACE_FORMAT_VERSION:
            raise TraceFormatError(
                "unsupported trace format version",
                path=path,
                expected=TRACE_FORMAT_VERSION,
                actual=version,
                version=version,
            )
        return TraceHeader(
            version=version,
            name=str(payload["name"]),
            record_count=int(payload["record_count"]),
            total_uops=int(payload["total_uops"]),
            taken_count=int(payload["taken_count"]),
            digest=str(payload["digest"]),
            source=payload.get("source"),
        )
    except TraceFormatError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise TraceFormatError(
            f"header json is malformed: {exc}", path=path
        ) from exc


#: Parsed headers keyed by path, guarded by a (size, mtime_ns, inode)
#: stat signature. Sweep workers consult a trace cell's header for its
#: content digest on every cell; the memo turns that into one stat call
#: instead of an open + parse. A rewritten file changes its signature
#: and is re-read, so the cache can never serve a stale header.
_HEADER_CACHE: dict[str, tuple[tuple[int, int, int], TraceHeader]] = {}


def read_trace_header(path: str | os.PathLike, use_cache: bool = True) -> TraceHeader:
    """Read just the header — O(1), no decompression (memoized by stat)."""
    name = os.fspath(path)
    signature = None
    if use_cache:
        try:
            stat = os.stat(name)
            signature = (stat.st_size, stat.st_mtime_ns, stat.st_ino)
        except OSError:
            signature = None  # let open() below raise the real error
        cached = _HEADER_CACHE.get(name)
        if cached is not None and signature is not None and cached[0] == signature:
            return cached[1]
    with open(name, "rb") as handle:
        header = _parse_header_line(handle, Path(name))
    if signature is not None:
        _HEADER_CACHE[name] = (signature, header)
    return header


def verify_trace(path: str | os.PathLike) -> TraceHeader:
    """Stream the whole file, checking count and digest; return the header.

    Raises :exc:`TraceFormatError` on any inconsistency.
    """
    with TraceReader(path) as reader:
        for _ in reader.records():
            pass
        return reader.header
