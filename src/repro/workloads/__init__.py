"""Synthetic workload substrate — the stand-in for the paper's LIT traces.

The paper evaluates on 341 proprietary Intel LITs (snapshots of IA32
programs). We cannot obtain those, and — critically — a plain branch trace
would not suffice anyway: prophet/critic hybrids must be evaluated with
*wrong-path* fetch (paper §6). This package therefore synthesises whole
**programs** (control-flow graphs whose conditional branches carry
deterministic behaviour models driven by architectural state), which an
executor can run down both correct and wrong paths.

Entry points:

* :func:`~repro.workloads.suites.benchmark` — named benchmarks mirroring
  the paper's exemplars (gcc, unzip, premiere, msvc7, flash, facerec,
  tpcc, …).
* :func:`~repro.workloads.suites.suite_benchmarks` — the seven Table-1
  suite profiles (INT00, FP00, WEB, MM, PROD, SERV, WS).
* :class:`~repro.workloads.generator.ProgramGenerator` — build custom
  programs from a :class:`~repro.workloads.generator.WorkloadProfile`.
"""

from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    BranchBehavior,
    CallerCorrelatedBehavior,
    CorrelatedBehavior,
    ExecutionContext,
    LoopBehavior,
    ModalBehavior,
    PathCorrelatedBehavior,
    PatternBehavior,
)
from repro.workloads.generator import ProgramGenerator, WorkloadProfile
from repro.workloads.program import BasicBlock, BlockKind, Program
from repro.workloads.suites import (
    BENCHMARKS,
    SUITES,
    benchmark,
    benchmark_names,
    suite_benchmarks,
    suite_names,
)
from repro.workloads.trace import BranchRecord, BranchTrace

__all__ = [
    "BENCHMARKS",
    "BasicBlock",
    "BiasedRandomBehavior",
    "BlockKind",
    "BranchBehavior",
    "BranchRecord",
    "BranchTrace",
    "CallerCorrelatedBehavior",
    "CorrelatedBehavior",
    "ExecutionContext",
    "LoopBehavior",
    "ModalBehavior",
    "PathCorrelatedBehavior",
    "PatternBehavior",
    "Program",
    "ProgramGenerator",
    "SUITES",
    "WorkloadProfile",
    "benchmark",
    "benchmark_names",
    "suite_benchmarks",
    "suite_names",
]
