"""Synthetic workload substrate — the stand-in for the paper's LIT traces.

The paper evaluates on 341 proprietary Intel LITs (snapshots of IA32
programs). We cannot obtain those, and — critically — a plain branch
*outcome* trace would not suffice anyway: prophet/critic hybrids must be
evaluated with *wrong-path* fetch (paper §6). This package therefore
synthesises whole **programs** (control-flow graphs whose conditional
branches carry deterministic behaviour models driven by architectural
state), which an executor can run down both correct and wrong paths.

The same insight powers the persistent trace subsystem: because
wrong-path fetch needs only CFG *structure* (never behaviours), a trace
file that stores the CFG plus the committed outcome stream
(:mod:`~repro.workloads.trace_io`) replays through the simulator
bit-for-bit identical to the live run — the record-once / sweep-many
workflow of ``python -m repro trace``.

Entry points:

* :func:`~repro.workloads.suites.benchmark` — named benchmarks mirroring
  the paper's exemplars (gcc, unzip, premiere, msvc7, flash, facerec,
  tpcc, …), plus any trace workloads registered via
  :func:`~repro.workloads.suites.register_trace`.
* :func:`~repro.workloads.suites.suite_benchmarks` — the seven Table-1
  suite profiles (INT00, FP00, WEB, MM, PROD, SERV, WS).
* :class:`~repro.workloads.generator.ProgramGenerator` — build custom
  programs from a :class:`~repro.workloads.generator.WorkloadProfile`.
* :func:`~repro.workloads.trace.record_trace` /
  :func:`~repro.workloads.trace.replay_program` — record a workload's
  committed branch stream to disk and rebuild an exactly-replaying
  program from the file.
"""

from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    BranchBehavior,
    CallerCorrelatedBehavior,
    CorrelatedBehavior,
    ExecutionContext,
    LoopBehavior,
    ModalBehavior,
    PathCorrelatedBehavior,
    PatternBehavior,
)
from repro.workloads.generator import ProgramGenerator, WorkloadProfile
from repro.workloads.program import BasicBlock, BlockKind, Program
from repro.workloads.suites import (
    BENCHMARKS,
    SUITES,
    TRACES,
    benchmark,
    benchmark_names,
    register_trace,
    register_trace_suite,
    suite_benchmarks,
    suite_names,
    trace_names,
    trace_path,
)
from repro.workloads.trace import (
    BranchRecord,
    BranchTrace,
    ReplayCursor,
    TraceReplayBehavior,
    capture_trace,
    record_trace,
    replay_program,
)
from repro.workloads.trace_io import (
    TraceFormatError,
    TraceHeader,
    TraceReader,
    TraceWriter,
    read_trace_header,
    verify_trace,
)

__all__ = [
    "BENCHMARKS",
    "BasicBlock",
    "BiasedRandomBehavior",
    "BlockKind",
    "BranchBehavior",
    "BranchRecord",
    "BranchTrace",
    "CallerCorrelatedBehavior",
    "CorrelatedBehavior",
    "ExecutionContext",
    "LoopBehavior",
    "ModalBehavior",
    "PathCorrelatedBehavior",
    "PatternBehavior",
    "Program",
    "ProgramGenerator",
    "ReplayCursor",
    "SUITES",
    "TRACES",
    "TraceFormatError",
    "TraceHeader",
    "TraceReader",
    "TraceReplayBehavior",
    "TraceWriter",
    "WorkloadProfile",
    "benchmark",
    "benchmark_names",
    "capture_trace",
    "read_trace_header",
    "record_trace",
    "register_trace",
    "register_trace_suite",
    "replay_program",
    "suite_benchmarks",
    "suite_names",
    "trace_names",
    "trace_path",
    "verify_trace",
]
