"""Branch behaviour models.

Every conditional branch in a synthetic program owns a
:class:`BranchBehavior` that decides its architectural outcome. Behaviours
read an :class:`ExecutionContext` maintained by the architectural executor
and — by contract — are resolved **exactly once per architectural
execution, in program order, on the correct path only**. Wrong-path fetch
never resolves behaviours, which is what makes speculative traversal
side-effect free (the wrong path sees *predictions*, never outcomes,
exactly as in hardware).

The behaviour classes map to the branch populations real workloads exhibit
(and that the paper's benchmarks must have contained):

* :class:`LoopBehavior` — loop back-edges: taken for N-1 trips, then exit.
* :class:`PatternBehavior` — short repeating outcome sequences.
* :class:`BiasedRandomBehavior` — data-dependent branches; fundamentally
  unpredictable beyond their bias (tpcc/SERV are dominated by these).
* :class:`CorrelatedBehavior` — outcome is a boolean function of earlier
  branches' outcomes, at configurable lag; with a lag beyond a predictor's
  history reach these are the branches history-based prophets
  systematically miss.
* :class:`PathCorrelatedBehavior` — outcome depends on *which CFG path*
  executed recently (classic if-guard correlation).
* :class:`ModalBehavior` — phase-switching behaviour; mispredict bursts at
  phase changes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.utils.rng import site_hash_outcome


@dataclass
class ExecutionContext:
    """Architectural state visible to behaviours.

    Maintained by the executor; one instance per program run.
    """

    seed: int = 0
    #: Monotonic count of blocks executed (a coarse "time" axis).
    step: int = 0
    #: Global outcome history (bit 0 = most recent), architectural.
    global_history: int = 0
    #: Per-site architectural execution counts.
    occurrences: dict[int, int] = field(default_factory=dict)
    #: Per-site most recent architectural outcome.
    last_outcome: dict[int, bool] = field(default_factory=dict)
    #: Per-block step of most recent execution (only watched blocks).
    last_block_step: dict[int, int] = field(default_factory=dict)
    #: Blocks whose executions must be recorded in ``last_block_step``.
    watched_blocks: set[int] = field(default_factory=set)
    #: Call-site block ids of the active call chain (architectural).
    caller_stack: list[int] = field(default_factory=list)

    def occurrence_of(self, site: int) -> int:
        """Architectural executions of ``site`` so far."""
        return self.occurrences.get(site, 0)

    def record_block(self, block_id: int) -> None:
        """Advance time; remember execution of watched blocks."""
        self.step += 1
        if block_id in self.watched_blocks:
            self.last_block_step[block_id] = self.step

    def current_caller(self) -> int:
        """Call-site block id of the innermost active call (0 at top level)."""
        return self.caller_stack[-1] if self.caller_stack else 0

    def push_caller(self, call_block: int) -> None:
        self.caller_stack.append(call_block)

    def pop_caller(self) -> None:
        if self.caller_stack:
            self.caller_stack.pop()

    def record_outcome(self, site: int, taken: bool) -> None:
        """Commit a branch outcome into architectural state."""
        self.occurrences[site] = self.occurrences.get(site, 0) + 1
        self.last_outcome[site] = taken
        self.global_history = ((self.global_history << 1) | int(taken)) & 0xFFFFFFFFFFFFFFFF


class BranchBehavior(abc.ABC):
    """Decides the architectural outcome of one branch site."""

    #: Short identifier used in program statistics and tests.
    kind: str = "behavior"

    @abc.abstractmethod
    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        """Return the outcome for the current architectural execution.

        Called exactly once per execution, in program order. Stateful
        implementations may mutate their own counters here.
        """

    def reset(self) -> None:
        """Forget per-run state (default: stateless)."""


class LoopBehavior(BranchBehavior):
    """A loop back-edge: taken ``trip_count - 1`` times, then not-taken.

    With ``trip_choices`` the trip count of each loop *instance* is drawn
    deterministically from the given set, modelling data-dependent loop
    bounds — the classic source of end-of-loop mispredicts.
    """

    kind = "loop"

    def __init__(
        self,
        trip_count: int = 4,
        trip_choices: tuple[int, ...] | None = None,
        persistence: int = 64,
    ) -> None:
        if trip_count < 2 and not trip_choices:
            raise ValueError("loops need a trip count of at least 2")
        if trip_choices and any(t < 2 for t in trip_choices):
            raise ValueError("all trip choices must be at least 2")
        if persistence < 1:
            raise ValueError("persistence must be positive")
        self.trip_count = trip_count
        self.trip_choices = tuple(trip_choices) if trip_choices else ()
        #: Loop instances between trip-count changes. Real loop bounds are
        #: phase-stable (the same buffer size for a while, then another),
        #: not white noise; persistence makes the bound learnable within a
        #: phase with a systematic mispredict burst at each change.
        self.persistence = persistence
        self._iteration = 0
        self._instance = 0
        self._current_trip = self._trip_for_instance(0)

    def _trip_for_instance(self, instance: int) -> int:
        if not self.trip_choices:
            return self.trip_count
        # Deterministic per-phase draw; independent of simulator order.
        phase = instance // self.persistence
        pick = site_hash_outcome(0xC0FFEE, phase, len(self.trip_choices), 0.5)
        index = (phase * 2654435761 + int(pick)) % len(self.trip_choices)
        return self.trip_choices[index]

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        self._iteration += 1
        if self._iteration >= self._current_trip:
            self._iteration = 0
            self._instance += 1
            self._current_trip = self._trip_for_instance(self._instance)
            return False  # exit the loop
        return True  # keep looping

    def reset(self) -> None:
        self._iteration = 0
        self._instance = 0
        self._current_trip = self._trip_for_instance(0)


class PatternBehavior(BranchBehavior):
    """Cyclic outcome pattern, e.g. ``"TTN"`` → taken, taken, not-taken.

    The cycle is indexed by the site's architectural occurrence count:

    >>> behavior, ctx = PatternBehavior("TTN"), ExecutionContext()
    >>> outcomes = []
    >>> for _ in range(4):
    ...     outcomes.append(behavior.resolve(0x40, ctx))
    ...     ctx.record_outcome(0x40, outcomes[-1])
    >>> outcomes
    [True, True, False, True]
    """

    kind = "pattern"

    def __init__(self, pattern: str) -> None:
        if not pattern or set(pattern.upper()) - {"T", "N"}:
            raise ValueError("pattern must be a non-empty string of T and N")
        self.pattern = tuple(ch == "T" for ch in pattern.upper())

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        return self.pattern[ctx.occurrence_of(site) % len(self.pattern)]


class BiasedRandomBehavior(BranchBehavior):
    """Bernoulli outcome with probability ``bias`` of being taken.

    Uses a stateless hash of (seed, site, occurrence) so outcomes are
    reproducible and independent of traversal order.
    """

    kind = "random"

    def __init__(self, bias: float = 0.5) -> None:
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be a probability")
        self.bias = bias

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        return site_hash_outcome(ctx.seed, site, ctx.occurrence_of(site), self.bias)


class CorrelatedBehavior(BranchBehavior):
    """Outcome = XOR of the latest outcomes of ``source_sites`` (± noise).

    ``invert`` flips the result. ``noise`` is the probability of a random
    flip, bounding achievable accuracy even for a perfect correlator.
    Sources whose outcomes haven't been recorded yet default to not-taken.
    """

    kind = "correlated"

    def __init__(self, source_sites: tuple[int, ...], invert: bool = False, noise: float = 0.0) -> None:
        if not source_sites:
            raise ValueError("need at least one source site")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be a probability")
        self.source_sites = tuple(source_sites)
        self.invert = invert
        self.noise = noise

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        value = self.invert
        for source in self.source_sites:
            value ^= ctx.last_outcome.get(source, False)
        if self.noise > 0.0 and site_hash_outcome(ctx.seed ^ 0x5EED, site, ctx.occurrence_of(site), self.noise):
            value = not value
        return value


class PathCorrelatedBehavior(BranchBehavior):
    """Taken iff ``watched_block`` executed within the last ``window`` blocks.

    Encodes if-guard correlation: the direction of this branch reveals (and
    is revealed by) which side of an earlier hammock executed. Programs
    must register ``watched_block`` in the context's watch set.
    """

    kind = "path"

    def __init__(self, watched_block: int, window: int = 32, invert: bool = False) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        self.watched_block = watched_block
        self.window = window
        self.invert = invert

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        last = ctx.last_block_step.get(self.watched_block)
        recent = last is not None and (ctx.step - last) <= self.window
        return recent != self.invert


class CallerCorrelatedBehavior(BranchBehavior):
    """Outcome fixed per (branch, call site): context-sensitive callees.

    A branch inside a shared function whose direction depends on *who
    called* — argument-dependent guards, the bread and butter of
    integer code. Each (site, caller) pair maps to one deterministic
    direction (via a hash), optionally flipped with probability ``noise``.

    This is the behaviour class where future bits genuinely beat history:
    for a branch near the end of a callee, the caller's identity lies many
    branches back (across the whole function body) — outside a history
    register — but the *post-return* branches of the caller are only a few
    predictions ahead, so the critic's future bits reveal the caller
    (the paper's taxi analogy: recognise the intersection by the streets
    that follow it).
    """

    kind = "caller"

    def __init__(self, noise: float = 0.0, salt: int = 0, depth: int = 1) -> None:
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be a probability")
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.noise = noise
        self.salt = salt
        #: How much of the call chain the outcome depends on. depth=2
        #: (grand-caller sensitivity) rewards *deep* future windows: the
        #: grand-caller's code only shows up in the prediction stream
        #: after the immediate caller has also returned.
        self.depth = depth

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        token = 0
        stack = ctx.caller_stack
        for level in range(1, self.depth + 1):
            caller = stack[-level] if len(stack) >= level else 0
            token = (token * 0x9E37) ^ caller
        value = site_hash_outcome(ctx.seed ^ self.salt, site ^ (token * 0x9E37), 0, 0.5)
        if self.noise > 0.0 and site_hash_outcome(
            ctx.seed ^ 0xCA11E4, site, ctx.occurrence_of(site), self.noise
        ):
            value = not value
        return value


class ModalBehavior(BranchBehavior):
    """Switches between child behaviours every ``period`` executions.

    Models program phases: within a phase the branch follows one child's
    law; at phase boundaries history-trained state goes stale, producing
    the systematic mispredict bursts critics learn to catch.
    """

    kind = "modal"

    def __init__(self, children: tuple[BranchBehavior, ...], period: int = 256) -> None:
        if len(children) < 2:
            raise ValueError("modal behaviour needs at least two children")
        if period < 1:
            raise ValueError("period must be positive")
        self.children = tuple(children)
        self.period = period

    def resolve(self, site: int, ctx: ExecutionContext) -> bool:
        phase = (ctx.occurrence_of(site) // self.period) % len(self.children)
        return self.children[phase].resolve(site, ctx)

    def reset(self) -> None:
        for child in self.children:
            child.reset()
