"""Random-program generator.

Builds closed CFG :class:`~repro.workloads.program.Program` instances from
a :class:`WorkloadProfile`. The construction is structured (functions made
of sequential segments: diamonds, loops, calls, straight-line code) so the
resulting control flow resembles compiled code: an outer driver loop in
``main`` calls leaf functions, loops nest one level, and conditional
branches carry behaviours drawn from the profile's mix.

The profile's knobs are the statistical levers the experiments rely on:

* ``behavior_mix`` controls the share of loops / patterns / random /
  correlated / path-correlated / modal branches — i.e. how much of the
  branch population is fundamentally predictable, and by what mechanism;
* ``static_branch_target`` scales table pressure (aliasing at small
  predictor budgets);
* ``correlation_distance`` stretches correlations beyond short history
  windows, creating the systematic mispredicts critics exploit.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.utils.rng import DeterministicRng
from repro.workloads.behaviors import (
    BiasedRandomBehavior,
    BranchBehavior,
    CallerCorrelatedBehavior,
    CorrelatedBehavior,
    LoopBehavior,
    ModalBehavior,
    PathCorrelatedBehavior,
    PatternBehavior,
)
from repro.workloads.program import BasicBlock, BlockKind, Program

#: Default behaviour mix, roughly integer-code-like.
DEFAULT_MIX: dict[str, float] = {
    "loop": 0.18,
    "pattern": 0.08,
    "random": 0.10,
    "correlated": 0.26,
    "path": 0.16,
    "modal": 0.10,
    "caller": 0.12,
}


@dataclass
class WorkloadProfile:
    """Parameters controlling synthetic program generation."""

    name: str = "custom"
    seed: int = 1
    #: Approximate number of static conditional branches to generate.
    static_branch_target: int = 160
    #: Minimum number of callable leaf functions (main is extra). The
    #: actual count is sized so leaves stay small (see leaf_segments):
    #: real programs are many small functions, and small callees are what
    #: put the caller's post-return branches within future-bit reach.
    n_functions: int = 6
    #: Segments per leaf function (range). Long enough that the callee
    #: body (with its loops) pushes the caller out of a history window;
    #: short enough that leaves stay numerous.
    leaf_segments: tuple[int, int] = (4, 10)
    #: Range of uops per basic block (branch density lever; the paper
    #: quotes one conditional branch every ~13 uops for IA32).
    uops_per_block: tuple[int, int] = (3, 16)
    #: Behaviour mix weights (normalised internally).
    behavior_mix: dict[str, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    #: Taken-bias range for random branches. Biases are sampled from the
    #: *edges* of this range (strongly biased branches dominate real code;
    #: mid-bias branches are the SERV suite's speciality).
    bias_range: tuple[float, float] = (0.05, 0.95)
    #: Fraction of random branches with mid-range (hard) bias.
    hard_random_fraction: float = 0.25
    #: Candidate loop trip counts. Small trips keep back-edges from
    #: dominating the dynamic branch mix (each back-edge fires trip times
    #: per loop visit).
    loop_trips: tuple[int, ...] = (2, 3, 4, 5, 8)
    #: Loop instances between trip-count changes for variable loops.
    loop_persistence: int = 64
    #: Fraction of loops whose trip count varies (phase-wise).
    variable_loop_fraction: float = 0.20
    #: Segment distance (≈ branches) back to correlation sources. Short
    #: distances land inside every predictor's history window; long ones
    #: are visible only to long-history components (perceptron critics,
    #: TAGE) — real code has both, dominated by short.
    correlation_distance: tuple[int, int] = (1, 8)
    #: Probability a correlated branch XORs two sources (non-linearly
    #: separable — the perceptron's blind spot, a tagged table's bread).
    correlation_two_source: float = 0.5
    #: Flip noise on correlated branches.
    correlation_noise: float = 0.03
    #: Flip noise on caller-correlated branches.
    caller_noise: float = 0.02
    #: Lengths of repeating patterns.
    pattern_lengths: tuple[int, ...] = (2, 3, 4, 5, 7)
    #: Window (in blocks) for path correlation.
    path_window: tuple[int, int] = (8, 48)
    #: Modal phase period (branch executions per phase).
    modal_period: tuple[int, int] = (96, 512)
    #: Probability a segment is a call to a leaf function.
    call_fraction: float = 0.18

    def normalised_mix(self) -> dict[str, float]:
        """Behaviour weights rescaled to sum to one (zero entries dropped).

        >>> mix = WorkloadProfile(behavior_mix={"loop": 3.0, "random": 1.0,
        ...                                     "pattern": 0.0}).normalised_mix()
        >>> (mix["loop"], mix["random"], "pattern" in mix)
        (0.75, 0.25, False)
        """
        total = sum(self.behavior_mix.values())
        if total <= 0:
            raise ValueError("behaviour mix must have positive total weight")
        return {k: v / total for k, v in self.behavior_mix.items() if v > 0}

    @classmethod
    def from_dict(cls, payload) -> "WorkloadProfile":
        """Rebuild a profile from its ``asdict`` form (e.g. a JSON config).

        JSON turns the tuple-valued fields (ranges, trip counts, pattern
        lengths) into lists; this constructor coerces them back so a
        round-tripped profile is *equal* to the original. Unknown keys
        are rejected, naming the valid field set.

        >>> from dataclasses import asdict
        >>> profile = WorkloadProfile(name="x", loop_trips=(2, 9))
        >>> WorkloadProfile.from_dict(asdict(profile)) == profile
        True
        """
        names = [f.name for f in fields(cls)]
        unknown = sorted(set(payload) - set(names))
        if unknown:
            raise ValueError(
                f"unknown key(s) {unknown} in workload profile; valid keys: {names}"
            )
        kwargs = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in payload.items()
        }
        return cls(**kwargs)


class ProgramGenerator:
    """Generates :class:`Program` instances from a :class:`WorkloadProfile`."""

    def __init__(self, profile: WorkloadProfile) -> None:
        self.profile = profile
        self._rng = DeterministicRng(profile.seed)
        self._blocks: list[BasicBlock] = []
        self._next_id = 0
        self._pc_cursor = 0x400000
        self._cond_sites: list[int] = []
        self._diamond_arms: list[int] = []
        self._watched: set[int] = set()
        # Position hints for behaviour placement (caller-correlated
        # branches want to sit late in leaf functions, near the return).
        self._building_leaf = False
        self._segment_fraction = 0.0

    # -- low-level builders ---------------------------------------------------

    def _new_block(self, kind: BlockKind, **kwargs) -> BasicBlock:
        uops = self._rng.randint(*self.profile.uops_per_block)
        block = BasicBlock(
            block_id=self._next_id,
            pc=self._pc_cursor,
            uops=uops,
            kind=kind,
            **kwargs,
        )
        self._blocks.append(block)
        self._next_id += 1
        self._pc_cursor += uops * 4 + 4
        return block

    def _pick_behavior(self) -> BranchBehavior:
        profile = self.profile
        mix = profile.normalised_mix()
        caller_weight = mix.pop("caller", 0.0)
        # Caller-correlated behaviour only makes sense inside callees, and
        # its *future-bit* signature requires sitting just before the
        # return: the caller's identity is then many dynamic branches
        # behind (across the callee body, loops included) but only one or
        # two predictions ahead. Restrict it to the tail of leaf functions.
        if caller_weight > 0.0 and self._building_leaf and self._segment_fraction >= 0.7:
            boosted = min(0.9, caller_weight * 6.0)
            if self._rng.random() < boosted:
                depth = 2 if self._rng.random() < 0.5 else 1
                return CallerCorrelatedBehavior(
                    noise=profile.caller_noise, salt=self.profile.seed, depth=depth
                )
        if not mix:
            return CallerCorrelatedBehavior(noise=profile.caller_noise, salt=self.profile.seed)
        kinds = list(mix.keys())
        weights = [mix[k] for k in kinds]
        kind = self._rng.weighted_choice(kinds, weights)
        if kind == "loop":
            return self._make_loop_behavior()
        if kind == "pattern":
            length = self._rng.choice(profile.pattern_lengths)
            pattern = "".join(self._rng.choice("TN") for _ in range(length))
            if set(pattern) == {"T"} or set(pattern) == {"N"}:
                pattern = "T" + pattern[1:-1] + "N" if length > 1 else "T"
            return PatternBehavior(pattern)
        if kind == "random":
            low, high = profile.bias_range
            if self._rng.random() < profile.hard_random_fraction:
                # Mid-range bias: genuinely hard, bounded-accuracy branch.
                bias = 0.35 + 0.3 * self._rng.random()
            elif self._rng.random() < 0.5:
                bias = low + 0.10 * self._rng.random()
            else:
                bias = high - 0.10 * self._rng.random()
            return BiasedRandomBehavior(min(1.0, max(0.0, bias)))
        if kind == "correlated":
            return self._make_correlated_behavior()
        if kind == "path":
            return self._make_path_behavior()
        if kind == "modal":
            low, high = profile.modal_period
            children = (
                self._make_correlated_behavior()
                if self._cond_sites and self._rng.random() < 0.5
                else PatternBehavior("TTN"),
                BiasedRandomBehavior(0.2 + 0.6 * self._rng.random()),
            )
            return ModalBehavior(children, period=self._rng.randint(low, high))
        raise ValueError(f"unknown behaviour kind {kind!r}")

    def _make_loop_behavior(self) -> LoopBehavior:
        profile = self.profile
        if self._rng.random() < profile.variable_loop_fraction and len(profile.loop_trips) >= 2:
            choices = tuple(
                self._rng.choice(profile.loop_trips) for _ in range(self._rng.randint(2, 3))
            )
            deduped = tuple(dict.fromkeys(choices))  # order-stable dedupe
            return LoopBehavior(
                trip_choices=deduped if len(deduped) >= 2 else (3, 5),
                persistence=profile.loop_persistence,
            )
        return LoopBehavior(trip_count=self._rng.choice(profile.loop_trips))

    def _make_correlated_behavior(self) -> BranchBehavior:
        if not self._cond_sites:
            return BiasedRandomBehavior(0.5)
        low, high = self.profile.correlation_distance
        # Short distances dominate (as in real code); the tail stays long.
        if self._rng.random() < 0.70:
            high = max(low, min(high, low + 2))
        distance = self._rng.randint(low, high)
        index = max(0, len(self._cond_sites) - distance)
        sources = [self._cond_sites[index]]
        if len(self._cond_sites) > 4 and self._rng.random() < self.profile.correlation_two_source:
            second = self._rng.choice(self._cond_sites[max(0, index - 3) : index + 3])
            if second != sources[0]:
                sources.append(second)
        return CorrelatedBehavior(
            tuple(sources),
            invert=self._rng.random() < 0.5,
            noise=self.profile.correlation_noise,
        )

    def _make_path_behavior(self) -> BranchBehavior:
        if not self._diamond_arms:
            return self._make_correlated_behavior()
        watched = self._rng.choice(self._diamond_arms[-12:])
        self._watched.add(watched)
        low, high = self.profile.path_window
        return PathCorrelatedBehavior(
            watched,
            window=self._rng.randint(low, high),
            invert=self._rng.random() < 0.5,
        )

    # -- segment builders -------------------------------------------------------
    #
    # Each builder creates blocks for one segment and returns (head_id,
    # tail_block) where tail_block's successor is patched to the next
    # segment's head by the caller.

    def _build_diamond(self) -> tuple[int, list[BasicBlock]]:
        cond = self._new_block(BlockKind.COND, behavior=self._pick_behavior())
        then_arm = self._new_block(BlockKind.JUMP)
        else_arm = self._new_block(BlockKind.JUMP)
        cond.taken_target = then_arm.block_id
        cond.fallthrough = else_arm.block_id
        self._cond_sites.append(cond.pc)
        self._diamond_arms.append(then_arm.block_id)
        # Both arms need their targets patched to the join (next segment).
        return cond.block_id, [then_arm, else_arm]

    def _build_loop(self) -> tuple[int, list[BasicBlock]]:
        body = self._new_block(BlockKind.JUMP)
        back_edge = self._new_block(BlockKind.COND, behavior=self._make_loop_behavior())
        body.taken_target = back_edge.block_id
        back_edge.taken_target = body.block_id  # loop while taken
        self._cond_sites.append(back_edge.pc)
        # Fallthrough (loop exit) patched to next segment.
        return body.block_id, [back_edge]

    def _build_call(self, callee_entry: int) -> tuple[int, list[BasicBlock]]:
        call = self._new_block(BlockKind.CALL, taken_target=callee_entry)
        # The call's fallthrough (return point) is patched to next segment.
        return call.block_id, [call]

    def _build_straight(self) -> tuple[int, list[BasicBlock]]:
        block = self._new_block(BlockKind.JUMP)
        return block.block_id, [block]

    def _patch(self, tails: list[BasicBlock], target: int) -> None:
        for block in tails:
            if block.kind is BlockKind.COND:
                block.fallthrough = target
            elif block.kind is BlockKind.CALL:
                block.fallthrough = target
            else:
                block.taken_target = target

    def _build_function(
        self, n_segments: int, callee_entries: list[int], is_main: bool
    ) -> int:
        """Build one function; return its entry block id."""
        entry_head: int | None = None
        pending_tails: list[BasicBlock] = []
        self._building_leaf = not is_main
        for segment_index in range(n_segments):
            self._segment_fraction = segment_index / max(1, n_segments - 1)
            roll = self._rng.random()
            if callee_entries and roll < self.profile.call_fraction:
                head, tails = self._build_call(self._rng.choice(callee_entries))
            elif roll < self.profile.call_fraction + 0.45:
                head, tails = self._build_diamond()
            elif roll < self.profile.call_fraction + 0.70:
                head, tails = self._build_loop()
            else:
                head, tails = self._build_straight()
            if entry_head is None:
                entry_head = head
            else:
                self._patch(pending_tails, head)
            pending_tails = tails
        if is_main:
            closer = self._new_block(BlockKind.JUMP, taken_target=entry_head)
        else:
            closer = self._new_block(BlockKind.RETURN)
        self._patch(pending_tails, closer.block_id)
        assert entry_head is not None
        return entry_head

    # -- public API ---------------------------------------------------------------

    def generate(self) -> Program:
        """Build the program described by the profile."""
        profile = self.profile
        # Budget segments so conditional branches land near the target:
        # diamonds and loops contribute one cond each; with the segment
        # type odds above, ~0.70 of non-call segments carry a cond.
        conds_per_segment = 0.70 * (1 - profile.call_fraction)
        total_segments = max(4, int(profile.static_branch_target / conds_per_segment))
        # main gets a third of the segments; small leaves share the rest.
        main_segments = max(4, total_segments // 3)
        leaf_budget = total_segments - main_segments
        mean_leaf = (profile.leaf_segments[0] + profile.leaf_segments[1]) / 2
        leaf_count = max(profile.n_functions, int(leaf_budget / mean_leaf))

        callee_entries: list[int] = []
        for _ in range(leaf_count):
            # Leaves may call any previously created leaf (acyclic call
            # graph, many call sites per callee).
            n_segments = self._rng.randint(*profile.leaf_segments)
            entry = self._build_function(n_segments, callee_entries, is_main=False)
            callee_entries.append(entry)
        main_entry = self._build_function(main_segments, callee_entries, is_main=True)

        program = Program(
            name=profile.name,
            blocks=self._blocks,
            entry=main_entry,
            seed=profile.seed,
            watched_blocks=self._watched,
        )
        program.validate()
        return program


def generate_program(profile: WorkloadProfile) -> Program:
    """One-shot convenience wrapper around :class:`ProgramGenerator`.

    Generation is deterministic in the profile — equal profiles yield
    structurally identical programs:

    >>> profile = WorkloadProfile(name="tiny", seed=42, static_branch_target=40)
    >>> first, second = generate_program(profile), generate_program(profile)
    >>> first.structure() == second.structure()
    True
    """
    return ProgramGenerator(profile).generate()
