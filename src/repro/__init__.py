"""repro — reproduction of "Prophet/Critic Hybrid Branch Prediction" (ISCA 2004).

Public API highlights
---------------------

* :mod:`repro.predictors` — the conventional predictor zoo (gshare,
  2Bc-gskew, perceptron, tagged gshare, filtered perceptron, TAGE, …) and
  the paper's Table-3 hardware-budget configurations.
* :mod:`repro.core` — the prophet/critic hybrid itself.
* :mod:`repro.workloads` — synthetic-program substrate standing in for the
  paper's proprietary LIT traces.
* :mod:`repro.engine` — BTB/FTQ/RAS and the speculative (wrong-path) fetch
  walker plus the architectural executor.
* :mod:`repro.sim` — functional accuracy simulation and metrics.
* :mod:`repro.pipeline` — Table-2 machine timing model (uPC).
* :mod:`repro.experiments` — one module per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
