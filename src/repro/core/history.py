"""History registers: the prophet's BHR and the critic's BOR.

Both are shift registers of branch outcomes/predictions; bit 0 holds the
most recently inserted bit. Values are plain integers, so a checkpoint is
just the value itself — restoring after a wrong-path excursion is O(1),
matching the paper's checkpoint repair (§3.3).
"""

from __future__ import annotations

from repro.utils.bitops import mask


class HistoryRegister:
    """Fixed-width shift register with integer checkpointing."""

    __slots__ = ("_mask", "_value", "width")

    def __init__(self, width: int, initial: int = 0) -> None:
        if width < 1:
            raise ValueError("history register needs at least one bit")
        self.width = width
        self._mask = mask(width)
        self._value = initial & self._mask

    @property
    def value(self) -> int:
        """Current register contents (bit 0 = most recent)."""
        return self._value

    def insert(self, taken: bool) -> None:
        """Shift in one outcome/prediction bit."""
        self._value = ((self._value << 1) | int(taken)) & self._mask

    def insert_bits(self, bits: int, count: int) -> None:
        """Shift in ``count`` bits at once (bit count-1 inserted first)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return
        self._value = ((self._value << count) | (bits & mask(count))) & self._mask

    def checkpoint(self) -> int:
        """Capture state; integers are immutable so this is free."""
        return self._value

    def restore(self, checkpoint: int) -> None:
        """Reinstate a previously captured state."""
        self._value = checkpoint & self._mask

    def bit(self, position: int) -> int:
        """Bit at ``position`` (0 = most recent)."""
        return (self._value >> position) & 1

    def clear(self) -> None:
        self._value = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HistoryRegister(width={self.width}, value={self._value:#x})"
