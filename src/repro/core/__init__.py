"""The paper's contribution: prophet/critic hybrid branch prediction.

* :class:`~repro.core.history.HistoryRegister` — BHR/BOR shift registers
  with O(1) integer checkpoints.
* :class:`~repro.core.hybrid.SinglePredictorSystem` — a conventional
  predictor + speculatively-updated BHR (the "prophet alone" baselines).
* :class:`~repro.core.hybrid.ProphetCriticSystem` — the hybrid: prophet
  BHR, critic BOR fed exclusively with prophet predictions, critiques
  after a configurable number of future bits, filtered or unfiltered
  critics, checkpoint repair, and commit-time training with the BOR value
  captured at critique time (wrong-path bits included, §3.3).
* :class:`~repro.core.critiques.CritiqueKind` /
  :class:`~repro.core.critiques.CritiqueCensus` — the §7.3 taxonomy.
"""

from repro.core.critiques import CritiqueCensus, CritiqueKind
from repro.core.history import HistoryRegister
from repro.core.hybrid import (
    InflightBranch,
    PredictionSystem,
    ProphetCriticSystem,
    SinglePredictorSystem,
)

__all__ = [
    "CritiqueCensus",
    "CritiqueKind",
    "HistoryRegister",
    "InflightBranch",
    "PredictionSystem",
    "ProphetCriticSystem",
    "SinglePredictorSystem",
]
