"""Critique taxonomy (paper §7.3, Figure 8 and Table 4).

Every committed branch's critique is classified along two axes — was the
prophet right, and what did the critic say (agree / disagree / none,
where "none" is the implicit agreement of a filter miss):

================== =====================================================
``correct_agree``     prophet right, critic concurred (harmless)
``correct_disagree``  prophet right, critic overrode — **the damage case**
``incorrect_agree``   prophet wrong, critic missed its chance
``incorrect_disagree`` prophet wrong, critic fixed it — **the win case**
``correct_none``      prophet right, filter miss (ideal filtering)
``incorrect_none``    prophet wrong, filter miss (lost opportunity)
================== =====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class CritiqueKind(enum.Enum):
    """Joint classification of prophet correctness × critic response."""

    CORRECT_AGREE = "correct_agree"
    CORRECT_DISAGREE = "correct_disagree"
    INCORRECT_AGREE = "incorrect_agree"
    INCORRECT_DISAGREE = "incorrect_disagree"
    CORRECT_NONE = "correct_none"
    INCORRECT_NONE = "incorrect_none"

    @staticmethod
    def classify(prophet_correct: bool, critic_hit: bool, critic_agreed: bool) -> "CritiqueKind":
        """Classify one committed branch."""
        if not critic_hit:
            return CritiqueKind.CORRECT_NONE if prophet_correct else CritiqueKind.INCORRECT_NONE
        if prophet_correct:
            return CritiqueKind.CORRECT_AGREE if critic_agreed else CritiqueKind.CORRECT_DISAGREE
        return CritiqueKind.INCORRECT_AGREE if critic_agreed else CritiqueKind.INCORRECT_DISAGREE


@dataclass
class CritiqueCensus:
    """Counters over the critique taxonomy."""

    counts: dict[CritiqueKind, int] = field(default_factory=lambda: {k: 0 for k in CritiqueKind})

    def record(self, kind: CritiqueKind) -> None:
        self.counts[kind] += 1

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def explicit_total(self) -> int:
        """Critiques where the filter hit (the population Figure 8 plots)."""
        return self.total - self.none_total

    @property
    def none_total(self) -> int:
        return self.counts[CritiqueKind.CORRECT_NONE] + self.counts[CritiqueKind.INCORRECT_NONE]

    def fraction(self, kind: CritiqueKind) -> float:
        """Share of all committed branches in ``kind``."""
        if self.total == 0:
            return 0.0
        return self.counts[kind] / self.total

    def overrides_won(self) -> int:
        """Mispredicts the critic fixed."""
        return self.counts[CritiqueKind.INCORRECT_DISAGREE]

    def overrides_lost(self) -> int:
        """Correct predictions the critic broke."""
        return self.counts[CritiqueKind.CORRECT_DISAGREE]

    def net_gain(self) -> int:
        """Mispredicts removed minus mispredicts introduced by the critic."""
        return self.overrides_won() - self.overrides_lost()

    def as_dict(self) -> dict[str, int]:
        """Plain-string keyed snapshot (report rendering)."""
        return {kind.value: count for kind, count in self.counts.items()}

    def merge(self, other: "CritiqueCensus") -> None:
        """Accumulate another census into this one."""
        for kind, count in other.counts.items():
            self.counts[kind] += count
