"""Prediction systems: the prophet/critic hybrid and the single-predictor baseline.

A *prediction system* owns the speculative history registers and exposes
the four operations the simulation driver needs, mirroring the hardware
events of §3 and §5:

``predict(pc)``
    Prophet predicts at fetch; the prediction is speculatively inserted
    into the BHR (and the critic's BOR) and an in-flight handle is
    returned carrying the checkpoints (§3.2, §3.3).
``critique(handle)``
    Critic re-predicts once the required future bits are in the BOR. The
    handle records the BOR value used — including any wrong-path bits —
    because commit-time training must reuse exactly that value (§3.3).
``apply_redirect(handle, final)``
    Critic disagreed: repair BHR/BOR to the branch's checkpoint and insert
    the final prediction; the front end re-fetches down the other edge (§5).
``resolve(handle, taken)`` / ``recover(handle, taken)``
    Commit-time, in program order: train the pattern tables
    non-speculatively; on a resolved mispredict restore the checkpoints
    and insert the actual outcome (§3.2, §3.3).

Hot-path variant: the driver pools :class:`InflightBranch` handles in a
ring and calls ``predict_into(handle, pc)`` / ``predict_static_into``
instead of the allocating ``predict``/``predict_static``. Both systems
also exploit predictor fast paths when present — ``predict_packed``/
``update_packed`` on prophets (pure index/hash state carried on the
handle from fetch to commit) and ``lookup_into``/``train_hashed`` on
filtered critics — falling back to the plain predictor interface
otherwise. Fast and classic paths are bit-for-bit identical; the
differential kernel tests enforce that.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.critiques import CritiqueKind
from repro.core.history import HistoryRegister
from repro.predictors.base import DirectionPredictor


@dataclass(slots=True)
class InflightBranch:
    """Everything a dynamic branch carries between fetch and commit.

    Instances are pooled by the driver: ``predict_into`` re-initialises
    every field a later stage may read, so a recycled handle can never
    leak state from its previous occupant.
    """

    pc: int
    prophet_pred: bool
    bhr_before: int
    bor_before: int
    #: Sequence number of this branch's BOR insertion (driver-managed).
    seq: int = 0
    #: BTB miss: no dynamic prediction was made (implicit not-taken).
    is_static: bool = False
    #: Filled in by critique().
    critiqued: bool = False
    final_pred: bool = False
    critic_hit: bool = False
    critic_pred: bool | None = None
    bor_at_critique: int = 0
    #: Opaque walker snapshot installed by the driver.
    walker_snapshot: object = None
    #: Flat walker checkpoint (block id + RAS tuple), driver-managed.
    snap_block: int = -1
    snap_ras: tuple = ()
    #: Prophet fast-path state (pure hash/index data from predict time).
    prophet_state: object = None
    #: Critic fast-path state: filter hash pair from critique time.
    critic_ix: int = -1
    critic_tag: int = 0
    #: Unfiltered-critic fast-path state (pure, from critique time).
    critic_state: object = None
    #: uops fetched with this branch's block (timing model bookkeeping).
    uops_hint: int = 1

    def critique_kind(self, taken: bool) -> CritiqueKind:
        """Classify this branch for the §7.3 census (after resolution)."""
        prophet_correct = self.prophet_pred == taken
        agreed = self.critic_pred == self.prophet_pred if self.critic_hit else True
        return CritiqueKind.classify(prophet_correct, self.critic_hit, agreed)

    def copy_fetch_fields(self, fresh: "InflightBranch") -> None:
        """Re-initialise this pooled handle from a freshly predicted one
        (fallback path for systems without a native ``predict_into``)."""
        self.pc = fresh.pc
        self.prophet_pred = fresh.prophet_pred
        self.bhr_before = fresh.bhr_before
        self.bor_before = fresh.bor_before
        self.is_static = fresh.is_static
        self.critiqued = False
        self.final_pred = False
        self.critic_hit = False
        self.critic_pred = None
        self.bor_at_critique = 0
        self.prophet_state = fresh.prophet_state
        self.critic_ix = -1
        self.critic_tag = 0
        self.critic_state = None
        self.uops_hint = 1


class PredictionSystem(abc.ABC):
    """Driver-facing interface shared by baselines and hybrids."""

    #: Future bits the critic waits for (0 = conventional-hybrid timing).
    future_bits: int = 0

    @abc.abstractmethod
    def predict(self, pc: int) -> InflightBranch:
        """Prophet prediction at fetch (speculative register update)."""

    @abc.abstractmethod
    def predict_static(self, pc: int) -> InflightBranch:
        """BTB miss: implicit not-taken, no register update, no training."""

    def predict_into(self, handle: InflightBranch, pc: int) -> None:
        """Pooled-handle variant of :meth:`predict`.

        The default delegates to :meth:`predict` and copies the result;
        concrete systems override it to fill the handle in place.
        """
        handle.copy_fetch_fields(self.predict(pc))

    def predict_static_into(self, handle: InflightBranch, pc: int) -> None:
        """Pooled-handle variant of :meth:`predict_static`."""
        handle.copy_fetch_fields(self.predict_static(pc))

    @abc.abstractmethod
    def critique(self, handle: InflightBranch) -> bool:
        """Produce the final prediction for the handle (sets handle fields)."""

    @abc.abstractmethod
    def apply_redirect(self, handle: InflightBranch, final: bool) -> None:
        """Critic disagreement: repair registers to the handle's checkpoint."""

    @abc.abstractmethod
    def resolve(self, handle: InflightBranch, taken: bool) -> None:
        """Commit: train tables non-speculatively, in program order."""

    @abc.abstractmethod
    def recover(self, handle: InflightBranch, taken: bool) -> None:
        """Resolved mispredict: restore checkpoints, insert actual outcome."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total modelled hardware budget."""

    def set_stats_enabled(self, enabled: bool) -> None:
        """Toggle per-prediction PredictorStats accounting (default on)."""

    def reset(self) -> None:
        """Clear learned and speculative state."""


class SinglePredictorSystem(PredictionSystem):
    """A conventional predictor with a speculatively-updated BHR.

    This is the paper's "prophet alone" baseline: same fetch-time
    speculative history insertion, same commit-time training, same
    checkpoint repair — just no critic.
    """

    future_bits = 0

    def __init__(self, predictor: DirectionPredictor) -> None:
        self.predictor = predictor
        self.bhr = HistoryRegister(max(predictor.history_length, 1))
        self._predict_packed = getattr(predictor, "predict_packed", None)
        self._update_packed = getattr(predictor, "update_packed", None)
        if self._update_packed is None:
            self._predict_packed = None  # state with no consumer is waste

    def predict(self, pc: int) -> InflightBranch:
        handle = InflightBranch(pc=pc, prophet_pred=False, bhr_before=0, bor_before=0)
        self.predict_into(handle, pc)
        return handle

    def predict_into(self, handle: InflightBranch, pc: int) -> None:
        # Only the fields critique() does not unconditionally rewrite
        # before any read need resetting on a pooled handle; critique
        # owns final_pred/critic_* and bor_at_critique.
        bhr = self.bhr
        bhr_before = bhr._value
        fast = self._predict_packed
        if fast is not None:
            pred, state = fast(pc, bhr_before)
        else:
            pred = self.predictor.predict(pc, bhr_before)
            state = None
        bhr._value = ((bhr_before << 1) | pred) & bhr._mask
        handle.pc = pc
        handle.prophet_pred = pred
        handle.bhr_before = bhr_before
        handle.bor_before = 0
        handle.is_static = False
        handle.critiqued = False
        handle.prophet_state = state

    def predict_static(self, pc: int) -> InflightBranch:
        handle = InflightBranch(pc=pc, prophet_pred=False, bhr_before=0, bor_before=0)
        self.predict_static_into(handle, pc)
        return handle

    def predict_static_into(self, handle: InflightBranch, pc: int) -> None:
        handle.pc = pc
        handle.prophet_pred = False
        handle.bhr_before = self.bhr._value
        handle.bor_before = 0
        handle.is_static = True
        handle.critiqued = False

    def critique(self, handle: InflightBranch) -> bool:
        handle.critiqued = True
        handle.final_pred = handle.prophet_pred
        handle.critic_hit = False
        return handle.final_pred

    def apply_redirect(self, handle: InflightBranch, final: bool) -> None:  # pragma: no cover
        raise RuntimeError("single-predictor systems never disagree with themselves")

    def resolve(self, handle: InflightBranch, taken: bool) -> None:
        if handle.is_static:
            return
        state = handle.prophet_state
        if state is not None:
            self._update_packed(handle.pc, handle.bhr_before, taken, handle.prophet_pred, state)
        else:
            self.predictor.update(handle.pc, handle.bhr_before, taken, handle.prophet_pred)

    def recover(self, handle: InflightBranch, taken: bool) -> None:
        self.bhr.restore(handle.bhr_before)
        self.bhr.insert(taken)

    def storage_bits(self) -> int:
        return self.predictor.storage_bits()

    def set_stats_enabled(self, enabled: bool) -> None:
        self.predictor.stats_enabled = enabled

    def reset(self) -> None:
        self.predictor.reset()
        self.bhr.clear()


class ProphetCriticSystem(PredictionSystem):
    """The paper's hybrid: prophet + BOR-fed critic with future bits.

    ``future_bits`` counts the branch's own prophet prediction as the
    first future bit (§7.1: "The first future bit is the prophet's
    prediction for the branch"), so a critique with F future bits is
    generated once the prophet has predicted this branch and the F-1 that
    follow it. ``future_bits=0`` reproduces the conventional-hybrid
    baseline of Figure 5 where the critic sees only history.

    Critics come in two shapes:

    * **filtered** (exposes ``lookup``/``train``: tagged gshare, filtered
      perceptron) — a tag miss is an implicit agree; training inserts on
      final-mispredict (§4);
    * **unfiltered** (plain :class:`DirectionPredictor`) — critiques every
      branch and trains on every branch (§7.2, Figure 6a).
    """

    def __init__(
        self,
        prophet: DirectionPredictor,
        critic: DirectionPredictor,
        future_bits: int = 8,
        insert_on: str = "final",
    ) -> None:
        if future_bits < 0:
            raise ValueError("future_bits must be non-negative")
        if insert_on not in ("final", "prophet"):
            raise ValueError("insert_on must be 'final' or 'prophet'")
        self.prophet = prophet
        self.critic = critic
        self.future_bits = future_bits
        #: Filter allocation trigger: the paper inserts on a (final)
        #: mispredict with a tag miss (§4); "prophet" is the ablation that
        #: inserts whenever the *prophet* was wrong even if the critic
        #: already fixed it.
        self.insert_on = insert_on
        self._insert_on_final = insert_on == "final"
        self.bhr = HistoryRegister(max(prophet.history_length, 1))
        self.bor = HistoryRegister(max(critic.history_length, future_bits, 1))
        self._critic_is_filtered = hasattr(critic, "lookup") and hasattr(critic, "train")
        # Fast paths (probed once; None = use the classic interface).
        self._prophet_predict_packed = getattr(prophet, "predict_packed", None)
        self._prophet_update_packed = getattr(prophet, "update_packed", None)
        if self._prophet_update_packed is None:
            self._prophet_predict_packed = None
        self._critic_lookup_into = getattr(critic, "lookup_into", None)
        self._critic_train_hashed = getattr(critic, "train_hashed", None)
        if self._critic_train_hashed is None:
            self._critic_lookup_into = None
        self._critic_predict_packed = None
        self._critic_update_packed = None
        if not self._critic_is_filtered:
            self._critic_predict_packed = getattr(critic, "predict_packed", None)
            self._critic_update_packed = getattr(critic, "update_packed", None)
            if self._critic_update_packed is None:
                self._critic_predict_packed = None

    # -- fetch ------------------------------------------------------------------

    def predict(self, pc: int) -> InflightBranch:
        handle = InflightBranch(pc=pc, prophet_pred=False, bhr_before=0, bor_before=0)
        self.predict_into(handle, pc)
        return handle

    def predict_into(self, handle: InflightBranch, pc: int) -> None:
        # Only the fields critique() does not unconditionally rewrite
        # before any read need resetting on a pooled handle; critique
        # owns final_pred/critic_* and bor_at_critique.
        bhr = self.bhr
        bor = self.bor
        bhr_before = bhr._value
        bor_before = bor._value
        fast = self._prophet_predict_packed
        if fast is not None:
            pred, state = fast(pc, bhr_before)
        else:
            pred = self.prophet.predict(pc, bhr_before)
            state = None
        # Speculative insertion: the prophet's prediction enters both its
        # own history and the critic's BOR (never the critic's output, §3.2).
        bit = 1 if pred else 0
        bhr._value = ((bhr_before << 1) | bit) & bhr._mask
        bor._value = ((bor_before << 1) | bit) & bor._mask
        handle.pc = pc
        handle.prophet_pred = pred
        handle.bhr_before = bhr_before
        handle.bor_before = bor_before
        handle.is_static = False
        handle.critiqued = False
        handle.prophet_state = state

    def predict_static(self, pc: int) -> InflightBranch:
        handle = InflightBranch(pc=pc, prophet_pred=False, bhr_before=0, bor_before=0)
        self.predict_static_into(handle, pc)
        return handle

    def predict_static_into(self, handle: InflightBranch, pc: int) -> None:
        handle.pc = pc
        handle.prophet_pred = False
        handle.bhr_before = self.bhr._value
        handle.bor_before = self.bor._value
        handle.is_static = True
        handle.critiqued = False

    # -- critique ------------------------------------------------------------------

    def critique(self, handle: InflightBranch) -> bool:
        handle.critiqued = True
        if handle.is_static:
            handle.final_pred = False
            handle.critic_hit = False
            return False
        # With F >= 1 the BOR now holds this branch's own prediction plus
        # the F-1 that followed; with F == 0 the critic sees exactly what
        # the prophet saw (conventional-hybrid information timing).
        bor_value = self.bor._value if self.future_bits >= 1 else handle.bor_before
        handle.bor_at_critique = bor_value
        lookup_into = self._critic_lookup_into
        if lookup_into is not None:
            if lookup_into(handle, handle.pc, bor_value):
                final = handle.critic_pred
            else:
                final = handle.prophet_pred
        elif self._critic_is_filtered:
            result = self.critic.lookup(handle.pc, bor_value)
            handle.critic_hit = result.hit
            handle.critic_pred = result.prediction
            final = result.prediction if result.hit else handle.prophet_pred
        else:
            fast = self._critic_predict_packed
            if fast is not None:
                pred, state = fast(handle.pc, bor_value)
                handle.critic_state = state
            else:
                pred = self.critic.predict(handle.pc, bor_value)
                handle.critic_state = None  # pooled handle: clear stale state
            handle.critic_hit = True
            handle.critic_pred = pred
            final = pred
        handle.final_pred = final
        return final

    def apply_redirect(self, handle: InflightBranch, final: bool) -> None:
        """Critic override: repair both registers to the critique point.

        The final prediction is inserted as the branch's speculative
        outcome and the prophet is redirected down that path (§5). The
        handle keeps its original ``bor_at_critique`` — commit-time
        training must see the wrong-path future bits (§3.3).
        """
        bhr = self.bhr
        bor = self.bor
        bit = 1 if final else 0
        bhr._value = ((handle.bhr_before << 1) | bit) & bhr._mask
        bor._value = ((handle.bor_before << 1) | bit) & bor._mask

    # -- commit ------------------------------------------------------------------

    def resolve(self, handle: InflightBranch, taken: bool) -> None:
        if handle.is_static:
            return
        state = handle.prophet_state
        if state is not None:
            self._prophet_update_packed(
                handle.pc, handle.bhr_before, taken, handle.prophet_pred, state
            )
        else:
            self.prophet.update(handle.pc, handle.bhr_before, taken, handle.prophet_pred)
        if not handle.critiqued:
            # Flushed before critique would mean never resolved; reaching
            # here implies a driver sequencing bug.
            raise RuntimeError("resolving a branch that was never critiqued")
        if self._insert_on_final:
            final_mispredict = handle.final_pred != taken
        else:
            final_mispredict = handle.prophet_pred != taken
        if self._critic_train_hashed is not None and handle.critic_ix >= 0:
            self._critic_train_hashed(
                handle.pc, handle.bor_at_critique, taken, final_mispredict,
                handle.critic_ix, handle.critic_tag,
            )
        elif self._critic_is_filtered:
            self.critic.train(handle.pc, handle.bor_at_critique, taken, final_mispredict)
        else:
            critic_state = handle.critic_state
            if critic_state is not None:
                self._critic_update_packed(
                    handle.pc, handle.bor_at_critique, taken,
                    bool(handle.critic_pred), critic_state,
                )
            else:
                self.critic.update(
                    handle.pc, handle.bor_at_critique, taken, bool(handle.critic_pred)
                )

    def recover(self, handle: InflightBranch, taken: bool) -> None:
        bhr = self.bhr
        bor = self.bor
        bit = 1 if taken else 0
        bhr._value = ((handle.bhr_before << 1) | bit) & bhr._mask
        bor._value = ((handle.bor_before << 1) | bit) & bor._mask

    def storage_bits(self) -> int:
        return self.prophet.storage_bits() + self.critic.storage_bits()

    def set_stats_enabled(self, enabled: bool) -> None:
        self.prophet.stats_enabled = enabled
        self.critic.stats_enabled = enabled

    def reset(self) -> None:
        self.prophet.reset()
        self.critic.reset()
        self.bhr.clear()
        self.bor.clear()
