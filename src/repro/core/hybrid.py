"""Prediction systems: the prophet/critic hybrid and the single-predictor baseline.

A *prediction system* owns the speculative history registers and exposes
the four operations the simulation driver needs, mirroring the hardware
events of §3 and §5:

``predict(pc)``
    Prophet predicts at fetch; the prediction is speculatively inserted
    into the BHR (and the critic's BOR) and an in-flight handle is
    returned carrying the checkpoints (§3.2, §3.3).
``critique(handle)``
    Critic re-predicts once the required future bits are in the BOR. The
    handle records the BOR value used — including any wrong-path bits —
    because commit-time training must reuse exactly that value (§3.3).
``apply_redirect(handle, final)``
    Critic disagreed: repair BHR/BOR to the branch's checkpoint and insert
    the final prediction; the front end re-fetches down the other edge (§5).
``resolve(handle, taken)`` / ``recover(handle, taken)``
    Commit-time, in program order: train the pattern tables
    non-speculatively; on a resolved mispredict restore the checkpoints
    and insert the actual outcome (§3.2, §3.3).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.critiques import CritiqueKind
from repro.core.history import HistoryRegister
from repro.predictors.base import DirectionPredictor


@dataclass(slots=True)
class InflightBranch:
    """Everything a dynamic branch carries between fetch and commit."""

    pc: int
    prophet_pred: bool
    bhr_before: int
    bor_before: int
    #: Sequence number of this branch's BOR insertion (driver-managed).
    seq: int = 0
    #: BTB miss: no dynamic prediction was made (implicit not-taken).
    is_static: bool = False
    #: Filled in by critique().
    critiqued: bool = False
    final_pred: bool = False
    critic_hit: bool = False
    critic_pred: bool | None = None
    bor_at_critique: int = 0
    #: Opaque walker snapshot installed by the driver.
    walker_snapshot: object = None
    #: uops fetched with this branch's block (timing model bookkeeping).
    uops_hint: int = 1

    def critique_kind(self, taken: bool) -> CritiqueKind:
        """Classify this branch for the §7.3 census (after resolution)."""
        prophet_correct = self.prophet_pred == taken
        agreed = self.critic_pred == self.prophet_pred if self.critic_hit else True
        return CritiqueKind.classify(prophet_correct, self.critic_hit, agreed)


class PredictionSystem(abc.ABC):
    """Driver-facing interface shared by baselines and hybrids."""

    #: Future bits the critic waits for (0 = conventional-hybrid timing).
    future_bits: int = 0

    @abc.abstractmethod
    def predict(self, pc: int) -> InflightBranch:
        """Prophet prediction at fetch (speculative register update)."""

    @abc.abstractmethod
    def predict_static(self, pc: int) -> InflightBranch:
        """BTB miss: implicit not-taken, no register update, no training."""

    @abc.abstractmethod
    def critique(self, handle: InflightBranch) -> bool:
        """Produce the final prediction for the handle (sets handle fields)."""

    @abc.abstractmethod
    def apply_redirect(self, handle: InflightBranch, final: bool) -> None:
        """Critic disagreement: repair registers to the handle's checkpoint."""

    @abc.abstractmethod
    def resolve(self, handle: InflightBranch, taken: bool) -> None:
        """Commit: train tables non-speculatively, in program order."""

    @abc.abstractmethod
    def recover(self, handle: InflightBranch, taken: bool) -> None:
        """Resolved mispredict: restore checkpoints, insert actual outcome."""

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Total modelled hardware budget."""

    def reset(self) -> None:
        """Clear learned and speculative state."""


class SinglePredictorSystem(PredictionSystem):
    """A conventional predictor with a speculatively-updated BHR.

    This is the paper's "prophet alone" baseline: same fetch-time
    speculative history insertion, same commit-time training, same
    checkpoint repair — just no critic.
    """

    future_bits = 0

    def __init__(self, predictor: DirectionPredictor) -> None:
        self.predictor = predictor
        self.bhr = HistoryRegister(max(predictor.history_length, 1))

    def predict(self, pc: int) -> InflightBranch:
        bhr_before = self.bhr.value
        pred = self.predictor.predict(pc, bhr_before)
        self.bhr.insert(pred)
        return InflightBranch(pc=pc, prophet_pred=pred, bhr_before=bhr_before, bor_before=0)

    def predict_static(self, pc: int) -> InflightBranch:
        return InflightBranch(
            pc=pc,
            prophet_pred=False,
            bhr_before=self.bhr.value,
            bor_before=0,
            is_static=True,
        )

    def critique(self, handle: InflightBranch) -> bool:
        handle.critiqued = True
        handle.final_pred = handle.prophet_pred
        handle.critic_hit = False
        return handle.final_pred

    def apply_redirect(self, handle: InflightBranch, final: bool) -> None:  # pragma: no cover
        raise RuntimeError("single-predictor systems never disagree with themselves")

    def resolve(self, handle: InflightBranch, taken: bool) -> None:
        if handle.is_static:
            return
        self.predictor.update(handle.pc, handle.bhr_before, taken, handle.prophet_pred)

    def recover(self, handle: InflightBranch, taken: bool) -> None:
        self.bhr.restore(handle.bhr_before)
        self.bhr.insert(taken)

    def storage_bits(self) -> int:
        return self.predictor.storage_bits()

    def reset(self) -> None:
        self.predictor.reset()
        self.bhr.clear()


class ProphetCriticSystem(PredictionSystem):
    """The paper's hybrid: prophet + BOR-fed critic with future bits.

    ``future_bits`` counts the branch's own prophet prediction as the
    first future bit (§7.1: "The first future bit is the prophet's
    prediction for the branch"), so a critique with F future bits is
    generated once the prophet has predicted this branch and the F-1 that
    follow it. ``future_bits=0`` reproduces the conventional-hybrid
    baseline of Figure 5 where the critic sees only history.

    Critics come in two shapes:

    * **filtered** (exposes ``lookup``/``train``: tagged gshare, filtered
      perceptron) — a tag miss is an implicit agree; training inserts on
      final-mispredict (§4);
    * **unfiltered** (plain :class:`DirectionPredictor`) — critiques every
      branch and trains on every branch (§7.2, Figure 6a).
    """

    def __init__(
        self,
        prophet: DirectionPredictor,
        critic: DirectionPredictor,
        future_bits: int = 8,
        insert_on: str = "final",
    ) -> None:
        if future_bits < 0:
            raise ValueError("future_bits must be non-negative")
        if insert_on not in ("final", "prophet"):
            raise ValueError("insert_on must be 'final' or 'prophet'")
        self.prophet = prophet
        self.critic = critic
        self.future_bits = future_bits
        #: Filter allocation trigger: the paper inserts on a (final)
        #: mispredict with a tag miss (§4); "prophet" is the ablation that
        #: inserts whenever the *prophet* was wrong even if the critic
        #: already fixed it.
        self.insert_on = insert_on
        self.bhr = HistoryRegister(max(prophet.history_length, 1))
        self.bor = HistoryRegister(max(critic.history_length, future_bits, 1))
        self._critic_is_filtered = hasattr(critic, "lookup") and hasattr(critic, "train")

    # -- fetch ------------------------------------------------------------------

    def predict(self, pc: int) -> InflightBranch:
        bhr_before = self.bhr.value
        bor_before = self.bor.value
        pred = self.prophet.predict(pc, bhr_before)
        # Speculative insertion: the prophet's prediction enters both its
        # own history and the critic's BOR (never the critic's output, §3.2).
        self.bhr.insert(pred)
        self.bor.insert(pred)
        return InflightBranch(
            pc=pc, prophet_pred=pred, bhr_before=bhr_before, bor_before=bor_before
        )

    def predict_static(self, pc: int) -> InflightBranch:
        return InflightBranch(
            pc=pc,
            prophet_pred=False,
            bhr_before=self.bhr.value,
            bor_before=self.bor.value,
            is_static=True,
        )

    # -- critique ------------------------------------------------------------------

    def critique(self, handle: InflightBranch) -> bool:
        handle.critiqued = True
        if handle.is_static:
            handle.final_pred = False
            handle.critic_hit = False
            return handle.final_pred
        # With F >= 1 the BOR now holds this branch's own prediction plus
        # the F-1 that followed; with F == 0 the critic sees exactly what
        # the prophet saw (conventional-hybrid information timing).
        bor_value = self.bor.value if self.future_bits >= 1 else handle.bor_before
        handle.bor_at_critique = bor_value
        if self._critic_is_filtered:
            result = self.critic.lookup(handle.pc, bor_value)
            handle.critic_hit = result.hit
            handle.critic_pred = result.prediction
            handle.final_pred = result.prediction if result.hit else handle.prophet_pred
        else:
            handle.critic_hit = True
            handle.critic_pred = self.critic.predict(handle.pc, bor_value)
            handle.final_pred = handle.critic_pred
        return handle.final_pred

    def apply_redirect(self, handle: InflightBranch, final: bool) -> None:
        """Critic override: repair both registers to the critique point.

        The final prediction is inserted as the branch's speculative
        outcome and the prophet is redirected down that path (§5). The
        handle keeps its original ``bor_at_critique`` — commit-time
        training must see the wrong-path future bits (§3.3).
        """
        self.bhr.restore(handle.bhr_before)
        self.bor.restore(handle.bor_before)
        self.bhr.insert(final)
        self.bor.insert(final)

    # -- commit ------------------------------------------------------------------

    def resolve(self, handle: InflightBranch, taken: bool) -> None:
        if handle.is_static:
            return
        self.prophet.update(handle.pc, handle.bhr_before, taken, handle.prophet_pred)
        if not handle.critiqued:
            # Flushed before critique would mean never resolved; reaching
            # here implies a driver sequencing bug.
            raise RuntimeError("resolving a branch that was never critiqued")
        if self.insert_on == "final":
            final_mispredict = handle.final_pred != taken
        else:
            final_mispredict = handle.prophet_pred != taken
        if self._critic_is_filtered:
            self.critic.train(handle.pc, handle.bor_at_critique, taken, final_mispredict)
        else:
            self.critic.update(handle.pc, handle.bor_at_critique, taken, bool(handle.critic_pred))

    def recover(self, handle: InflightBranch, taken: bool) -> None:
        self.bhr.restore(handle.bhr_before)
        self.bor.restore(handle.bor_before)
        self.bhr.insert(taken)
        self.bor.insert(taken)

    def storage_bits(self) -> int:
        return self.prophet.storage_bits() + self.critic.storage_bits()

    def reset(self) -> None:
        self.prophet.reset()
        self.critic.reset()
        self.bhr.clear()
        self.bor.clear()
