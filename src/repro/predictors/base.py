"""Base interface for direction predictors.

Design notes
------------

Predictors are *table machines*: they map a (PC, history value) pair to a
taken/not-taken prediction, and they learn from (PC, history value, actual
outcome) triples. The history register itself lives **outside** the
predictor — in the prophet's BHR or the critic's BOR — so the same class
can be used:

* as a standalone predictor (the paper's "prophet alone" baselines),
* as a prophet inside a hybrid (speculatively-updated BHR), or
* as a critic (BOR mixing history and future bits).

``update`` always receives the history value *that was used at prediction
time*; the engine is responsible for carrying it from prediction to commit,
which is exactly what hardware does by storing it with the in-flight branch.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass
class PredictorStats:
    """Lifetime accuracy counters, kept by every predictor."""

    predictions: int = 0
    correct: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def mispredicts(self) -> int:
        return self.predictions - self.correct

    @property
    def accuracy(self) -> float:
        """Fraction of predictions that were correct (1.0 when unused)."""
        if self.predictions == 0:
            return 1.0
        return self.correct / self.predictions

    def record(self, was_correct: bool) -> None:
        self.predictions += 1
        if was_correct:
            self.correct += 1


class DirectionPredictor(abc.ABC):
    """Abstract conditional-branch direction predictor.

    Subclasses must implement :meth:`predict`, :meth:`update` and
    :meth:`storage_bits`. ``history_length`` announces how many history
    bits the predictor consumes; the engine sizes the BHR/BOR to the
    maximum over all components.

    Packed fast path (optional)
    ---------------------------

    Hot-loop callers (the simulation driver via the prediction systems)
    probe for a ``predict_packed(pc, history) -> (prediction, state)`` /
    ``update_packed(pc, history, taken, predicted, state)`` pair. The
    state is an opaque value capturing whatever pure function of
    ``(pc, history)`` the predictor computes on both sides — table
    indices, hashes, folded histories — so commit-time training skips
    recomputing it. Implementations must read *mutable* structures
    (counters, tags, usefulness) afresh at update time: only pure
    derivations may ride in the state, keeping packed and classic paths
    bit-for-bit identical.

    Per-prediction accounting in :attr:`stats` can be switched off by
    setting :attr:`stats_enabled` — throughput harnesses do — and every
    ``update``/``update_packed`` must honour the flag.
    """

    #: Number of history bits consumed from the supplied history value.
    history_length: int = 0

    #: Human-readable short name, used in experiment tables.
    name: str = "predictor"

    #: When False, update() skips PredictorStats accounting entirely.
    stats_enabled: bool = True

    def __init__(self) -> None:
        self.stats = PredictorStats()

    @abc.abstractmethod
    def predict(self, pc: int, history: int) -> bool:
        """Predict the direction of the branch at ``pc``.

        ``history`` is the current value of the caller's history register
        (bit 0 = most recent outcome).
        """

    @abc.abstractmethod
    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        """Train on the resolved branch.

        ``history`` must be the value passed to :meth:`predict` for this
        dynamic instance, and ``predicted`` the direction this predictor
        returned. Implementations should call ``self.stats.record``.
        """

    @abc.abstractmethod
    def storage_bits(self) -> int:
        """Modelled hardware budget in bits (tables, tags, weights)."""

    def storage_bytes(self) -> float:
        """Modelled hardware budget in bytes."""
        return self.storage_bits() / 8.0

    def reset(self) -> None:
        """Clear learned state (default: re-construct stats only)."""
        self.stats = PredictorStats()

    def __getstate__(self) -> dict:
        """Pickle without batched-kernel table caches.

        The batched kernel memoizes constant lookup tables on predictor
        instances as numpy ndarrays under ``*_np`` attributes (see
        ``sim.batched._np_table``). They are derivable constants, so
        shipping them with pool chunks or cache entries would bloat
        every pickle by megabytes — and would make predictor pickles
        depend on whether a batched run happened to touch the object
        first. Dropped here; rebuilt lazily on first batched use.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.endswith("_np")
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.storage_bits() / 8192.0:.1f}KB h={self.history_length}>"
