"""Conventional branch predictor zoo.

Every predictor here is *stateless with respect to branch history*: the
caller owns the history register (BHR or BOR) and passes its current value
to :meth:`~repro.predictors.base.DirectionPredictor.predict` and
:meth:`~repro.predictors.base.DirectionPredictor.update`. This inversion is
what lets the same predictor classes serve as prophets (driven by a
speculatively-updated BHR) and as critics (driven by a BOR that mixes
history and future bits) without modification — the property the paper
relies on when it says "any predictor can play the role of prophet or
critic" (§6).
"""

from repro.predictors.base import DirectionPredictor, PredictorStats
from repro.predictors.bimodal import BimodalPredictor
from repro.predictors.budget import (
    PREDICTOR_BUDGETS,
    budget_table_rows,
    make_critic,
    make_predictor,
    make_prophet,
)
from repro.predictors.counters import CounterTable, SaturatingCounter
from repro.predictors.filtered_perceptron import FilteredPerceptronPredictor
from repro.predictors.gas import GAsPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.local import LocalHistoryPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.static import AlwaysNotTakenPredictor, AlwaysTakenPredictor
from repro.predictors.tage import TagePredictor
from repro.predictors.tagged_gshare import TaggedGsharePredictor
from repro.predictors.tournament import TournamentPredictor
from repro.predictors.yags import YagsPredictor

__all__ = [
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "CounterTable",
    "DirectionPredictor",
    "FilteredPerceptronPredictor",
    "GAsPredictor",
    "GsharePredictor",
    "LocalHistoryPredictor",
    "PREDICTOR_BUDGETS",
    "PerceptronPredictor",
    "PredictorStats",
    "SaturatingCounter",
    "TagePredictor",
    "TaggedGsharePredictor",
    "TournamentPredictor",
    "TwoBcGskewPredictor",
    "YagsPredictor",
    "budget_table_rows",
    "make_critic",
    "make_predictor",
    "make_prophet",
]
