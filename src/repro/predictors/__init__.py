"""Conventional branch predictor zoo.

Every predictor here is *stateless with respect to branch history*: the
caller owns the history register (BHR or BOR) and passes its current value
to :meth:`~repro.predictors.base.DirectionPredictor.predict` and
:meth:`~repro.predictors.base.DirectionPredictor.update`. This inversion is
what lets the same predictor classes serve as prophets (driven by a
speculatively-updated BHR) and as critics (driven by a BOR that mixes
history and future bits) without modification — the property the paper
relies on when it says "any predictor can play the role of prophet or
critic" (§6).

Every module registers its predictor in the string-keyed **registry**
(:mod:`repro.predictors.registry`) under a ``kind`` name, with a typed
geometry dataclass and a role capability — importing this package
populates the registry. :func:`~repro.predictors.registry.build_predictor`
constructs any registered kind at any geometry;
:mod:`repro.predictors.budget` layers the paper's Table-3 presets on top.
"""

from repro.predictors.base import DirectionPredictor, PredictorStats
from repro.predictors.bimodal import BimodalParams, BimodalPredictor
from repro.predictors.budget import (
    BUDGETS_KB,
    PREDICTOR_BUDGETS,
    budget_table_rows,
    budgeted_kinds,
    make_critic,
    make_predictor,
    make_prophet,
    params_for,
)
from repro.predictors.counters import CounterTable, SaturatingCounter
from repro.predictors.filtered_perceptron import (
    FilteredPerceptronParams,
    FilteredPerceptronPredictor,
)
from repro.predictors.gas import GasParams, GAsPredictor
from repro.predictors.gshare import GshareParams, GsharePredictor
from repro.predictors.gskew import GskewParams, TwoBcGskewPredictor
from repro.predictors.local import LocalHistoryParams, LocalHistoryPredictor
from repro.predictors.perceptron import PerceptronParams, PerceptronPredictor
from repro.predictors.registry import (
    ROLE_CRITIC,
    ROLE_PROPHET,
    PredictorInfo,
    build_predictor,
    coerce_params,
    critic_capable_kinds,
    predictor_info,
    register_predictor,
    registered_kinds,
    registered_predictors,
    require_critic_capable,
)
from repro.predictors.static import (
    AlwaysNotTakenPredictor,
    AlwaysTakenPredictor,
    StaticParams,
)
from repro.predictors.tage import TageParams, TagePredictor
from repro.predictors.tagged_gshare import TaggedGshareParams, TaggedGsharePredictor
from repro.predictors.tournament import TournamentParams, TournamentPredictor
from repro.predictors.yags import YagsParams, YagsPredictor

__all__ = [
    "AlwaysNotTakenPredictor",
    "AlwaysTakenPredictor",
    "BUDGETS_KB",
    "BimodalParams",
    "BimodalPredictor",
    "CounterTable",
    "DirectionPredictor",
    "FilteredPerceptronParams",
    "FilteredPerceptronPredictor",
    "GAsPredictor",
    "GasParams",
    "GshareParams",
    "GsharePredictor",
    "GskewParams",
    "LocalHistoryParams",
    "LocalHistoryPredictor",
    "PREDICTOR_BUDGETS",
    "PerceptronParams",
    "PerceptronPredictor",
    "PredictorInfo",
    "PredictorStats",
    "ROLE_CRITIC",
    "ROLE_PROPHET",
    "SaturatingCounter",
    "StaticParams",
    "TageParams",
    "TagePredictor",
    "TaggedGshareParams",
    "TaggedGsharePredictor",
    "TournamentParams",
    "TournamentPredictor",
    "TwoBcGskewPredictor",
    "YagsParams",
    "YagsPredictor",
    "budget_table_rows",
    "budgeted_kinds",
    "build_predictor",
    "coerce_params",
    "critic_capable_kinds",
    "make_critic",
    "make_predictor",
    "make_prophet",
    "params_for",
    "predictor_info",
    "register_predictor",
    "registered_kinds",
    "registered_predictors",
    "require_critic_capable",
]
