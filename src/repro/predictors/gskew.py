"""2Bc-gskew predictor (Seznec & Michaud, 1999) — the EV8-style baseline.

Four banks of 2-bit counters:

* **BIM** — bimodal, PC-indexed;
* **G0**, **G1** — gshare-like banks indexed with different *skewing*
  functions of (PC, global history), so that a pair colliding in one bank
  cannot collide in the others;
* **META** — chooser between the bimodal prediction and the majority vote
  of {BIM, G0, G1}.

The partial-update policy is the one published for 2Bc-gskew/EV8:

* correct & META chose bimodal → strengthen BIM only;
* correct & META chose majority → strengthen only the banks that voted
  with the outcome;
* mispredict → write the outcome into all three voting banks;
* META trains toward the source (bimodal vs majority) that was correct,
  and only when the two disagreed.

The paper's headline comparison (§1) pits an 8K+8K prophet/critic hybrid
against a 16KB instance of this predictor.
"""

from __future__ import annotations

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.utils.bitops import mask
from repro.utils.hashing import skew_h, skew_hinv


class TwoBcGskewPredictor(DirectionPredictor):
    """2Bc-gskew: BIM + two skewed global banks + META chooser."""

    name = "2bc-gskew"

    def __init__(self, entries_per_table: int, history_length: int | None = None) -> None:
        super().__init__()
        if entries_per_table & (entries_per_table - 1):
            raise ValueError("entries_per_table must be a power of two")
        self.entries_per_table = entries_per_table
        self._index_bits = entries_per_table.bit_length() - 1
        if history_length is None:
            history_length = self._index_bits
        self.history_length = history_length
        self.bim = CounterTable(entries_per_table, bits=2)
        self.g0 = CounterTable(entries_per_table, bits=2)
        self.g1 = CounterTable(entries_per_table, bits=2)
        self.meta = CounterTable(entries_per_table, bits=2)
        # Precomputed H / H^-1 images: the skewing functions run on every
        # predict and update, so table lookups beat recomputing the
        # bit-twiddling four times per branch.
        n = self._index_bits
        self._h_table = [skew_h(value, n) for value in range(1 << n)]
        self._hinv_table = [skew_hinv(value, n) for value in range(1 << n)]

    # -- indexing -----------------------------------------------------------

    def _bim_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._index_bits)

    def _skewed_index(self, bank: int, pc: int, history: int) -> int:
        n = self._index_bits
        v1 = (pc >> 2) & mask(n)
        v2 = ((history & mask(self.history_length)) ^ (pc >> (2 + n))) & mask(n)
        if bank == 0:
            return self._h_table[v1] ^ self._hinv_table[v2] ^ v2
        if bank == 1:
            return self._h_table[v1] ^ self._hinv_table[v2] ^ v1
        return self._hinv_table[v1] ^ self._h_table[v2] ^ v2

    # -- prediction ---------------------------------------------------------

    def _component_predictions(self, pc: int, history: int) -> tuple[bool, bool, bool, bool]:
        """Return (bim, g0, g1, meta_chooses_majority)."""
        bim = self.bim.taken(self._bim_index(pc))
        g0 = self.g0.taken(self._skewed_index(0, pc, history))
        g1 = self.g1.taken(self._skewed_index(1, pc, history))
        meta_majority = self.meta.taken(self._skewed_index(2, pc, history))
        return bim, g0, g1, meta_majority

    @staticmethod
    def _majority(bim: bool, g0: bool, g1: bool) -> bool:
        return (int(bim) + int(g0) + int(g1)) >= 2

    def predict(self, pc: int, history: int) -> bool:
        bim, g0, g1, meta_majority = self._component_predictions(pc, history)
        if meta_majority:
            return self._majority(bim, g0, g1)
        return bim

    # -- update -------------------------------------------------------------

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.stats.record(predicted == taken)
        bim_idx = self._bim_index(pc)
        g0_idx = self._skewed_index(0, pc, history)
        g1_idx = self._skewed_index(1, pc, history)
        meta_idx = self._skewed_index(2, pc, history)

        bim = self.bim.taken(bim_idx)
        g0 = self.g0.taken(g0_idx)
        g1 = self.g1.taken(g1_idx)
        meta_majority = self.meta.taken(meta_idx)
        majority = self._majority(bim, g0, g1)
        overall = majority if meta_majority else bim

        if overall == taken:
            if meta_majority:
                # Partial update: strengthen only the banks that voted right.
                if bim == taken:
                    self.bim.update(bim_idx, taken)
                if g0 == taken:
                    self.g0.update(g0_idx, taken)
                if g1 == taken:
                    self.g1.update(g1_idx, taken)
            else:
                self.bim.update(bim_idx, taken)
        else:
            # Mispredict: write the outcome into all voting banks.
            self.bim.update(bim_idx, taken)
            self.g0.update(g0_idx, taken)
            self.g1.update(g1_idx, taken)

        # META learns which source to trust, only on disagreement.
        if bim != majority:
            self.meta.update(meta_idx, majority == taken)

    def storage_bits(self) -> int:
        return (
            self.bim.storage_bits()
            + self.g0.storage_bits()
            + self.g1.storage_bits()
            + self.meta.storage_bits()
        )

    def reset(self) -> None:
        super().reset()
        for table in (self.bim, self.g0, self.g1, self.meta):
            table.reset()
