"""2Bc-gskew predictor (Seznec & Michaud, 1999) — the EV8-style baseline.

Four banks of 2-bit counters:

* **BIM** — bimodal, PC-indexed;
* **G0**, **G1** — gshare-like banks indexed with different *skewing*
  functions of (PC, global history), so that a pair colliding in one bank
  cannot collide in the others;
* **META** — chooser between the bimodal prediction and the majority vote
  of {BIM, G0, G1}.

The partial-update policy is the one published for 2Bc-gskew/EV8:

* correct & META chose bimodal → strengthen BIM only;
* correct & META chose majority → strengthen only the banks that voted
  with the outcome;
* mispredict → write the outcome into all three voting banks;
* META trains toward the source (bimodal vs majority) that was correct,
  and only when the two disagreed.

The paper's headline comparison (§1) pits an 8K+8K prophet/critic hybrid
against a 16KB instance of this predictor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import register_predictor
from repro.utils.bitops import mask
from repro.utils.hashing import skew_h, skew_hinv


class TwoBcGskewPredictor(DirectionPredictor):
    """2Bc-gskew: BIM + two skewed global banks + META chooser."""

    name = "2bc-gskew"

    def __init__(self, entries_per_table: int, history_length: int | None = None) -> None:
        super().__init__()
        if entries_per_table & (entries_per_table - 1):
            raise ValueError("entries_per_table must be a power of two")
        self.entries_per_table = entries_per_table
        self._index_bits = entries_per_table.bit_length() - 1
        if history_length is None:
            history_length = self._index_bits
        self.history_length = history_length
        self.bim = CounterTable(entries_per_table, bits=2)
        self.g0 = CounterTable(entries_per_table, bits=2)
        self.g1 = CounterTable(entries_per_table, bits=2)
        self.meta = CounterTable(entries_per_table, bits=2)
        # Precomputed H / H^-1 images: the skewing functions run on every
        # predict and update, so table lookups beat recomputing the
        # bit-twiddling four times per branch.
        n = self._index_bits
        self._h_table = [skew_h(value, n) for value in range(1 << n)]
        self._hinv_table = [skew_hinv(value, n) for value in range(1 << n)]
        # Hot-path constants and raw table references (identity-stable
        # across reset(), see CounterTable.raw).
        self._index_mask = mask(n)
        self._history_mask = mask(history_length)
        self._pc_high_shift = 2 + n
        self._bim_raw = self.bim.raw
        self._g0_raw = self.g0.raw
        self._g1_raw = self.g1.raw
        self._meta_raw = self.meta.raw

    # -- indexing -----------------------------------------------------------

    def _bim_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._index_bits)

    def _skewed_index(self, bank: int, pc: int, history: int) -> int:
        n = self._index_bits
        v1 = (pc >> 2) & mask(n)
        v2 = ((history & mask(self.history_length)) ^ (pc >> (2 + n))) & mask(n)
        if bank == 0:
            return self._h_table[v1] ^ self._hinv_table[v2] ^ v2
        if bank == 1:
            return self._h_table[v1] ^ self._hinv_table[v2] ^ v1
        return self._hinv_table[v1] ^ self._h_table[v2] ^ v2

    # -- prediction ---------------------------------------------------------

    def _component_predictions(self, pc: int, history: int) -> tuple[bool, bool, bool, bool]:
        """Return (bim, g0, g1, meta_chooses_majority)."""
        bim = self.bim.taken(self._bim_index(pc))
        g0 = self.g0.taken(self._skewed_index(0, pc, history))
        g1 = self.g1.taken(self._skewed_index(1, pc, history))
        meta_majority = self.meta.taken(self._skewed_index(2, pc, history))
        return bim, g0, g1, meta_majority

    @staticmethod
    def _majority(bim: bool, g0: bool, g1: bool) -> bool:
        return (int(bim) + int(g0) + int(g1)) >= 2

    def predict(self, pc: int, history: int) -> bool:
        bim, g0, g1, meta_majority = self._component_predictions(pc, history)
        if meta_majority:
            return self._majority(bim, g0, g1)
        return bim

    # -- packed fast path ----------------------------------------------------
    #
    # The four bank indices are pure functions of (pc, history); the engine
    # carries the prediction-time history to commit, so the driver-facing
    # systems compute the indices once at predict and replay them at
    # update. Counter *values* are always re-read at update time — other
    # in-flight branches may have trained the same entries — keeping the
    # packed path bit-identical to predict()/update().

    def _pack_indices(self, pc: int, history: int) -> int:
        n = self._index_bits
        index_mask = self._index_mask
        v1 = (pc >> 2) & index_mask
        v2 = ((history & self._history_mask) ^ (pc >> self._pc_high_shift)) & index_mask
        h = self._h_table
        hinv = self._hinv_table
        hv1 = h[v1]
        hinv_v2 = hinv[v2]
        g0_idx = hv1 ^ hinv_v2 ^ v2
        g1_idx = hv1 ^ hinv_v2 ^ v1
        meta_idx = hinv[v1] ^ h[v2] ^ v2
        return v1 | (g0_idx << n) | (g1_idx << (2 * n)) | (meta_idx << (3 * n))

    def predict_packed(self, pc: int, history: int) -> tuple[bool, int]:
        # _pack_indices fused in: computing the four indices as locals,
        # reading the banks, then packing avoids an immediate unpack.
        n = self._index_bits
        index_mask = self._index_mask
        v1 = (pc >> 2) & index_mask
        v2 = ((history & self._history_mask) ^ (pc >> self._pc_high_shift)) & index_mask
        h = self._h_table
        hinv = self._hinv_table
        hv1 = h[v1]
        hinv_v2 = hinv[v2]
        g0_idx = hv1 ^ hinv_v2 ^ v2
        g1_idx = hv1 ^ hinv_v2 ^ v1
        meta_idx = hinv[v1] ^ h[v2] ^ v2
        packed = v1 | (g0_idx << n) | (g1_idx << (2 * n)) | (meta_idx << (3 * n))
        bim = self._bim_raw[v1] > 1
        if self._meta_raw[meta_idx] > 1:
            g0 = self._g0_raw[g0_idx] > 1
            g1 = self._g1_raw[g1_idx] > 1
            return (bim + g0 + g1) >= 2, packed
        return bim, packed

    def update_packed(
        self, pc: int, history: int, taken: bool, predicted: bool, packed: int
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        n = self._index_bits
        index_mask = self._index_mask
        bim_idx = packed & index_mask
        g0_idx = (packed >> n) & index_mask
        g1_idx = (packed >> (2 * n)) & index_mask
        meta_idx = packed >> (3 * n)
        bim_raw = self._bim_raw
        g0_raw = self._g0_raw
        g1_raw = self._g1_raw

        bim_value = bim_raw[bim_idx]
        g0_value = g0_raw[g0_idx]
        g1_value = g1_raw[g1_idx]
        bim = bim_value > 1
        g0 = g0_value > 1
        g1 = g1_value > 1
        meta_majority = self._meta_raw[meta_idx] > 1
        majority = (bim + g0 + g1) >= 2
        overall = majority if meta_majority else bim

        # Same partial-update policy as the classic path, on raw 2-bit
        # counters: saturating step toward `taken` for the chosen banks.
        if taken:
            if overall == taken:
                if meta_majority:
                    if bim and bim_value < 3:
                        bim_raw[bim_idx] = bim_value + 1
                    if g0 and g0_value < 3:
                        g0_raw[g0_idx] = g0_value + 1
                    if g1 and g1_value < 3:
                        g1_raw[g1_idx] = g1_value + 1
                elif bim_value < 3:
                    bim_raw[bim_idx] = bim_value + 1
            else:
                if bim_value < 3:
                    bim_raw[bim_idx] = bim_value + 1
                if g0_value < 3:
                    g0_raw[g0_idx] = g0_value + 1
                if g1_value < 3:
                    g1_raw[g1_idx] = g1_value + 1
        else:
            if overall == taken:
                if meta_majority:
                    if not bim and bim_value > 0:
                        bim_raw[bim_idx] = bim_value - 1
                    if not g0 and g0_value > 0:
                        g0_raw[g0_idx] = g0_value - 1
                    if not g1 and g1_value > 0:
                        g1_raw[g1_idx] = g1_value - 1
                elif bim_value > 0:
                    bim_raw[bim_idx] = bim_value - 1
            else:
                if bim_value > 0:
                    bim_raw[bim_idx] = bim_value - 1
                if g0_value > 0:
                    g0_raw[g0_idx] = g0_value - 1
                if g1_value > 0:
                    g1_raw[g1_idx] = g1_value - 1

        # META learns which source to trust, only on disagreement.
        if bim != majority:
            self.meta.update(meta_idx, majority == taken)

    # -- update -------------------------------------------------------------

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.update_packed(pc, history, taken, predicted, self._pack_indices(pc, history))

    def storage_bits(self) -> int:
        return (
            self.bim.storage_bits()
            + self.g0.storage_bits()
            + self.g1.storage_bits()
            + self.meta.storage_bits()
        )

    def reset(self) -> None:
        super().reset()
        for table in (self.bim, self.g0, self.g1, self.meta):
            table.reset()

@dataclass(frozen=True)
class GskewParams:
    """Geometry schema for :class:`TwoBcGskewPredictor` (defaults: Table-3 8KB).

    ``history_length`` of None uses the per-table index width.
    """

    entries_per_table: int = 8 * 1024
    history_length: int | None = None

    def build(self) -> TwoBcGskewPredictor:
        return TwoBcGskewPredictor(self.entries_per_table, self.history_length)


register_predictor(
    "2bc-gskew",
    GskewParams,
    GskewParams.build,
    critic_capable=True,
    summary="BIM + two skewed global banks + META chooser (Seznec & Michaud)",
)
