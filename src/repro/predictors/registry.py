"""String-keyed predictor registry: kinds, parameter schemas, roles.

The paper's central claim is architectural — bolt a critic onto *any*
prophet and mispredictions drop — so the construction API must treat
predictors as open data, not a closed enum. Every module in
:mod:`repro.predictors` registers its predictor here under a string
``kind`` together with:

* a **typed geometry dataclass** (the parameter schema: entries, history
  lengths, sets/ways, tag widths, …) whose defaults are a sensible
  mid-size configuration;
* a **factory** turning a params instance into a fresh
  :class:`~repro.predictors.base.DirectionPredictor`;
* a **role capability**: critic-capable predictors consume the
  caller-supplied global history value (they can read the BOR with its
  future bits); prophet-only predictors ignore it or keep private local
  history, so placing one in the critic role is a spec error, caught
  here rather than as silently-useless hardware.

Everything downstream builds on this table: the Table-3 presets in
:mod:`repro.predictors.budget` are a thin layer over
:func:`build_predictor`, and :class:`repro.sim.specs.PredictorSpec`
round-trips ``(kind, params)`` pairs through JSON configs into sweepable,
cacheable systems.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Mapping

from repro.predictors.base import DirectionPredictor

#: The two roles a predictor can play inside a prediction system (§3).
ROLE_PROPHET = "prophet"
ROLE_CRITIC = "critic"
ROLES = (ROLE_PROPHET, ROLE_CRITIC)


@dataclass(frozen=True)
class PredictorInfo:
    """One registry entry: everything known about a predictor kind."""

    kind: str
    params_type: type
    factory: Callable[[Any], DirectionPredictor]
    critic_capable: bool
    summary: str = ""

    def param_names(self) -> tuple[str, ...]:
        """The schema's field names, in declaration order."""
        return tuple(f.name for f in fields(self.params_type))


_REGISTRY: dict[str, PredictorInfo] = {}


def register_predictor(
    kind: str,
    params_type: type,
    factory: Callable[[Any], DirectionPredictor],
    *,
    critic_capable: bool,
    summary: str = "",
) -> PredictorInfo:
    """Register a predictor kind (called at import time by each module).

    ``params_type`` must be a dataclass — its fields *are* the parameter
    schema, and :func:`coerce_params` validates config dicts against it.
    Re-registering an existing kind is an error: kinds are global names
    that spec hashing and result caching rely on.
    """
    if not is_dataclass(params_type):
        raise TypeError(f"params_type for {kind!r} must be a dataclass")
    if kind in _REGISTRY:
        raise ValueError(f"predictor kind {kind!r} is already registered")
    info = PredictorInfo(
        kind=kind,
        params_type=params_type,
        factory=factory,
        critic_capable=critic_capable,
        summary=summary,
    )
    _REGISTRY[kind] = info
    return info


def registered_kinds() -> list[str]:
    """All registered kind names, sorted."""
    return sorted(_REGISTRY)


def registered_predictors() -> list[PredictorInfo]:
    """All registry entries, sorted by kind."""
    return [_REGISTRY[kind] for kind in registered_kinds()]


def critic_capable_kinds() -> list[str]:
    """Kinds that may serve in the critic role, sorted."""
    return [kind for kind in registered_kinds() if _REGISTRY[kind].critic_capable]


def predictor_info(kind: str) -> PredictorInfo:
    """The registry entry for ``kind``.

    Raises a :class:`KeyError` naming every registered kind, so a typo'd
    config points straight at the valid vocabulary.
    """
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown predictor kind {kind!r}; registered kinds: {registered_kinds()}"
        ) from None


def require_critic_capable(kind: str) -> PredictorInfo:
    """Validate that ``kind`` may play the critic role."""
    info = predictor_info(kind)
    if not info.critic_capable:
        raise ValueError(
            f"{kind!r} cannot serve as a critic (critics must read the "
            f"caller-supplied BOR history); critic-capable kinds: "
            f"{critic_capable_kinds()}"
        )
    return info


def coerce_params(kind: str, params: Any = None) -> Any:
    """Normalise ``params`` into ``kind``'s geometry dataclass.

    Accepts ``None`` (the schema's defaults), an instance of the schema
    type, or a mapping (e.g. parsed JSON). Mappings are validated
    field-by-field: unknown keys raise a :class:`ValueError` listing the
    valid parameter names, and JSON lists are coerced to tuples so
    configs round-trip losslessly.
    """
    info = predictor_info(kind)
    if params is None:
        return info.params_type()
    if isinstance(params, info.params_type):
        return params
    if not isinstance(params, Mapping):
        raise TypeError(
            f"params for {kind!r} must be a {info.params_type.__name__} or a "
            f"mapping, got {type(params).__name__}"
        )
    names = info.param_names()
    unknown = sorted(set(params) - set(names))
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {unknown} for predictor kind {kind!r}; "
            f"valid parameters: {list(names)}"
        )
    kwargs = {
        key: tuple(value) if isinstance(value, list) else value
        for key, value in params.items()
    }
    try:
        return info.params_type(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"bad parameters for predictor kind {kind!r}: {exc}") from exc


def build_predictor(
    kind: str, params: Any = None, *, role: str = ROLE_PROPHET
) -> DirectionPredictor:
    """Instantiate a fresh predictor of ``kind`` for ``role``.

    ``params`` is anything :func:`coerce_params` accepts. The critic role
    is refused for prophet-only kinds — see the module docstring.
    """
    if role not in ROLES:
        raise ValueError(f"unknown predictor role {role!r}; roles: {list(ROLES)}")
    info = require_critic_capable(kind) if role == ROLE_CRITIC else predictor_info(kind)
    coerced = coerce_params(kind, params)
    try:
        return info.factory(coerced)
    except ValueError as exc:
        raise ValueError(f"bad geometry for predictor kind {kind!r}: {exc}") from exc
