"""Table-3 hardware-budget presets over the predictor registry.

Table 3 fixes, for every total hardware budget from 2KB to 32KB, the
geometry of each predictor used as prophet or critic:

===============  ======  ======  ======  ======  ======
predictor          2KB     4KB     8KB    16KB    32KB
===============  ======  ======  ======  ======  ======
gshare entries     8K      16K     32K     64K    128K
gshare history     13      14      15      16      17
perceptron #      113     163     282     348     565
perceptron hist    17      24      28      47      57
2Bc-gskew e/t      2K      4K      8K      16K     32K
2Bc-gskew hist     11      12      13      14      15
t.gshare entries  256*6   512*6   1024*6  2048*6  4096*6
t.gshare BOR       18      18      18      18      18
f.perceptron #     73     113     163     282     348
f.perc hist        13      17      24      28      47
f.perc filter     128*3   256*3   512*3   1024*3  2048*3
f.perc filt hist   18      18      18      18      18
===============  ======  ======  ======  ======  ======

This module is a *preset layer*, not the construction API: the presets
map ``(kind, budget_kb)`` to the registry's geometry dataclasses (see
:mod:`repro.predictors.registry`), and :func:`make_predictor` simply
expands a preset and hands it to
:func:`~repro.predictors.registry.build_predictor`. Any registered
predictor can be built at any geometry through the registry (or a
:class:`repro.sim.specs.PredictorSpec` config); Table 3 is just the
paper's named sample of that space.

:func:`make_prophet` and :func:`make_critic` are role-flavoured aliases
that also validate the predictor is usable in that role.
"""

from __future__ import annotations

from repro.predictors.base import DirectionPredictor
from repro.predictors.filtered_perceptron import FilteredPerceptronParams
from repro.predictors.gshare import GshareParams
from repro.predictors.gskew import GskewParams
from repro.predictors.perceptron import PerceptronParams
from repro.predictors.registry import (
    ROLE_CRITIC,
    build_predictor,
    predictor_info,
    require_critic_capable,
)
from repro.predictors.tage import TageParams
from repro.predictors.tagged_gshare import TaggedGshareParams

#: Budgets (in KB) that Table 3 defines.
BUDGETS_KB = (2, 4, 8, 16, 32)

#: Table-3 geometries: kind -> budget KB -> registry params instance.
PREDICTOR_BUDGETS: dict[str, dict[int, object]] = {
    "gshare": {
        2: GshareParams(8 * 1024, 13),
        4: GshareParams(16 * 1024, 14),
        8: GshareParams(32 * 1024, 15),
        16: GshareParams(64 * 1024, 16),
        32: GshareParams(128 * 1024, 17),
    },
    "perceptron": {
        2: PerceptronParams(113, 17),
        4: PerceptronParams(163, 24),
        8: PerceptronParams(282, 28),
        16: PerceptronParams(348, 47),
        32: PerceptronParams(565, 57),
    },
    "2bc-gskew": {
        2: GskewParams(2 * 1024, 11),
        4: GskewParams(4 * 1024, 12),
        8: GskewParams(8 * 1024, 13),
        16: GskewParams(16 * 1024, 14),
        32: GskewParams(32 * 1024, 15),
    },
    "tagged-gshare": {
        2: TaggedGshareParams(256, 6, 18),
        4: TaggedGshareParams(512, 6, 18),
        8: TaggedGshareParams(1024, 6, 18),
        16: TaggedGshareParams(2048, 6, 18),
        32: TaggedGshareParams(4096, 6, 18),
    },
    "filtered-perceptron": {
        2: FilteredPerceptronParams(73, 13, 128, 3, 18),
        4: FilteredPerceptronParams(113, 17, 256, 3, 18),
        8: FilteredPerceptronParams(163, 24, 512, 3, 18),
        16: FilteredPerceptronParams(282, 28, 1024, 3, 18),
        32: FilteredPerceptronParams(348, 47, 2048, 3, 18),
    },
}

#: TAGE budgets for the extension ablation (entries chosen to land close
#: to the byte budget; TAGE is not part of Table 3, so it stays out of
#: :data:`PREDICTOR_BUDGETS` and its tolerance bands).
_TAGE_BUDGETS: dict[int, TageParams] = {
    2: TageParams(base_entries=1024, component_entries=128),
    4: TageParams(base_entries=2048, component_entries=256),
    8: TageParams(base_entries=4096, component_entries=512),
    16: TageParams(base_entries=8192, component_entries=1024),
    32: TageParams(base_entries=16384, component_entries=2048),
}


def budgeted_kinds() -> list[str]:
    """Kinds that have budget presets (Table 3 plus the TAGE extension)."""
    return sorted([*PREDICTOR_BUDGETS, "tage"])


def params_for(kind: str, budget_kb: int):
    """The registry params instance for ``kind`` at the ``budget_kb`` preset.

    Unknown kinds raise a :class:`KeyError` listing the registered kinds;
    registered kinds without presets raise one listing the kinds that
    have them; unknown budgets raise one listing the valid budgets.
    """
    predictor_info(kind)  # unknown kinds fail here, naming the registry
    table = _TAGE_BUDGETS if kind == "tage" else PREDICTOR_BUDGETS.get(kind)
    if table is None:
        raise KeyError(
            f"predictor kind {kind!r} has no budget presets (kinds with "
            f"presets: {budgeted_kinds()}); build it from explicit params "
            "instead (see repro.predictors.registry / PredictorSpec)"
        )
    try:
        return table[budget_kb]
    except KeyError:
        raise KeyError(
            f"no {kind!r} preset at {budget_kb}KB; valid budgets: "
            f"{sorted(table)}"
        ) from None


def make_predictor(kind: str, budget_kb: int) -> DirectionPredictor:
    """Instantiate predictor ``kind`` at the Table-3 ``budget_kb`` geometry."""
    return build_predictor(kind, params_for(kind, budget_kb))


def make_prophet(kind: str, budget_kb: int) -> DirectionPredictor:
    """Build a predictor for the prophet role (any zoo member qualifies)."""
    return make_predictor(kind, budget_kb)


def make_critic(kind: str, budget_kb: int) -> DirectionPredictor:
    """Build a predictor for the critic role.

    Critics must consume a caller-supplied (BOR) history value; the
    registry tracks which kinds qualify (local-history and history-blind
    predictors do not).
    """
    require_critic_capable(kind)
    return build_predictor(kind, params_for(kind, budget_kb), role=ROLE_CRITIC)


def budget_table_rows() -> list[dict[str, object]]:
    """Render Table 3 as a list of row dicts (used by the Table-3 bench)."""
    rows: list[dict[str, object]] = []
    for kind, budgets in PREDICTOR_BUDGETS.items():
        for budget_kb in BUDGETS_KB:
            predictor = make_predictor(kind, budget_kb)
            rows.append(
                {
                    "predictor": kind,
                    "budget_kb": budget_kb,
                    "config": budgets[budget_kb],
                    "modelled_bytes": predictor.storage_bytes(),
                }
            )
    return rows
