"""Hardware-budget configurations — the paper's Table 3.

Table 3 fixes, for every total hardware budget from 2KB to 32KB, the
geometry of each predictor used as prophet or critic:

===============  ======  ======  ======  ======  ======
predictor          2KB     4KB     8KB    16KB    32KB
===============  ======  ======  ======  ======  ======
gshare entries     8K      16K     32K     64K    128K
gshare history     13      14      15      16      17
perceptron #      113     163     282     348     565
perceptron hist    17      24      28      47      57
2Bc-gskew e/t      2K      4K      8K      16K     32K
2Bc-gskew hist     11      12      13      14      15
t.gshare entries  256*6   512*6   1024*6  2048*6  4096*6
t.gshare BOR       18      18      18      18      18
f.perceptron #     73     113     163     282     348
f.perc hist        13      17      24      28      47
f.perc filter     128*3   256*3   512*3   1024*3  2048*3
f.perc filt hist   18      18      18      18      18
f.perc BOR         18      18      24      28      47
===============  ======  ======  ======  ======  ======

:func:`make_predictor` builds any predictor at any Table-3 budget;
:func:`make_prophet` and :func:`make_critic` are role-flavoured aliases
that also validate the predictor is usable in that role.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.filtered_perceptron import FilteredPerceptronPredictor
from repro.predictors.gshare import GsharePredictor
from repro.predictors.gskew import TwoBcGskewPredictor
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.tage import TagePredictor
from repro.predictors.tagged_gshare import TaggedGsharePredictor

#: Budgets (in KB) that Table 3 defines.
BUDGETS_KB = (2, 4, 8, 16, 32)


@dataclass(frozen=True)
class _GshareConfig:
    entries: int
    history: int


@dataclass(frozen=True)
class _PerceptronConfig:
    n_perceptrons: int
    history: int


@dataclass(frozen=True)
class _GskewConfig:
    entries_per_table: int
    history: int


@dataclass(frozen=True)
class _TaggedGshareConfig:
    sets: int
    ways: int
    bor_size: int


@dataclass(frozen=True)
class _FilteredPerceptronConfig:
    n_perceptrons: int
    history: int
    filter_sets: int
    filter_ways: int
    filter_history: int
    bor_size: int


PREDICTOR_BUDGETS: dict[str, dict[int, object]] = {
    "gshare": {
        2: _GshareConfig(8 * 1024, 13),
        4: _GshareConfig(16 * 1024, 14),
        8: _GshareConfig(32 * 1024, 15),
        16: _GshareConfig(64 * 1024, 16),
        32: _GshareConfig(128 * 1024, 17),
    },
    "perceptron": {
        2: _PerceptronConfig(113, 17),
        4: _PerceptronConfig(163, 24),
        8: _PerceptronConfig(282, 28),
        16: _PerceptronConfig(348, 47),
        32: _PerceptronConfig(565, 57),
    },
    "2bc-gskew": {
        2: _GskewConfig(2 * 1024, 11),
        4: _GskewConfig(4 * 1024, 12),
        8: _GskewConfig(8 * 1024, 13),
        16: _GskewConfig(16 * 1024, 14),
        32: _GskewConfig(32 * 1024, 15),
    },
    "tagged-gshare": {
        2: _TaggedGshareConfig(256, 6, 18),
        4: _TaggedGshareConfig(512, 6, 18),
        8: _TaggedGshareConfig(1024, 6, 18),
        16: _TaggedGshareConfig(2048, 6, 18),
        32: _TaggedGshareConfig(4096, 6, 18),
    },
    "filtered-perceptron": {
        2: _FilteredPerceptronConfig(73, 13, 128, 3, 18, 18),
        4: _FilteredPerceptronConfig(113, 17, 256, 3, 18, 18),
        8: _FilteredPerceptronConfig(163, 24, 512, 3, 18, 24),
        16: _FilteredPerceptronConfig(282, 28, 1024, 3, 18, 28),
        32: _FilteredPerceptronConfig(348, 47, 2048, 3, 18, 47),
    },
}

#: Predictors usable as critics (they read the BOR; filtered ones also
#: implement the lookup/train critic interface).
CRITIC_CAPABLE = ("gshare", "perceptron", "2bc-gskew", "tagged-gshare", "filtered-perceptron")

#: TAGE budgets for the extension ablation (entries chosen to land close
#: to the byte budget; TAGE is not part of Table 3).
_TAGE_BUDGETS: dict[int, tuple[int, int]] = {
    # budget KB -> (base_entries, component_entries)
    2: (1024, 128),
    4: (2048, 256),
    8: (4096, 512),
    16: (8192, 1024),
    32: (16384, 2048),
}


def make_predictor(kind: str, budget_kb: int) -> DirectionPredictor:
    """Instantiate predictor ``kind`` at the Table-3 ``budget_kb`` geometry.

    ``kind`` ∈ {gshare, perceptron, 2bc-gskew, tagged-gshare,
    filtered-perceptron, tage}.
    """
    if kind == "tage":
        if budget_kb not in _TAGE_BUDGETS:
            raise KeyError(f"no TAGE configuration for {budget_kb}KB")
        base, comp = _TAGE_BUDGETS[budget_kb]
        return TagePredictor(n_components=6, base_entries=base, component_entries=comp)
    try:
        config = PREDICTOR_BUDGETS[kind][budget_kb]
    except KeyError as exc:
        raise KeyError(f"no Table-3 configuration for {kind!r} at {budget_kb}KB") from exc
    if kind == "gshare":
        return GsharePredictor(config.entries, config.history)
    if kind == "perceptron":
        return PerceptronPredictor(config.n_perceptrons, config.history)
    if kind == "2bc-gskew":
        return TwoBcGskewPredictor(config.entries_per_table, config.history)
    if kind == "tagged-gshare":
        return TaggedGsharePredictor(config.sets, config.ways, config.bor_size)
    if kind == "filtered-perceptron":
        return FilteredPerceptronPredictor(
            config.n_perceptrons,
            config.history,
            config.filter_sets,
            config.filter_ways,
            config.filter_history,
        )
    raise KeyError(f"unknown predictor kind {kind!r}")


def make_prophet(kind: str, budget_kb: int) -> DirectionPredictor:
    """Build a predictor for the prophet role (any zoo member qualifies)."""
    return make_predictor(kind, budget_kb)


def make_critic(kind: str, budget_kb: int) -> DirectionPredictor:
    """Build a predictor for the critic role.

    Critics must consume a caller-supplied (BOR) history value; all Table-3
    predictors qualify, but local-history predictors would not.
    """
    if kind not in CRITIC_CAPABLE and kind != "tage":
        raise ValueError(f"{kind!r} cannot serve as a critic (must read a global BOR)")
    return make_predictor(kind, budget_kb)


def budget_table_rows() -> list[dict[str, object]]:
    """Render Table 3 as a list of row dicts (used by the Table-3 bench)."""
    rows: list[dict[str, object]] = []
    for kind, budgets in PREDICTOR_BUDGETS.items():
        for budget_kb in BUDGETS_KB:
            predictor = make_predictor(kind, budget_kb)
            rows.append(
                {
                    "predictor": kind,
                    "budget_kb": budget_kb,
                    "config": budgets[budget_kb],
                    "modelled_bytes": predictor.storage_bytes(),
                }
            )
    return rows
