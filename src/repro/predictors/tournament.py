"""McFarling combining (tournament) predictor.

Two component predictors run in parallel; a PC-indexed chooser table of
2-bit counters selects which component's prediction is used. This is the
"conventional hybrid" the paper contrasts with prophet/critic: both
components see the *same* information, and a selector (not future bits)
arbitrates. Keeping it in the zoo lets the experiments show what the
future bits add beyond plain hybridisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import build_predictor, coerce_params, register_predictor
from repro.utils.bitops import mask


class TournamentPredictor(DirectionPredictor):
    """Selector-based hybrid of two :class:`DirectionPredictor` components."""

    name = "tournament"

    def __init__(
        self,
        component_a: DirectionPredictor,
        component_b: DirectionPredictor,
        chooser_entries: int = 4096,
    ) -> None:
        super().__init__()
        if chooser_entries & (chooser_entries - 1):
            raise ValueError("chooser_entries must be a power of two")
        self.component_a = component_a
        self.component_b = component_b
        self.chooser = CounterTable(chooser_entries, bits=2)
        self._chooser_bits = chooser_entries.bit_length() - 1
        self.history_length = max(component_a.history_length, component_b.history_length)

    def _chooser_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._chooser_bits)

    def predict(self, pc: int, history: int) -> bool:
        pred_a = self.component_a.predict(pc, history)
        pred_b = self.component_b.predict(pc, history)
        # Chooser taken ⇒ trust component B (the "global" slot by convention).
        return pred_b if self.chooser.taken(self._chooser_index(pc)) else pred_a

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        pred_a = self.component_a.predict(pc, history)
        pred_b = self.component_b.predict(pc, history)
        self.component_a.update(pc, history, taken, pred_a)
        self.component_b.update(pc, history, taken, pred_b)
        # Train the chooser only when the components disagree: move toward
        # the component that was right.
        if pred_a != pred_b:
            self.chooser.update(self._chooser_index(pc), pred_b == taken)

    def storage_bits(self) -> int:
        return (
            self.component_a.storage_bits()
            + self.component_b.storage_bits()
            + self.chooser.storage_bits()
        )

    def reset(self) -> None:
        super().reset()
        self.component_a.reset()
        self.component_b.reset()
        self.chooser.reset()

def _component_geometry(descriptor) -> tuple:
    """Validate a component descriptor and resolve its ``(kind, params)``.

    A descriptor is a bare kind string (default geometry) or a
    ``{"kind": ..., "params": {...} | "budget_kb": N}`` mapping — the
    same vocabulary as :class:`repro.sim.specs.PredictorSpec` configs.
    Unknown kinds, unknown parameter names and missing budget presets
    all raise here, so specs embedding a tournament stay eagerly
    validated (never failing first inside a sweep worker).
    """
    if isinstance(descriptor, str):
        kind, params, budget_kb = descriptor, None, None
    else:
        try:
            mapping = dict(descriptor)
        except TypeError:
            mapping, kind = {}, None
        else:
            kind = mapping.pop("kind", None)
        params = mapping.pop("params", None)
        budget_kb = mapping.pop("budget_kb", None)
        if kind is None or mapping or (params is not None and budget_kb is not None):
            raise ValueError(
                "tournament components are bare kind strings or mappings with "
                "a 'kind' plus either 'params' or 'budget_kb'; got "
                f"{descriptor!r}"
            )
    if budget_kb is not None:
        from repro.predictors.budget import params_for

        return kind, params_for(kind, budget_kb)
    return kind, coerce_params(kind, params)


@dataclass(frozen=True)
class TournamentParams:
    """Composition schema for :class:`TournamentPredictor`.

    Components are nested predictor descriptors (kind string or
    ``{"kind", "params" | "budget_kb"}`` mapping), resolved through the
    registry — a tournament of any two registered prophets is a JSON
    config away. Descriptors are validated on construction.
    """

    component_a: Any = "bimodal"
    component_b: Any = "gshare"
    chooser_entries: int = 4096

    def __post_init__(self) -> None:
        _component_geometry(self.component_a)
        _component_geometry(self.component_b)

    def build(self) -> TournamentPredictor:
        return TournamentPredictor(
            build_predictor(*_component_geometry(self.component_a)),
            build_predictor(*_component_geometry(self.component_b)),
            self.chooser_entries,
        )


register_predictor(
    "tournament",
    TournamentParams,
    TournamentParams.build,
    critic_capable=False,  # the conventional-hybrid baseline; prophet role only
    summary="McFarling chooser over two registered component predictors",
)
