"""GAs two-level adaptive predictor (Yeh & Patt, 1992).

Global history register selects a row; low PC bits select a column (the
"set"). Unlike gshare there is no XOR — history and PC bits are
concatenated — so it suffers more aliasing at equal size, which is why the
paper cites de-aliased designs beating it. Included as a baseline and as a
building block for tests that demonstrate aliasing effects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import register_predictor
from repro.utils.bitops import mask


class GAsPredictor(DirectionPredictor):
    """GAs: concatenated {history, PC-set} index into a counter table."""

    name = "gas"

    def __init__(self, history_length: int, set_bits: int, counter_bits: int = 2) -> None:
        super().__init__()
        if history_length < 0 or set_bits < 0:
            raise ValueError("history_length and set_bits must be non-negative")
        if history_length + set_bits == 0:
            raise ValueError("predictor must index with at least one bit")
        self.history_length = history_length
        self.set_bits = set_bits
        self.entries = 1 << (history_length + set_bits)
        self.table = CounterTable(self.entries, bits=counter_bits)

    def _index(self, pc: int, history: int) -> int:
        hist = history & mask(self.history_length)
        pc_set = (pc >> 2) & mask(self.set_bits)
        return (hist << self.set_bits) | pc_set

    def predict(self, pc: int, history: int) -> bool:
        return self.table.taken(self._index(pc, history))

    def predict_packed(self, pc: int, history: int) -> tuple[bool, int]:
        index = self._index(pc, history)
        return self.table.taken(index), index

    def update_packed(
        self, pc: int, history: int, taken: bool, predicted: bool, index: int
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        self.table.update(index, taken)

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.update_packed(pc, history, taken, predicted, self._index(pc, history))

    def storage_bits(self) -> int:
        return self.table.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.table.reset()

@dataclass(frozen=True)
class GasParams:
    """Geometry schema for :class:`GAsPredictor`."""

    history_length: int = 8
    set_bits: int = 6
    counter_bits: int = 2

    def build(self) -> GAsPredictor:
        return GAsPredictor(self.history_length, self.set_bits, self.counter_bits)


register_predictor(
    "gas",
    GasParams,
    GasParams.build,
    critic_capable=True,  # indexes with the caller-supplied (BOR) history
    summary="two-level {history, PC-set} concatenation (Yeh & Patt, 1992)",
)
