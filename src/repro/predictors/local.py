"""PAg-style local-history two-level predictor.

A first-level table records per-branch local history; a shared second-level
counter table is indexed by that history. The Alpha 21264's tournament
predictor pairs one of these with a global-history component.

The local history table is updated non-speculatively at ``update`` time.
This predictor ignores the caller-supplied global history value (it keeps
its own first level), so it is usable as a standalone baseline and as a
tournament component, but it is not offered as a critic: critics must read
the BOR, which is global by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import register_predictor
from repro.utils.bitops import mask


class LocalHistoryPredictor(DirectionPredictor):
    """PAg: per-branch history rows index a shared counter table."""

    name = "local"
    history_length = 0  # consumes no *global* history

    def __init__(
        self,
        history_entries: int,
        local_history_length: int,
        counter_bits: int = 2,
        pattern_entries: int | None = None,
    ) -> None:
        super().__init__()
        if history_entries & (history_entries - 1):
            raise ValueError("history_entries must be a power of two")
        self.history_entries = history_entries
        self.local_history_length = local_history_length
        if pattern_entries is None:
            pattern_entries = 1 << local_history_length
        if pattern_entries & (pattern_entries - 1):
            raise ValueError("pattern_entries must be a power of two")
        self.pattern_entries = pattern_entries
        self._pattern_index_bits = pattern_entries.bit_length() - 1
        self._histories = np.zeros(history_entries, dtype=np.int64)
        self.table = CounterTable(pattern_entries, bits=counter_bits)

    def _history_index(self, pc: int) -> int:
        return (pc >> 2) & (self.history_entries - 1)

    def _pattern_index(self, local_history: int) -> int:
        return local_history & mask(self._pattern_index_bits)

    def local_history(self, pc: int) -> int:
        """Current local history bits recorded for the branch at ``pc``."""
        return int(self._histories[self._history_index(pc)]) & mask(self.local_history_length)

    def predict(self, pc: int, history: int) -> bool:
        return self.table.taken(self._pattern_index(self.local_history(pc)))

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        h_idx = self._history_index(pc)
        local = int(self._histories[h_idx]) & mask(self.local_history_length)
        self.table.update(self._pattern_index(local), taken)
        new_local = ((local << 1) | int(taken)) & mask(self.local_history_length)
        self._histories[h_idx] = new_local

    def storage_bits(self) -> int:
        first_level = self.history_entries * self.local_history_length
        return first_level + self.table.storage_bits()

    def reset(self) -> None:
        super().reset()
        self._histories[:] = 0
        self.table.reset()

@dataclass(frozen=True)
class LocalHistoryParams:
    """Geometry schema for :class:`LocalHistoryPredictor`.

    ``pattern_entries`` of None sizes the second level to
    ``2 ** local_history_length``.
    """

    history_entries: int = 1024
    local_history_length: int = 10
    counter_bits: int = 2
    pattern_entries: int | None = None

    def build(self) -> LocalHistoryPredictor:
        return LocalHistoryPredictor(
            self.history_entries,
            self.local_history_length,
            self.counter_bits,
            self.pattern_entries,
        )


register_predictor(
    "local",
    LocalHistoryParams,
    LocalHistoryParams.build,
    critic_capable=False,  # keeps private per-branch history; never reads a BOR
    summary="PAg two-level local-history predictor (Alpha 21264 component)",
)
