"""Set-associative tag stores used to filter critics (paper §4).

The filter answers one question per branch: *does the critic have an
opinion about this (branch address, BOR value) context?* A tag hit means
yes — the critic's prediction is used as the critique. A miss means the
critic implicitly agrees with the prophet.

Entries are allocated when a context misses **and** the final prediction
turned out wrong, so the table fills with exactly the contexts where the
prophet has been caught mispredicting. Replacement is LRU within a set.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class FilterStats:
    """Occupancy and traffic counters for a tag filter."""

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class TagFilter:
    """N-way set-associative tag store with true-LRU replacement."""

    def __init__(self, sets: int, ways: int, tag_bits: int) -> None:
        if sets < 1 or ways < 1:
            raise ValueError("filter needs at least one set and one way")
        if sets & (sets - 1):
            raise ValueError("sets must be a power of two")
        if not 1 <= tag_bits <= 30:
            raise ValueError("tag_bits out of supported range")
        self.sets = sets
        self.ways = ways
        self.tag_bits = tag_bits
        self.set_bits = sets.bit_length() - 1
        # tags[s][w] is the tag in way w of set s; None = invalid.
        self._tags: list[list[int | None]] = [[None] * ways for _ in range(sets)]
        # lru[s] lists way numbers from least- to most-recently used.
        self._lru: list[list[int]] = [list(range(ways)) for _ in range(sets)]
        self.stats = FilterStats()

    def _touch(self, set_index: int, way: int) -> None:
        order = self._lru[set_index]
        if order[-1] != way:
            order.remove(way)
            order.append(way)

    def lookup(self, set_index: int, tag: int) -> int | None:
        """Return the hit way, or None on miss. Updates LRU on hit."""
        stats = self.stats
        stats.lookups += 1
        row = self._tags[set_index]
        try:
            way = row.index(tag)
        except ValueError:
            return None
        stats.hits += 1
        self._touch(set_index, way)
        return way

    def probe(self, set_index: int, tag: int) -> int | None:
        """Like :meth:`lookup` but with no LRU or statistics side effects."""
        row = self._tags[set_index]
        try:
            return row.index(tag)
        except ValueError:
            return None

    def insert(self, set_index: int, tag: int) -> tuple[int, bool]:
        """Insert ``tag``, evicting the LRU way if the set is full.

        Returns ``(way, evicted)``.
        """
        row = self._tags[set_index]
        for way in range(self.ways):
            if row[way] is None:
                row[way] = tag
                self._touch(set_index, way)
                self.stats.inserts += 1
                return way, False
        victim = self._lru[set_index][0]
        row[victim] = tag
        self._touch(set_index, victim)
        self.stats.inserts += 1
        self.stats.evictions += 1
        return victim, True

    def occupancy(self) -> float:
        """Fraction of valid entries."""
        valid = sum(1 for row in self._tags for tag in row if tag is not None)
        return valid / (self.sets * self.ways)

    def storage_bits(self) -> int:
        """Tags plus per-set LRU state.

        True LRU over W ways needs ceil(log2(W!)) bits per set (the number
        of distinct recency orderings), the encoding hardware actually
        uses; charging per-way rank bits would overstate the budget.
        """
        orderings = 1
        for w in range(2, self.ways + 1):
            orderings *= w
        lru_bits_per_set = max(1, (orderings - 1).bit_length())
        return self.sets * (self.ways * self.tag_bits + lru_bits_per_set)

    def reset(self) -> None:
        for s in range(self.sets):
            self._tags[s] = [None] * self.ways
            self._lru[s] = list(range(self.ways))
        self.stats = FilterStats()
