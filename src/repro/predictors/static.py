"""Static (non-learning) predictors — baselines and test scaffolding."""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.registry import register_predictor


class AlwaysTakenPredictor(DirectionPredictor):
    """Predicts taken for every branch. Zero storage."""

    name = "always-taken"
    history_length = 0

    def predict(self, pc: int, history: int) -> bool:
        return True

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)

    def storage_bits(self) -> int:
        return 0


class AlwaysNotTakenPredictor(DirectionPredictor):
    """Predicts not-taken for every branch. Zero storage."""

    name = "always-not-taken"
    history_length = 0

    def predict(self, pc: int, history: int) -> bool:
        return False

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)

    def storage_bits(self) -> int:
        return 0


class BackwardTakenForwardNotTaken(DirectionPredictor):
    """BTFNT heuristic: backward branches (loops) taken, forward not.

    Needs the branch target to classify direction, so callers must install
    a target oracle via ``target_of``; defaults to predicting taken.
    """

    name = "btfnt"
    history_length = 0

    def __init__(self, target_of=None) -> None:
        super().__init__()
        self._target_of = target_of

    def predict(self, pc: int, history: int) -> bool:
        if self._target_of is None:
            return True
        target = self._target_of(pc)
        if target is None:
            return True
        return target <= pc

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)

    def storage_bits(self) -> int:
        return 0

@dataclass(frozen=True)
class StaticParams:
    """Static predictors have no geometry; the schema is empty."""

    def build_taken(self) -> AlwaysTakenPredictor:
        return AlwaysTakenPredictor()

    def build_not_taken(self) -> AlwaysNotTakenPredictor:
        return AlwaysNotTakenPredictor()


register_predictor(
    "always-taken",
    StaticParams,
    StaticParams.build_taken,
    critic_capable=False,  # consults no history at all
    summary="static taken baseline (zero storage)",
)

register_predictor(
    "always-not-taken",
    StaticParams,
    StaticParams.build_not_taken,
    critic_capable=False,
    summary="static not-taken baseline (zero storage)",
)
