"""Static (non-learning) predictors — baselines and test scaffolding."""

from __future__ import annotations

from repro.predictors.base import DirectionPredictor


class AlwaysTakenPredictor(DirectionPredictor):
    """Predicts taken for every branch. Zero storage."""

    name = "always-taken"
    history_length = 0

    def predict(self, pc: int, history: int) -> bool:
        return True

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)

    def storage_bits(self) -> int:
        return 0


class AlwaysNotTakenPredictor(DirectionPredictor):
    """Predicts not-taken for every branch. Zero storage."""

    name = "always-not-taken"
    history_length = 0

    def predict(self, pc: int, history: int) -> bool:
        return False

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)

    def storage_bits(self) -> int:
        return 0


class BackwardTakenForwardNotTaken(DirectionPredictor):
    """BTFNT heuristic: backward branches (loops) taken, forward not.

    Needs the branch target to classify direction, so callers must install
    a target oracle via ``target_of``; defaults to predicting taken.
    """

    name = "btfnt"
    history_length = 0

    def __init__(self, target_of=None) -> None:
        super().__init__()
        self._target_of = target_of

    def predict(self, pc: int, history: int) -> bool:
        if self._target_of is None:
            return True
        target = self._target_of(pc)
        if target is None:
            return True
        return target <= pc

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)

    def storage_bits(self) -> int:
        return 0
