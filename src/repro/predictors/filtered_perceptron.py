"""Filtered perceptron — the paper's second critic (§4, Table 3).

An ordinary perceptron predictor paired with an N-way associative table of
tags. The perceptron output and the tag lookup proceed in parallel; the
critic's prediction is offered only on a tag hit. A tag miss is an
implicit agreement with the prophet.

Table 3 gives the filter a fixed 18-bit slice of the BOR for its hashes
while the perceptron may read a longer slice (its history length), which
is why the two structures take separate history widths here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.filtering import TagFilter
from repro.predictors.perceptron import PerceptronPredictor
from repro.predictors.registry import register_predictor
from repro.predictors.tagged_gshare import CritiqueLookup
from repro.utils.hashing import index_hash, tag_hash


class FilteredPerceptronPredictor(DirectionPredictor):
    """Perceptron + tag filter, offered as a critic or standalone predictor."""

    name = "filtered-perceptron"

    def __init__(
        self,
        n_perceptrons: int,
        history_length: int,
        filter_sets: int,
        filter_ways: int = 3,
        filter_history_length: int = 18,
        tag_bits: int = 9,
    ) -> None:
        super().__init__()
        self.perceptron = PerceptronPredictor(n_perceptrons, history_length)
        self.filter = TagFilter(filter_sets, filter_ways, tag_bits)
        self.filter_history_length = filter_history_length
        self.tag_bits = tag_bits
        self.history_length = max(history_length, filter_history_length)

    def _set_index(self, pc: int, history: int) -> int:
        return index_hash(pc, history, self.filter.set_bits, self.filter_history_length)

    def _tag(self, pc: int, history: int) -> int:
        return tag_hash(pc, history, self.tag_bits, self.filter_history_length)

    # -- critic interface ------------------------------------------------------

    def lookup_into(self, handle, pc: int, history: int) -> bool:
        """Hot-path lookup writing straight into an in-flight handle.

        Same observable behaviour as :meth:`lookup`; additionally stashes
        the filter hash pair on the handle so training skips rehashing.
        """
        set_index = self._set_index(pc, history)
        tag = self._tag(pc, history)
        handle.critic_ix = set_index
        handle.critic_tag = tag
        way = self.filter.lookup(set_index, tag)
        if way is None:
            handle.critic_hit = False
            handle.critic_pred = None
            return False
        handle.critic_hit = True
        handle.critic_pred = self.perceptron.predict(pc, history)
        return True

    def train_hashed(
        self, pc: int, history: int, taken: bool, final_mispredict: bool,
        set_index: int, tag: int,
    ) -> None:
        """:meth:`train` with the filter hash pair precomputed at lookup."""
        way = self.filter.probe(set_index, tag)
        if way is not None:
            predicted = self.perceptron.predict(pc, history)
            if self.stats_enabled:
                self.stats.record(predicted == taken)
            self.perceptron.update(pc, history, taken, predicted)
            self.filter._touch(set_index, way)
            return
        if final_mispredict:
            self.filter.insert(set_index, tag)
            # Initialise the prediction structure toward the outcome, the
            # perceptron analogue of setting a counter weakly taken/not.
            predicted = self.perceptron.predict(pc, history)
            self.perceptron.update(pc, history, taken, predicted)

    def lookup(self, pc: int, history: int) -> CritiqueLookup:
        """Parallel tag probe + perceptron compute; opinion only on hit."""
        way = self.filter.lookup(self._set_index(pc, history), self._tag(pc, history))
        if way is None:
            return CritiqueLookup(hit=False, prediction=None)
        return CritiqueLookup(hit=True, prediction=self.perceptron.predict(pc, history))

    def train(self, pc: int, history: int, taken: bool, final_mispredict: bool) -> None:
        """Train on hits; allocate (and prime the perceptron) on mispredict+miss."""
        self.train_hashed(
            pc, history, taken, final_mispredict,
            self._set_index(pc, history), self._tag(pc, history),
        )

    # -- standalone DirectionPredictor interface -------------------------------

    def predict(self, pc: int, history: int) -> bool:
        result = self.lookup(pc, history)
        if result.hit:
            return bool(result.prediction)
        return True

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.train(pc, history, taken, final_mispredict=(predicted != taken))

    def storage_bits(self) -> int:
        return self.perceptron.storage_bits() + self.filter.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.perceptron.reset()
        self.filter.reset()

@dataclass(frozen=True)
class FilteredPerceptronParams:
    """Geometry schema for :class:`FilteredPerceptronPredictor` (Table-3 8KB)."""

    n_perceptrons: int = 163
    history_length: int = 24
    filter_sets: int = 512
    filter_ways: int = 3
    filter_history_length: int = 18
    tag_bits: int = 9

    def build(self) -> FilteredPerceptronPredictor:
        return FilteredPerceptronPredictor(
            self.n_perceptrons,
            self.history_length,
            self.filter_sets,
            self.filter_ways,
            self.filter_history_length,
            self.tag_bits,
        )


register_predictor(
    "filtered-perceptron",
    FilteredPerceptronParams,
    FilteredPerceptronParams.build,
    critic_capable=True,
    summary="perceptron behind a tagged filter (the paper's best critic)",
)
