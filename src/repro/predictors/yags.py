"""YAGS predictor (Eden & Mudge, 1998) — a de-aliased baseline.

YAGS keeps a bimodal *choice* table plus two small tagged caches that
record only the **exceptions**: the T-cache holds branches that go taken
when the choice table says not-taken, and the NT-cache the converse.
The paper cites YAGS alongside 2Bc-gskew as evidence that de-aliased
predictors beat larger aliased ones, so it earns a slot in the zoo (and
its tagged-exception structure is a direct ancestor of the tagged-gshare
critic).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import register_predictor
from repro.utils.bitops import mask


class _ExceptionCache:
    """Direct-mapped tagged counter cache used for YAGS exceptions."""

    def __init__(self, entries: int, tag_bits: int) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.tags: list[int | None] = [None] * entries
        self.counters = CounterTable(entries, bits=2)

    def probe(self, index: int, tag: int) -> bool:
        return self.tags[index] == tag

    def storage_bits(self) -> int:
        return self.entries * (self.tag_bits + 2)

    def reset(self) -> None:
        self.tags = [None] * self.entries
        self.counters.reset()


class YagsPredictor(DirectionPredictor):
    """YAGS: bimodal choice + taken/not-taken exception caches."""

    name = "yags"

    def __init__(self, choice_entries: int, cache_entries: int, history_length: int, tag_bits: int = 8) -> None:
        super().__init__()
        self.choice = CounterTable(choice_entries, bits=2)
        self._choice_bits = choice_entries.bit_length() - 1
        if choice_entries & (choice_entries - 1):
            raise ValueError("choice_entries must be a power of two")
        self.t_cache = _ExceptionCache(cache_entries, tag_bits)
        self.nt_cache = _ExceptionCache(cache_entries, tag_bits)
        self.history_length = history_length
        self.tag_bits = tag_bits

    def _choice_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._choice_bits)

    def _cache_index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (history & mask(self.history_length))) & mask(self.t_cache.index_bits)

    def _cache_tag(self, pc: int) -> int:
        return (pc >> 2) & mask(self.tag_bits)

    def predict(self, pc: int, history: int) -> bool:
        choice_taken = self.choice.taken(self._choice_index(pc))
        index = self._cache_index(pc, history)
        tag = self._cache_tag(pc)
        # Consult the cache that records exceptions to the choice direction.
        cache = self.nt_cache if choice_taken else self.t_cache
        if cache.probe(index, tag):
            return cache.counters.taken(index)
        return choice_taken

    def predict_packed(self, pc: int, history: int) -> tuple[bool, tuple[int, int, int]]:
        """Packed fast path: (choice index, cache index, tag) are pure."""
        choice_index = self._choice_index(pc)
        index = self._cache_index(pc, history)
        tag = self._cache_tag(pc)
        choice_taken = self.choice.taken(choice_index)
        cache = self.nt_cache if choice_taken else self.t_cache
        if cache.probe(index, tag):
            return cache.counters.taken(index), (choice_index, index, tag)
        return choice_taken, (choice_index, index, tag)

    def update_packed(
        self,
        pc: int,
        history: int,
        taken: bool,
        predicted: bool,
        state: tuple[int, int, int],
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        choice_index, index, tag = state
        # The choice direction is re-read: it may have trained since
        # prediction, and it selects which exception cache to consult.
        choice_taken = self.choice.taken(choice_index)
        cache = self.nt_cache if choice_taken else self.t_cache
        hit = cache.probe(index, tag)
        if hit:
            cache.counters.update(index, taken)
        elif taken != choice_taken:
            # Allocate an exception entry when the choice direction failed.
            cache.tags[index] = tag
            cache.counters.set_direction(index, taken)
        # The choice table trains except when it was (rightly) overridden:
        # standard YAGS policy — don't destroy a good bias because the
        # exception cache handled the outlier.
        if not (hit and cache.counters.taken(index) == taken and choice_taken != taken):
            self.choice.update(choice_index, taken)

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        state = (self._choice_index(pc), self._cache_index(pc, history), self._cache_tag(pc))
        self.update_packed(pc, history, taken, predicted, state)

    def storage_bits(self) -> int:
        return (
            self.choice.storage_bits()
            + self.t_cache.storage_bits()
            + self.nt_cache.storage_bits()
        )

    def reset(self) -> None:
        super().reset()
        self.choice.reset()
        self.t_cache.reset()
        self.nt_cache.reset()

@dataclass(frozen=True)
class YagsParams:
    """Geometry schema for :class:`YagsPredictor`."""

    choice_entries: int = 4096
    cache_entries: int = 1024
    history_length: int = 12
    tag_bits: int = 8

    def build(self) -> YagsPredictor:
        return YagsPredictor(
            self.choice_entries, self.cache_entries, self.history_length, self.tag_bits
        )


register_predictor(
    "yags",
    YagsParams,
    YagsParams.build,
    critic_capable=True,  # exception caches are indexed with the supplied history
    summary="bimodal choice + tagged exception caches (Eden & Mudge, 1998)",
)
