"""Saturating counters and counter tables — the basic prediction unit."""

from __future__ import annotations


class SaturatingCounter:
    """An n-bit saturating up/down counter.

    The counter saturates at 0 and ``2**bits - 1``. The direction predicted
    is taken when the counter is in the upper half of its range. A 2-bit
    instance is the classic Smith counter used by nearly every table-based
    predictor in the paper.
    """

    __slots__ = ("_value", "bits", "maximum")

    def __init__(self, bits: int = 2, initial: int | None = None) -> None:
        if bits < 1:
            raise ValueError("counter width must be at least 1 bit")
        self.bits = bits
        self.maximum = (1 << bits) - 1
        if initial is None:
            # Weakly not-taken: the conventional reset state.
            initial = (self.maximum >> 1)
        if not 0 <= initial <= self.maximum:
            raise ValueError(f"initial value {initial} out of range for {bits}-bit counter")
        self._value = initial

    @property
    def value(self) -> int:
        """Current raw counter value."""
        return self._value

    @property
    def taken(self) -> bool:
        """Predicted direction: taken iff in the upper half of the range."""
        return self._value > (self.maximum >> 1)

    @property
    def is_saturated(self) -> bool:
        """True when the counter is at either extreme."""
        return self._value in (0, self.maximum)

    def update(self, taken: bool) -> None:
        """Move one step toward ``taken``, saturating at the extremes."""
        if taken:
            if self._value < self.maximum:
                self._value += 1
        elif self._value > 0:
            self._value -= 1

    def set_direction(self, taken: bool) -> None:
        """Initialise to weakly taken / weakly not-taken (filter insertion)."""
        half = self.maximum >> 1
        self._value = half + 1 if taken else half

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SaturatingCounter(bits={self.bits}, value={self._value})"


class CounterTable:
    """A dense table of n-bit saturating counters backed by a plain list.

    Most predictors need thousands of counters and touch a handful per
    branch. A Python list of small ints makes every scalar read/write a
    couple of native ops; a numpy array here would pay the scalar-boxing
    toll (``int(arr[i])``) on every single counter access, which
    dominated the old kernel's predictor profile.

    The backing list's identity is stable for the lifetime of the table
    (``reset`` reuses it in place), so hot paths may cache a reference
    to :attr:`raw` alongside :attr:`midpoint` and index it directly.
    """

    __slots__ = ("_table", "bits", "maximum", "midpoint", "size")

    def __init__(self, size: int, bits: int = 2, initial: int | None = None) -> None:
        if size < 1:
            raise ValueError("table must have at least one entry")
        if not 1 <= bits <= 7:
            raise ValueError("CounterTable supports 1..7-bit counters")
        self.size = size
        self.bits = bits
        self.maximum = (1 << bits) - 1
        #: Decision boundary: a counter strictly above this predicts taken.
        self.midpoint = self.maximum >> 1
        if initial is None:
            initial = self.midpoint
        if not 0 <= initial <= self.maximum:
            raise ValueError("initial value out of counter range")
        self._table = [initial] * size

    @property
    def raw(self) -> list[int]:
        """The backing list (identity-stable across :meth:`reset`)."""
        return self._table

    def value(self, index: int) -> int:
        """Raw counter value at ``index``."""
        return self._table[index]

    def taken(self, index: int) -> bool:
        """Predicted direction of the counter at ``index``."""
        return self._table[index] > self.midpoint

    def confidence(self, index: int) -> int:
        """Distance from the decision boundary (0 = weakest)."""
        value = self._table[index]
        midpoint = self.maximum / 2.0
        return int(abs(value - midpoint))

    def update(self, index: int, taken: bool) -> None:
        """Saturating update of the counter at ``index`` toward ``taken``."""
        value = self._table[index]
        if taken:
            if value < self.maximum:
                self._table[index] = value + 1
        elif value > 0:
            self._table[index] = value - 1

    def set_direction(self, index: int, taken: bool) -> None:
        """Force the counter at ``index`` to weakly agree with ``taken``."""
        half = self.midpoint
        self._table[index] = half + 1 if taken else half

    def storage_bits(self) -> int:
        """Model storage cost in bits (counters only)."""
        return self.size * self.bits

    def reset(self, initial: int | None = None) -> None:
        """Reset every counter in place (default: weakly not-taken).

        In-place so that cached :attr:`raw` references stay valid.
        """
        if initial is None:
            initial = self.midpoint
        self._table[:] = [initial] * self.size
