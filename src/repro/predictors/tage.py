"""TAGE predictor (Seznec & Michaud, 2006) — extension for the ablations.

The paper's conclusion (§9) urges experimenting with newer components; the
design that ultimately superseded prophet/critic hybrids is TAGE, so the
repository carries a compact but faithful implementation: a bimodal base
plus N partially-tagged components indexed with geometrically increasing
history lengths, usefulness counters, and allocate-on-mispredict. The
ablation bench compares a prophet/critic hybrid against a TAGE of equal
budget (`experiments.ablations`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.utils.bitops import fold_bits, mask
from repro.utils.hashing import mix64


@dataclass
class _TageEntry:
    tag: int = 0
    ctr: int = 0  # signed 3-bit: -4..3; >= 0 predicts taken
    useful: int = 0  # 0..3
    valid: bool = False


class _TageComponent:
    """One partially-tagged TAGE bank."""

    def __init__(self, entries: int, tag_bits: int, history_length: int) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.history_length = history_length
        self.table = [_TageEntry() for _ in range(entries)]

    def index(self, pc: int, history: int) -> int:
        folded = fold_bits(history, self.history_length, self.index_bits)
        return ((pc >> 2) ^ (pc >> (2 + self.index_bits)) ^ folded) & mask(self.index_bits)

    def tag(self, pc: int, history: int) -> int:
        folded = fold_bits(history, self.history_length, self.tag_bits)
        folded2 = fold_bits(history, self.history_length, self.tag_bits - 1) << 1
        return ((pc >> 2) ^ folded ^ folded2) & mask(self.tag_bits)

    def storage_bits(self) -> int:
        # tag + 3-bit ctr + 2-bit useful + valid
        return self.entries * (self.tag_bits + 3 + 2 + 1)


class TagePredictor(DirectionPredictor):
    """TAGE with a bimodal base and geometric tagged components."""

    name = "tage"

    def __init__(
        self,
        n_components: int = 6,
        base_entries: int = 4096,
        component_entries: int = 1024,
        min_history: int = 5,
        max_history: int = 130,
        tag_bits: int = 9,
        seed: int = 0x7A6E,
    ) -> None:
        super().__init__()
        if n_components < 1:
            raise ValueError("TAGE needs at least one tagged component")
        self.base_entries = base_entries
        self._base_bits = base_entries.bit_length() - 1
        if base_entries & (base_entries - 1):
            raise ValueError("base_entries must be a power of two")
        self._base = [2] * base_entries  # 2-bit counters, weakly not-taken
        # Geometric history series L_i = min * (max/min)^(i/(n-1)).
        self.components: list[_TageComponent] = []
        for i in range(n_components):
            if n_components == 1:
                length = min_history
            else:
                ratio = (max_history / min_history) ** (i / (n_components - 1))
                length = max(1, int(round(min_history * ratio)))
            self.components.append(_TageComponent(component_entries, tag_bits, length))
        self.history_length = self.components[-1].history_length
        self._alloc_state = mix64(seed)

    # -- base bimodal ---------------------------------------------------------

    def _base_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._base_bits)

    def _base_predict(self, pc: int) -> bool:
        return self._base[self._base_index(pc)] >= 2

    def _base_update(self, pc: int, taken: bool) -> None:
        idx = self._base_index(pc)
        value = self._base[idx]
        if taken and value < 3:
            self._base[idx] = value + 1
        elif not taken and value > 0:
            self._base[idx] = value - 1

    # -- provider search --------------------------------------------------------

    def _find(self, pc: int, history: int) -> tuple[int | None, int | None]:
        """Return (provider component idx, alternate component idx)."""
        provider = None
        alternate = None
        for i in range(len(self.components) - 1, -1, -1):
            comp = self.components[i]
            entry = comp.table[comp.index(pc, history)]
            if entry.valid and entry.tag == comp.tag(pc, history):
                if provider is None:
                    provider = i
                else:
                    alternate = i
                    break
        return provider, alternate

    def predict(self, pc: int, history: int) -> bool:
        provider, _alternate = self._find(pc, history)
        if provider is None:
            return self._base_predict(pc)
        comp = self.components[provider]
        return comp.table[comp.index(pc, history)].ctr >= 0

    # -- update ------------------------------------------------------------------

    def _component_prediction(self, i: int, pc: int, history: int) -> bool:
        comp = self.components[i]
        return comp.table[comp.index(pc, history)].ctr >= 0

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.stats.record(predicted == taken)
        provider, alternate = self._find(pc, history)

        if provider is None:
            provider_pred = self._base_predict(pc)
            alt_pred = provider_pred
        else:
            provider_pred = self._component_prediction(provider, pc, history)
            if alternate is not None:
                alt_pred = self._component_prediction(alternate, pc, history)
            else:
                alt_pred = self._base_predict(pc)

        # Train the provider (or the base when no component hit).
        if provider is None:
            self._base_update(pc, taken)
        else:
            comp = self.components[provider]
            entry = comp.table[comp.index(pc, history)]
            if taken and entry.ctr < 3:
                entry.ctr += 1
            elif not taken and entry.ctr > -4:
                entry.ctr -= 1
            # Usefulness: the provider proved its worth when it beat the alt.
            if provider_pred != alt_pred:
                if provider_pred == taken and entry.useful < 3:
                    entry.useful += 1
                elif provider_pred != taken and entry.useful > 0:
                    entry.useful -= 1
            if alternate is None and provider == 0:
                self._base_update(pc, taken)

        # Allocate a longer-history entry on a provider mispredict.
        if provider_pred != taken:
            start = (provider + 1) if provider is not None else 0
            self._allocate(start, pc, history, taken)

    def _allocate(self, start: int, pc: int, history: int, taken: bool) -> None:
        candidates = []
        for i in range(start, len(self.components)):
            comp = self.components[i]
            entry = comp.table[comp.index(pc, history)]
            if not entry.valid or entry.useful == 0:
                candidates.append(i)
        if not candidates:
            # Pressure release: age everything on the allocation path.
            for i in range(start, len(self.components)):
                comp = self.components[i]
                entry = comp.table[comp.index(pc, history)]
                if entry.useful > 0:
                    entry.useful -= 1
            return
        # Prefer shorter histories with 2/3 probability (standard TAGE).
        self._alloc_state = mix64(self._alloc_state)
        pick = candidates[0]
        if len(candidates) > 1 and (self._alloc_state & 3) == 3:
            pick = candidates[1]
        comp = self.components[pick]
        entry = comp.table[comp.index(pc, history)]
        entry.valid = True
        entry.tag = comp.tag(pc, history)
        entry.ctr = 0 if taken else -1
        entry.useful = 0

    def storage_bits(self) -> int:
        return self.base_entries * 2 + sum(c.storage_bits() for c in self.components)

    def reset(self) -> None:
        super().reset()
        self._base = [2] * self.base_entries
        for comp in self.components:
            comp.table = [_TageEntry() for _ in range(comp.entries)]
