"""TAGE predictor (Seznec & Michaud, 2006) — extension for the ablations.

The paper's conclusion (§9) urges experimenting with newer components; the
design that ultimately superseded prophet/critic hybrids is TAGE, so the
repository carries a compact but faithful implementation: a bimodal base
plus N partially-tagged components indexed with geometrically increasing
history lengths, usefulness counters, and allocate-on-mispredict. The
ablation bench compares a prophet/critic hybrid against a TAGE of equal
budget (`experiments.ablations`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.registry import register_predictor
from repro.utils.bitops import fold_bits, mask
from repro.utils.hashing import mix64


@dataclass
class _TageEntry:
    tag: int = 0
    ctr: int = 0  # signed 3-bit: -4..3; >= 0 predicts taken
    useful: int = 0  # 0..3
    valid: bool = False


class _TageComponent:
    """One partially-tagged TAGE bank."""

    def __init__(self, entries: int, tag_bits: int, history_length: int) -> None:
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.history_length = history_length
        self.table = [_TageEntry() for _ in range(entries)]

    def index(self, pc: int, history: int) -> int:
        folded = fold_bits(history, self.history_length, self.index_bits)
        return ((pc >> 2) ^ (pc >> (2 + self.index_bits)) ^ folded) & mask(self.index_bits)

    def tag(self, pc: int, history: int) -> int:
        folded = fold_bits(history, self.history_length, self.tag_bits)
        folded2 = fold_bits(history, self.history_length, self.tag_bits - 1) << 1
        return ((pc >> 2) ^ folded ^ folded2) & mask(self.tag_bits)

    def storage_bits(self) -> int:
        # tag + 3-bit ctr + 2-bit useful + valid
        return self.entries * (self.tag_bits + 3 + 2 + 1)


class TagePredictor(DirectionPredictor):
    """TAGE with a bimodal base and geometric tagged components."""

    name = "tage"

    def __init__(
        self,
        n_components: int = 6,
        base_entries: int = 4096,
        component_entries: int = 1024,
        min_history: int = 5,
        max_history: int = 130,
        tag_bits: int = 9,
        seed: int = 0x7A6E,
    ) -> None:
        super().__init__()
        if n_components < 1:
            raise ValueError("TAGE needs at least one tagged component")
        self.base_entries = base_entries
        self._base_bits = base_entries.bit_length() - 1
        if base_entries & (base_entries - 1):
            raise ValueError("base_entries must be a power of two")
        self._base = [2] * base_entries  # 2-bit counters, weakly not-taken
        # Geometric history series L_i = min * (max/min)^(i/(n-1)).
        self.components: list[_TageComponent] = []
        for i in range(n_components):
            if n_components == 1:
                length = min_history
            else:
                ratio = (max_history / min_history) ** (i / (n_components - 1))
                length = max(1, int(round(min_history * ratio)))
            self.components.append(_TageComponent(component_entries, tag_bits, length))
        self.history_length = self.components[-1].history_length
        self._alloc_state = mix64(seed)

    # -- base bimodal ---------------------------------------------------------

    def _base_index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._base_bits)

    def _base_predict(self, pc: int) -> bool:
        return self._base[self._base_index(pc)] >= 2

    def _base_update(self, pc: int, taken: bool) -> None:
        idx = self._base_index(pc)
        value = self._base[idx]
        if taken and value < 3:
            self._base[idx] = value + 1
        elif not taken and value > 0:
            self._base[idx] = value - 1

    # -- provider search --------------------------------------------------------
    #
    # Component indices and tags are pure (pc, history) hashes built from
    # multi-step history folds — by far the predictor's per-branch cost.
    # The packed state memoises them (tags lazily: a tag is only hashed
    # when some lookup needs it) so that commit-time training, which must
    # re-run the provider search against *current* table contents, reuses
    # every fold computed at prediction time.

    def _hash_state(self, pc: int, history: int) -> tuple[list[int], list[int | None]]:
        indices = [comp.index(pc, history) for comp in self.components]
        tags: list[int | None] = [None] * len(self.components)
        return indices, tags

    def _tag_of(self, i: int, pc: int, history: int, tags: list[int | None]) -> int:
        tag = tags[i]
        if tag is None:
            tag = self.components[i].tag(pc, history)
            tags[i] = tag
        return tag

    def _find_cached(
        self, pc: int, history: int, indices: list[int], tags: list[int | None]
    ) -> tuple[int | None, int | None]:
        """Provider search against current tables, memoised hashes."""
        provider = None
        alternate = None
        for i in range(len(self.components) - 1, -1, -1):
            entry = self.components[i].table[indices[i]]
            if entry.valid and entry.tag == self._tag_of(i, pc, history, tags):
                if provider is None:
                    provider = i
                else:
                    alternate = i
                    break
        return provider, alternate

    def _find(self, pc: int, history: int) -> tuple[int | None, int | None]:
        """Return (provider component idx, alternate component idx)."""
        indices, tags = self._hash_state(pc, history)
        return self._find_cached(pc, history, indices, tags)

    def predict(self, pc: int, history: int) -> bool:
        pred, _state = self.predict_packed(pc, history)
        return pred

    def predict_packed(self, pc: int, history: int):
        state = self._hash_state(pc, history)
        indices, tags = state
        provider, _alternate = self._find_cached(pc, history, indices, tags)
        if provider is None:
            return self._base_predict(pc), state
        entry = self.components[provider].table[indices[provider]]
        return entry.ctr >= 0, state

    # -- update ------------------------------------------------------------------

    def _component_prediction(self, i: int, pc: int, history: int) -> bool:
        comp = self.components[i]
        return comp.table[comp.index(pc, history)].ctr >= 0

    def update_packed(
        self, pc: int, history: int, taken: bool, predicted: bool, state
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        indices, tags = state
        # Re-run the provider search against current table contents:
        # allocations/evictions by other in-flight branches may have
        # changed validity or tags since prediction time.
        provider, alternate = self._find_cached(pc, history, indices, tags)

        if provider is None:
            provider_pred = self._base_predict(pc)
            alt_pred = provider_pred
        else:
            provider_pred = self.components[provider].table[indices[provider]].ctr >= 0
            if alternate is not None:
                alt_pred = self.components[alternate].table[indices[alternate]].ctr >= 0
            else:
                alt_pred = self._base_predict(pc)

        # Train the provider (or the base when no component hit).
        if provider is None:
            self._base_update(pc, taken)
        else:
            entry = self.components[provider].table[indices[provider]]
            if taken and entry.ctr < 3:
                entry.ctr += 1
            elif not taken and entry.ctr > -4:
                entry.ctr -= 1
            # Usefulness: the provider proved its worth when it beat the alt.
            if provider_pred != alt_pred:
                if provider_pred == taken and entry.useful < 3:
                    entry.useful += 1
                elif provider_pred != taken and entry.useful > 0:
                    entry.useful -= 1
            if alternate is None and provider == 0:
                self._base_update(pc, taken)

        # Allocate a longer-history entry on a provider mispredict.
        if provider_pred != taken:
            start = (provider + 1) if provider is not None else 0
            self._allocate(start, pc, history, taken, indices, tags)

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.update_packed(pc, history, taken, predicted, self._hash_state(pc, history))

    def _allocate(
        self,
        start: int,
        pc: int,
        history: int,
        taken: bool,
        indices: list[int],
        tags: list[int | None],
    ) -> None:
        candidates = []
        for i in range(start, len(self.components)):
            entry = self.components[i].table[indices[i]]
            if not entry.valid or entry.useful == 0:
                candidates.append(i)
        if not candidates:
            # Pressure release: age everything on the allocation path.
            for i in range(start, len(self.components)):
                entry = self.components[i].table[indices[i]]
                if entry.useful > 0:
                    entry.useful -= 1
            return
        # Prefer shorter histories with 2/3 probability (standard TAGE).
        self._alloc_state = mix64(self._alloc_state)
        pick = candidates[0]
        if len(candidates) > 1 and (self._alloc_state & 3) == 3:
            pick = candidates[1]
        entry = self.components[pick].table[indices[pick]]
        entry.valid = True
        entry.tag = self._tag_of(pick, pc, history, tags)
        entry.ctr = 0 if taken else -1
        entry.useful = 0

    def storage_bits(self) -> int:
        return self.base_entries * 2 + sum(c.storage_bits() for c in self.components)

    def reset(self) -> None:
        super().reset()
        self._base = [2] * self.base_entries
        for comp in self.components:
            comp.table = [_TageEntry() for _ in range(comp.entries)]

@dataclass(frozen=True)
class TageParams:
    """Geometry schema for :class:`TagePredictor` (defaults ≈ 12KB; the
    8KB Table-3-style preset in :mod:`repro.predictors.budget` uses
    ``component_entries=512``)."""

    n_components: int = 6
    base_entries: int = 4096
    component_entries: int = 1024
    min_history: int = 5
    max_history: int = 130
    tag_bits: int = 9
    seed: int = 0x7A6E

    def build(self) -> TagePredictor:
        return TagePredictor(
            self.n_components,
            self.base_entries,
            self.component_entries,
            self.min_history,
            self.max_history,
            self.tag_bits,
            self.seed,
        )


register_predictor(
    "tage",
    TageParams,
    TageParams.build,
    critic_capable=True,
    summary="bimodal base + geometric tagged components (Seznec & Michaud, 2006)",
)
