"""Tagged gshare — the paper's preferred critic (§4, Table 3).

A gshare-style predictor in which every 2-bit counter carries a tag, the
whole structure organised like an N-way set-associative cache. Index and
tag come from *different* XOR hashes of (branch address, BOR value), so a
context colliding in the index is unlikely to alias in the tag as well.

Semantics as a critic:

* **lookup** — on tag hit the stored counter gives the critic's direction
  prediction for the branch; on miss the critic implicitly agrees with the
  prophet.
* **train** — on tag hit the counter trains toward the actual outcome; on
  miss, a new entry is allocated *only if the final prediction was wrong*
  (insert-on-mispredict), initialised weakly toward the actual outcome.

The class also implements the plain :class:`DirectionPredictor` interface
(predict falls back to taken on a miss) so it can be exercised standalone
in unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.filtering import TagFilter
from repro.predictors.registry import register_predictor
from repro.utils.hashing import index_hash, tag_hash


@dataclass(frozen=True)
class CritiqueLookup:
    """Result of a critic lookup: filter hit flag and direction prediction.

    ``prediction`` is None when ``hit`` is False — the critic has no
    opinion and implicitly agrees with the prophet.
    """

    hit: bool
    prediction: bool | None


class TaggedGsharePredictor(DirectionPredictor):
    """Set-associative tagged counter store keyed by hash(PC, history)."""

    name = "tagged-gshare"

    def __init__(
        self,
        sets: int,
        ways: int = 6,
        history_length: int = 18,
        tag_bits: int = 8,
    ) -> None:
        super().__init__()
        self.sets = sets
        self.ways = ways
        self.history_length = history_length
        self.tag_bits = tag_bits
        self.filter = TagFilter(sets, ways, tag_bits)
        # One counter per (set, way); flattened row-major.
        self.counters = CounterTable(sets * ways, bits=2)
        # Hot-path constants for the fused hash (see _hash_pair).
        self._set_mask = (1 << self.filter.set_bits) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._history_mask = (1 << history_length) - 1 if history_length > 0 else 0
        self._rotate_shift = history_length - 1
        self._counters_raw = self.counters.raw
        # Unrolled fold schedules: XORing the unmasked shifted chunks and
        # masking once at the end equals the chunk-by-chunk masked fold
        # (only the low out_width bits of the XOR survive the final mask).
        self._set_fold_shifts = tuple(range(0, history_length, max(self.filter.set_bits, 1)))
        self._tag_fold_shifts = tuple(range(0, history_length, max(tag_bits, 1)))

    # -- hashing -------------------------------------------------------------

    def _hash_pair(self, pc: int, history: int) -> tuple[int, int]:
        """(set index, tag) in one pass — inlined fold loops.

        Produces exactly :func:`repro.utils.hashing.index_hash` and
        :func:`repro.utils.hashing.tag_hash` over ``history_length``
        history bits; critics hash every branch twice (lookup + train),
        so the folding is flattened here.
        """
        tag_bits = self.tag_bits
        tag_shifts = self._tag_fold_shifts

        value = history & self._history_mask
        folded_index = pc >> 2
        for shift in self._set_fold_shifts:
            folded_index ^= value >> shift
        folded_tag = 0
        for shift in tag_shifts:
            folded_tag ^= value >> shift
        # tag_hash's second fold runs over the rotated history.
        folded_tag2 = 0
        if tag_shifts:  # empty iff history_length == 0 (no rotation either)
            rotated = ((history >> 1) | ((history & 1) << self._rotate_shift)) & self._history_mask
            for shift in tag_shifts:
                folded_tag2 ^= rotated >> shift
        tag = (
            (pc >> 5) ^ (pc >> (5 + tag_bits)) ^ folded_tag ^ (folded_tag2 << 1)
        ) & self._tag_mask
        return folded_index & self._set_mask, tag

    def _set_index(self, pc: int, history: int) -> int:
        return index_hash(pc, history, self.filter.set_bits, self.history_length)

    def _tag(self, pc: int, history: int) -> int:
        return tag_hash(pc, history, self.tag_bits, self.history_length)

    def _counter_index(self, set_index: int, way: int) -> int:
        return set_index * self.ways + way

    # -- critic interface ------------------------------------------------------

    def lookup_into(self, handle, pc: int, history: int) -> bool:
        """Hot-path lookup writing straight into an in-flight handle.

        Sets ``critic_hit``/``critic_pred`` plus the hash pair
        (``critic_ix``/``critic_tag``) so commit-time training can skip
        rehashing; returns the hit flag. Identical observable behaviour
        to :meth:`lookup` (LRU refresh included).
        """
        set_index, tag = self._hash_pair(pc, history)
        handle.critic_ix = set_index
        handle.critic_tag = tag
        way = self.filter.lookup(set_index, tag)
        if way is None:
            handle.critic_hit = False
            handle.critic_pred = None
            return False
        handle.critic_hit = True
        handle.critic_pred = self._counters_raw[set_index * self.ways + way] > 1
        return True

    def train_hashed(
        self, pc: int, history: int, taken: bool, final_mispredict: bool,
        set_index: int, tag: int,
    ) -> None:
        """:meth:`train` with the (set index, tag) pair precomputed at
        lookup time — the hashes are pure in (pc, history), which the
        engine already carries from critique to commit."""
        way = self.filter.probe(set_index, tag)
        if way is not None:
            idx = set_index * self.ways + way
            if self.stats_enabled:
                self.stats.record((self._counters_raw[idx] > 1) == taken)
            self.counters.update(idx, taken)
            # Refresh recency so live contexts survive (probe() is
            # side-effect free; LRU is maintained here and at lookup).
            self.filter._touch(set_index, way)
            return
        if final_mispredict:
            way, _evicted = self.filter.insert(set_index, tag)
            self.counters.set_direction(set_index * self.ways + way, taken)

    def lookup(self, pc: int, history: int) -> CritiqueLookup:
        """Filtered lookup: (hit, prediction-or-None)."""
        set_index, tag = self._hash_pair(pc, history)
        way = self.filter.lookup(set_index, tag)
        if way is None:
            return CritiqueLookup(hit=False, prediction=None)
        return CritiqueLookup(hit=True, prediction=self.counters.taken(self._counter_index(set_index, way)))

    def train(self, pc: int, history: int, taken: bool, final_mispredict: bool) -> None:
        """Commit-time training with insert-on-mispredict allocation."""
        set_index, tag = self._hash_pair(pc, history)
        self.train_hashed(pc, history, taken, final_mispredict, set_index, tag)

    # -- standalone DirectionPredictor interface -------------------------------

    def predict(self, pc: int, history: int) -> bool:
        result = self.lookup(pc, history)
        if result.hit:
            return bool(result.prediction)
        return True

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.train(pc, history, taken, final_mispredict=(predicted != taken))

    def storage_bits(self) -> int:
        return self.filter.storage_bits() + self.counters.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.filter.reset()
        self.counters.reset()

@dataclass(frozen=True)
class TaggedGshareParams:
    """Geometry schema for :class:`TaggedGsharePredictor` (defaults: Table-3 8KB)."""

    sets: int = 1024
    ways: int = 6
    history_length: int = 18
    tag_bits: int = 8

    def build(self) -> TaggedGsharePredictor:
        return TaggedGsharePredictor(
            self.sets, self.ways, self.history_length, self.tag_bits
        )


register_predictor(
    "tagged-gshare",
    TaggedGshareParams,
    TaggedGshareParams.build,
    critic_capable=True,
    summary="set-associative tagged counters keyed by hash(PC, history)",
)
