"""Tagged gshare — the paper's preferred critic (§4, Table 3).

A gshare-style predictor in which every 2-bit counter carries a tag, the
whole structure organised like an N-way set-associative cache. Index and
tag come from *different* XOR hashes of (branch address, BOR value), so a
context colliding in the index is unlikely to alias in the tag as well.

Semantics as a critic:

* **lookup** — on tag hit the stored counter gives the critic's direction
  prediction for the branch; on miss the critic implicitly agrees with the
  prophet.
* **train** — on tag hit the counter trains toward the actual outcome; on
  miss, a new entry is allocated *only if the final prediction was wrong*
  (insert-on-mispredict), initialised weakly toward the actual outcome.

The class also implements the plain :class:`DirectionPredictor` interface
(predict falls back to taken on a miss) so it can be exercised standalone
in unit tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.filtering import TagFilter
from repro.utils.hashing import index_hash, tag_hash


@dataclass(frozen=True)
class CritiqueLookup:
    """Result of a critic lookup: filter hit flag and direction prediction.

    ``prediction`` is None when ``hit`` is False — the critic has no
    opinion and implicitly agrees with the prophet.
    """

    hit: bool
    prediction: bool | None


class TaggedGsharePredictor(DirectionPredictor):
    """Set-associative tagged counter store keyed by hash(PC, history)."""

    name = "tagged-gshare"

    def __init__(
        self,
        sets: int,
        ways: int = 6,
        history_length: int = 18,
        tag_bits: int = 8,
    ) -> None:
        super().__init__()
        self.sets = sets
        self.ways = ways
        self.history_length = history_length
        self.tag_bits = tag_bits
        self.filter = TagFilter(sets, ways, tag_bits)
        # One counter per (set, way); flattened row-major.
        self.counters = CounterTable(sets * ways, bits=2)

    # -- hashing -------------------------------------------------------------

    def _set_index(self, pc: int, history: int) -> int:
        return index_hash(pc, history, self.filter.set_bits, self.history_length)

    def _tag(self, pc: int, history: int) -> int:
        return tag_hash(pc, history, self.tag_bits, self.history_length)

    def _counter_index(self, set_index: int, way: int) -> int:
        return set_index * self.ways + way

    # -- critic interface ------------------------------------------------------

    def lookup(self, pc: int, history: int) -> CritiqueLookup:
        """Filtered lookup: (hit, prediction-or-None)."""
        set_index = self._set_index(pc, history)
        way = self.filter.lookup(set_index, self._tag(pc, history))
        if way is None:
            return CritiqueLookup(hit=False, prediction=None)
        return CritiqueLookup(hit=True, prediction=self.counters.taken(self._counter_index(set_index, way)))

    def train(self, pc: int, history: int, taken: bool, final_mispredict: bool) -> None:
        """Commit-time training with insert-on-mispredict allocation."""
        set_index = self._set_index(pc, history)
        tag = self._tag(pc, history)
        way = self.filter.probe(set_index, tag)
        if way is not None:
            idx = self._counter_index(set_index, way)
            self.stats.record(self.counters.taken(idx) == taken)
            self.counters.update(idx, taken)
            # Refresh recency so live contexts survive (probe() is
            # side-effect free; LRU is maintained here and at lookup).
            self.filter._touch(set_index, way)
            return
        if final_mispredict:
            way, _evicted = self.filter.insert(set_index, tag)
            self.counters.set_direction(self._counter_index(set_index, way), taken)

    # -- standalone DirectionPredictor interface -------------------------------

    def predict(self, pc: int, history: int) -> bool:
        result = self.lookup(pc, history)
        if result.hit:
            return bool(result.prediction)
        return True

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.train(pc, history, taken, final_mispredict=(predicted != taken))

    def storage_bits(self) -> int:
        return self.filter.storage_bits() + self.counters.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.filter.reset()
        self.counters.reset()
