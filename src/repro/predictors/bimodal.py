"""Bimodal predictor: a PC-indexed table of 2-bit counters (Smith, 1981).

Also serves as the BIM bank of 2Bc-gskew and the simple component of
tournament hybrids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import register_predictor
from repro.utils.bitops import mask


class BimodalPredictor(DirectionPredictor):
    """PC-indexed counter table; ignores history entirely."""

    name = "bimodal"
    history_length = 0

    def __init__(self, entries: int, counter_bits: int = 2) -> None:
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._index_bits = entries.bit_length() - 1
        self.table = CounterTable(entries, bits=counter_bits)

    def _index(self, pc: int) -> int:
        return (pc >> 2) & mask(self._index_bits)

    def predict(self, pc: int, history: int) -> bool:
        return self.table.taken(self._index(pc))

    def predict_packed(self, pc: int, history: int) -> tuple[bool, int]:
        index = (pc >> 2) & mask(self._index_bits)
        return self.table.taken(index), index

    def update_packed(
        self, pc: int, history: int, taken: bool, predicted: bool, index: int
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        self.table.update(index, taken)

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.update_packed(pc, history, taken, predicted, self._index(pc))

    def storage_bits(self) -> int:
        return self.table.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.table.reset()

@dataclass(frozen=True)
class BimodalParams:
    """Geometry schema for :class:`BimodalPredictor`."""

    entries: int = 4096
    counter_bits: int = 2

    def build(self) -> BimodalPredictor:
        return BimodalPredictor(self.entries, self.counter_bits)


register_predictor(
    "bimodal",
    BimodalParams,
    BimodalParams.build,
    critic_capable=False,  # ignores the history value: it cannot read a BOR
    summary="PC-indexed table of saturating counters (Smith, 1981)",
)
