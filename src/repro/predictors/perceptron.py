"""Perceptron branch predictor (Jiménez & Lin, 2002).

A table of perceptrons is selected by PC; the selected weight vector is
dotted with the ±1-encoded global history (plus a bias weight). Training
runs on a mispredict or whenever the output magnitude is below the
threshold θ = ⌊1.93·h + 14⌋.

Its ability to use much longer histories than counter tables is what makes
it attractive as a critic: future bits can be appended to the BOR without
sacrificing all the history bits (paper §6, "Predictors simulated").

Weights are 8-bit saturating signed integers, the budget assumed by the
paper's Table 3 (budget ≈ perceptrons × (h+1) bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.predictors.base import DirectionPredictor
from repro.predictors.registry import register_predictor


class PerceptronPredictor(DirectionPredictor):
    """Global-history perceptron predictor with numpy-backed weights."""

    name = "perceptron"

    WEIGHT_MIN = -128
    WEIGHT_MAX = 127

    def __init__(self, n_perceptrons: int, history_length: int) -> None:
        super().__init__()
        if n_perceptrons < 1:
            raise ValueError("need at least one perceptron")
        if history_length < 1:
            raise ValueError("perceptron needs at least one history bit")
        self.n_perceptrons = n_perceptrons
        self.history_length = history_length
        self.threshold = int(1.93 * history_length + 14)
        # Column 0 is the bias weight; columns 1..h correspond to history
        # bits 0..h-1 (bit 0 = most recent outcome).
        self.weights = np.zeros((n_perceptrons, history_length + 1), dtype=np.int16)
        self._nbytes = (history_length + 15) // 8

    def _row(self, pc: int) -> int:
        return (pc >> 2) % self.n_perceptrons

    def _inputs(self, history: int) -> np.ndarray:
        """±1 input vector of length h+1 (element 0 is the bias input)."""
        raw = (history & ((1 << self.history_length) - 1)).to_bytes(self._nbytes, "little")
        bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
        x = np.empty(self.history_length + 1, dtype=np.int16)
        x[0] = 1
        x[1:] = bits[: self.history_length].astype(np.int16) * 2 - 1
        return x

    def output(self, pc: int, history: int) -> int:
        """Raw perceptron output (sign = prediction, magnitude = confidence)."""
        x = self._inputs(history)
        return int(np.dot(self.weights[self._row(pc)].astype(np.int32), x))

    def predict(self, pc: int, history: int) -> bool:
        return self.output(pc, history) >= 0

    def predict_packed(self, pc: int, history: int) -> tuple[bool, np.ndarray]:
        """Packed fast path: the ±1 input vector is pure in the history."""
        x = self._inputs(history)
        y = int(np.dot(self.weights[self._row(pc)].astype(np.int32), x))
        return y >= 0, x

    def update_packed(
        self, pc: int, history: int, taken: bool, predicted: bool, x: np.ndarray
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        row = self._row(pc)
        # The output is recomputed against current weights — aliasing
        # branches may have trained this row since prediction time.
        y = int(np.dot(self.weights[row].astype(np.int32), x))
        if (y >= 0) != taken or abs(y) <= self.threshold:
            t = 1 if taken else -1
            updated = self.weights[row] + t * x
            np.clip(updated, self.WEIGHT_MIN, self.WEIGHT_MAX, out=updated)
            self.weights[row] = updated

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.update_packed(pc, history, taken, predicted, self._inputs(history))

    def storage_bits(self) -> int:
        # 8-bit weights, (h+1) per perceptron; the global history register
        # itself is charged to the engine, as in the paper's budgets.
        return self.n_perceptrons * (self.history_length + 1) * 8

    def reset(self) -> None:
        super().reset()
        self.weights[:] = 0

@dataclass(frozen=True)
class PerceptronParams:
    """Geometry schema for :class:`PerceptronPredictor` (defaults: Table-3 8KB)."""

    n_perceptrons: int = 282
    history_length: int = 28

    def build(self) -> PerceptronPredictor:
        return PerceptronPredictor(self.n_perceptrons, self.history_length)


register_predictor(
    "perceptron",
    PerceptronParams,
    PerceptronParams.build,
    critic_capable=True,
    summary="global-history perceptron (Jimenez & Lin, 2001)",
)
