"""Gshare predictor (McFarling, WRL TN-36, 1993).

Global history is XORed with the branch address to index a single table of
2-bit counters, spreading branches across the table and reducing aliasing
relative to GAs at the same size. Table 3 of the paper uses gshare at
2-32KB with history lengths 13-17 (always log2 of the entry count).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.predictors.base import DirectionPredictor
from repro.predictors.counters import CounterTable
from repro.predictors.registry import register_predictor
from repro.utils.bitops import mask


class GsharePredictor(DirectionPredictor):
    """Classic gshare: index = (PC >> 2) XOR history, one counter table."""

    name = "gshare"

    def __init__(self, entries: int, history_length: int | None = None, counter_bits: int = 2) -> None:
        super().__init__()
        if entries & (entries - 1):
            raise ValueError("entries must be a power of two")
        self.entries = entries
        self._index_bits = entries.bit_length() - 1
        if history_length is None:
            history_length = self._index_bits
        if history_length > self._index_bits:
            raise ValueError(
                "gshare history cannot exceed index width "
                f"({history_length} > {self._index_bits}); use folding predictors for longer histories"
            )
        self.history_length = history_length
        self.table = CounterTable(entries, bits=counter_bits)
        self._history_mask = mask(history_length)
        self._index_mask = mask(self._index_bits)
        self._raw = self.table.raw
        self._midpoint = self.table.midpoint

    def _index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ (history & self._history_mask)) & self._index_mask

    def predict(self, pc: int, history: int) -> bool:
        return self._raw[self._index(pc, history)] > self._midpoint

    def predict_packed(self, pc: int, history: int) -> tuple[bool, int]:
        """Packed fast path: the table index is pure in (pc, history)."""
        index = ((pc >> 2) ^ (history & self._history_mask)) & self._index_mask
        return self._raw[index] > self._midpoint, index

    def update_packed(
        self, pc: int, history: int, taken: bool, predicted: bool, index: int
    ) -> None:
        if self.stats_enabled:
            self.stats.record(predicted == taken)
        self.table.update(index, taken)

    def update(self, pc: int, history: int, taken: bool, predicted: bool) -> None:
        self.update_packed(pc, history, taken, predicted, self._index(pc, history))

    def storage_bits(self) -> int:
        return self.table.storage_bits()

    def reset(self) -> None:
        super().reset()
        self.table.reset()

@dataclass(frozen=True)
class GshareParams:
    """Geometry schema for :class:`GsharePredictor` (defaults: Table-3 8KB).

    ``history_length`` of None uses the full index width, Table 3's rule.
    """

    entries: int = 32 * 1024
    history_length: int | None = None
    counter_bits: int = 2

    def build(self) -> GsharePredictor:
        return GsharePredictor(self.entries, self.history_length, self.counter_bits)


register_predictor(
    "gshare",
    GshareParams,
    GshareParams.build,
    critic_capable=True,
    summary="PC XOR global-history indexed counter table (McFarling, 1993)",
)
