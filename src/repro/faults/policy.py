"""Recovery policies shared by the hardened layers.

:class:`RetryPolicy` and :class:`CircuitBreaker` live here — not in
``sim/`` — on purpose: REP001 (docs/LINTING.md) bans wall-clock reads
inside ``src/repro/sim``, and both policies are *about* wall time.
:mod:`repro.sim.cache` imports them and delegates all sleeping and
clock reads to this module, keeping the result-producing code clean.

Both policies are deterministic given their inputs: retry jitter is
hashed from ``(token, attempt)`` rather than drawn from an RNG, and the
breaker takes an injectable clock so tests drive it without sleeping.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``attempts`` is the total number of tries (so ``attempts=1`` means
    "no retries"). Delays double from ``base_delay`` up to ``max_delay``
    and are scaled into ``[0.5, 1.0]`` of nominal by a jitter fraction
    hashed from ``(token, attempt)`` — two callers retrying the same hot
    key de-synchronise, yet every run of the same schedule sleeps the
    same amounts, which keeps the chaos reports reproducible.
    """

    attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0

    def delay(self, attempt: int, token: str = "") -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        nominal = min(self.max_delay, self.base_delay * (2 ** attempt))
        digest = hashlib.sha256(f"retry:{token}:{attempt}".encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:8], "big") / 2**64
        return nominal * (0.5 + 0.5 * fraction)

    def call(
        self,
        fn: Callable[[], object],
        *,
        retry_on: type[BaseException] | tuple[type[BaseException], ...],
        token: str = "",
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[int, BaseException], None] | None = None,
    ):
        """Run ``fn`` with retries; re-raise the last failure when spent."""
        last_attempt = max(0, self.attempts - 1)
        for attempt in range(last_attempt + 1):
            try:
                return fn()
            except retry_on as exc:
                if attempt == last_attempt:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt, token))
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitBreaker:
    """Stop hammering a dead dependency; probe for recovery.

    Classic three-state machine: *closed* (normal) opens after
    ``failure_threshold`` consecutive failures; *open* short-circuits
    every call until ``cooldown`` seconds pass, then admits exactly one
    *half-open* probe; the probe's outcome closes the circuit or re-opens
    it for another cooldown. Thread-safe (the daemon's cache ops run in
    executor threads); the clock is injectable so tests never sleep.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 2.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Telemetry, reported in chaos reports and `/stats`.
        self.opens = 0
        self.probes = 0
        self.short_circuits = 0
        self.failures = 0
        self.successes = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now? (Counts a probe when half-opening.)"""
        with self._lock:
            if self._state == "closed":
                return True
            if self._state == "open" and (
                self._clock() - self._opened_at >= self.cooldown
            ):
                self._state = "half-open"
                self.probes += 1
                return True
            # open (cooling down) or half-open with a probe in flight
            self.short_circuits += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._state = "closed"

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            tripped = (
                self._state == "half-open"
                or self._consecutive_failures >= self.failure_threshold
            )
            if tripped:
                if self._state != "open":
                    self.opens += 1
                self._state = "open"
                self._opened_at = self._clock()
                self._consecutive_failures = 0

    def __getstate__(self) -> dict:
        # Tiered caches embed a breaker and cross the process-pool
        # boundary via pickle; locks don't pickle, and a child process
        # must not share the parent's breaker state anyway. An injected
        # clock won't survive either — fall back to the default.
        state = self.__dict__.copy()
        del state["_lock"]
        if state["_clock"] is not time.monotonic:
            state["_clock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        if self._clock is None:
            self._clock = time.monotonic
        self._lock = threading.Lock()

    def describe(self) -> dict:
        """Telemetry snapshot (JSON-safe) for reports and `/stats`."""
        with self._lock:
            return {
                "state": self._state,
                "opens": self.opens,
                "probes": self.probes,
                "short_circuits": self.short_circuits,
                "failures": self.failures,
                "successes": self.successes,
            }
