""":class:`FaultPlan` — a seeded, JSON round-trippable fault schedule.

A plan is *data*, like every system spec in this repository
(docs/CONFIG.md): ``to_config()``/``from_config()`` round-trip through
JSON, the ``"format"`` stamp is optional on input but rejected on
mismatch, and unknown keys are rejected with the valid list. Everything
random about a plan derives from its ``seed`` through named streams
(:meth:`FaultPlan.stream`), so the same plan injects the same fault
schedule on every run — which is what lets the chaos suite assert
*reports*, not just survival.

Three sections, each optional:

``cache``
    drives :class:`repro.faults.backend.FaultyBackend` — added latency,
    transient ``CacheBackendError``\\ s, silently dropped puts, and byte
    corruption of fetched entries.
``worker``
    drives :func:`repro.faults.workers.maybe_crash` — a pool worker
    calls ``os._exit`` at its Nth cell (or whenever it starts a
    selected "poison" cell), limited by a global crash budget.
``peer``
    drives the deterministic peer degradations in
    :class:`~repro.faults.backend.FaultyBackend` — a slow or
    black-holed cache hub, optionally recovering after a fixed number
    of faulted operations (so breaker re-detection is testable).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import dataclass, fields
from pathlib import Path

#: Format stamp carried by serialized plans (docs/CONFIG.md convention).
FAULT_PLAN_FORMAT = 1

_CORRUPT_MODES = ("flip", "truncate", "garbage")
_PEER_MODES = ("slow", "blackhole")


class FaultPlanError(ValueError):
    """A fault-plan document failed validation; ``section`` names where."""

    def __init__(self, message: str, *, section: str | None = None) -> None:
        super().__init__(message)
        self.section = section


def _reject_unknown(payload: dict, known: tuple[str, ...], section: str) -> None:
    unknown = sorted(set(payload) - set(known))
    if unknown:
        raise FaultPlanError(
            f"unknown {section} key(s) {unknown}; valid: {sorted(known)}",
            section=section,
        )


def _number(payload: dict, key: str, default, section: str, *, lo=0.0, hi=None):
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(f"{section}.{key} must be a number", section=section)
    if value < lo or (hi is not None and value > hi):
        bound = f">= {lo}" if hi is None else f"in [{lo}, {hi}]"
        raise FaultPlanError(f"{section}.{key} must be {bound}", section=section)
    return value


@dataclass(frozen=True)
class CacheFaults:
    """Random faults on cache-backend operations (RNG stream ``"cache"``)."""

    latency: float = 0.0  # seconds added to every get/put
    transient_error_p: float = 0.0  # P(op raises CacheBackendError)
    drop_put_p: float = 0.0  # P(put silently discarded)
    corrupt_get_p: float = 0.0  # P(fetched bytes corrupted)
    corrupt_mode: str = "flip"  # flip | truncate | garbage

    @classmethod
    def from_config(cls, payload: dict) -> "CacheFaults":
        keys = tuple(f.name for f in fields(cls))
        _reject_unknown(payload, keys, "cache")
        mode = payload.get("corrupt_mode", "flip")
        if mode not in _CORRUPT_MODES:
            raise FaultPlanError(
                f"cache.corrupt_mode {mode!r} not in {_CORRUPT_MODES}", section="cache"
            )
        return cls(
            latency=float(_number(payload, "latency", 0.0, "cache")),
            transient_error_p=float(
                _number(payload, "transient_error_p", 0.0, "cache", hi=1.0)
            ),
            drop_put_p=float(_number(payload, "drop_put_p", 0.0, "cache", hi=1.0)),
            corrupt_get_p=float(
                _number(payload, "corrupt_get_p", 0.0, "cache", hi=1.0)
            ),
            corrupt_mode=mode,
        )

    def to_config(self) -> dict:
        return {
            "latency": self.latency,
            "transient_error_p": self.transient_error_p,
            "drop_put_p": self.drop_put_p,
            "corrupt_get_p": self.corrupt_get_p,
            "corrupt_mode": self.corrupt_mode,
        }


@dataclass(frozen=True)
class WorkerFaults:
    """Pool-worker crash injection (:mod:`repro.faults.workers`).

    Without a selector, a worker exits at the ``crash_at_cell``-th cell
    it starts; with ``benchmark``/``system`` set, it exits whenever it
    starts a matching ("poison") cell. Either way the global ``crashes``
    budget — token files in the harness state directory — bounds the
    total number of exits, so recovery always terminates.
    """

    crash_at_cell: int = 1
    crashes: int = 1
    exit_code: int = 87
    benchmark: str | None = None
    system: str | None = None

    @classmethod
    def from_config(cls, payload: dict) -> "WorkerFaults":
        keys = tuple(f.name for f in fields(cls))
        _reject_unknown(payload, keys, "worker")
        for key, lo in (("crash_at_cell", 1), ("crashes", 0), ("exit_code", 0)):
            value = payload.get(key)
            if value is not None and (not isinstance(value, int) or value < lo):
                raise FaultPlanError(
                    f"worker.{key} must be an int >= {lo}", section="worker"
                )
        for key in ("benchmark", "system"):
            value = payload.get(key)
            if value is not None and not isinstance(value, str):
                raise FaultPlanError(
                    f"worker.{key} must be a string", section="worker"
                )
        return cls(
            crash_at_cell=payload.get("crash_at_cell", 1),
            crashes=payload.get("crashes", 1),
            exit_code=payload.get("exit_code", 87),
            benchmark=payload.get("benchmark"),
            system=payload.get("system"),
        )

    def to_config(self) -> dict:
        payload = {
            "crash_at_cell": self.crash_at_cell,
            "crashes": self.crashes,
            "exit_code": self.exit_code,
        }
        if self.benchmark is not None:
            payload["benchmark"] = self.benchmark
        if self.system is not None:
            payload["system"] = self.system
        return payload


@dataclass(frozen=True)
class PeerFaults:
    """Deterministic peer degradation: slow or black-holed cache hub.

    Count-driven, not RNG-driven: the first ``recover_after`` operations
    fault (all of them when ``recover_after`` is None), then the peer
    behaves normally — which is exactly the shape a circuit breaker's
    open → probe → close cycle needs to be provable.
    """

    mode: str = "blackhole"  # slow | blackhole
    delay: float = 0.25  # extra seconds per op in slow mode
    recover_after: int | None = None

    @classmethod
    def from_config(cls, payload: dict) -> "PeerFaults":
        keys = tuple(f.name for f in fields(cls))
        _reject_unknown(payload, keys, "peer")
        mode = payload.get("mode", "blackhole")
        if mode not in _PEER_MODES:
            raise FaultPlanError(
                f"peer.mode {mode!r} not in {_PEER_MODES}", section="peer"
            )
        recover = payload.get("recover_after")
        if recover is not None and (not isinstance(recover, int) or recover < 1):
            raise FaultPlanError(
                "peer.recover_after must be an int >= 1", section="peer"
            )
        return cls(
            mode=mode,
            delay=float(_number(payload, "delay", 0.25, "peer")),
            recover_after=recover,
        )

    def to_config(self) -> dict:
        payload: dict = {"mode": self.mode, "delay": self.delay}
        if self.recover_after is not None:
            payload["recover_after"] = self.recover_after
        return payload


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule; sections absent → no faults."""

    seed: int = 0
    cache: CacheFaults | None = None
    worker: WorkerFaults | None = None
    peer: PeerFaults | None = None

    @classmethod
    def from_config(cls, payload: dict) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError("fault plan must be a JSON object")
        _reject_unknown(payload, ("format", "seed", "cache", "worker", "peer"), "plan")
        stamp = payload.get("format", FAULT_PLAN_FORMAT)
        if stamp != FAULT_PLAN_FORMAT:
            raise FaultPlanError(
                f"fault plan format {stamp!r} != {FAULT_PLAN_FORMAT}"
            )
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise FaultPlanError("plan.seed must be an int")
        sections = {}
        for name, section_cls in (
            ("cache", CacheFaults),
            ("worker", WorkerFaults),
            ("peer", PeerFaults),
        ):
            raw = payload.get(name)
            if raw is None:
                sections[name] = None
                continue
            if not isinstance(raw, dict):
                raise FaultPlanError(
                    f"plan.{name} must be a JSON object", section=name
                )
            sections[name] = section_cls.from_config(raw)
        return cls(seed=seed, **sections)

    def to_config(self) -> dict:
        payload: dict = {"format": FAULT_PLAN_FORMAT, "seed": self.seed}
        for name in ("cache", "worker", "peer"):
            section = getattr(self, name)
            if section is not None:
                payload[name] = section.to_config()
        return payload

    def stream(self, name: str) -> random.Random:
        """An independent deterministic RNG for subsystem ``name``.

        Derived by hashing ``(seed, name)`` so adding a consumer never
        perturbs the schedule another consumer sees — the property the
        "same seed → same report" acceptance test rests on.
        """
        material = f"fault-plan:{self.seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def dump(self, path: str | os.PathLike) -> None:
        Path(path).write_text(
            json.dumps(self.to_config(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def load_plan(path: str | os.PathLike) -> FaultPlan:
    """Read and validate a fault-plan JSON file."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise FaultPlanError(f"cannot read fault plan {os.fspath(path)!r}: {exc}") from exc
    except ValueError as exc:
        raise FaultPlanError(f"fault plan {os.fspath(path)!r} is not JSON: {exc}") from exc
    return FaultPlan.from_config(payload)
