"""Deterministic, seeded fault injection for the service stack.

PRs 5-8 built the machinery a production-scale service needs —
persistent worker pools, tiered hub-and-edge caches, the sweep daemon —
but the failure paths those layers *claim* to survive (dead hub,
crashed worker, corrupted entry) were never systematically provoked.
This package is the provocation side and the policy side in one place:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded, JSON
  round-trippable schedule of faults (same seed → same schedule →
  same report);
* :mod:`repro.faults.backend` — :class:`FaultyBackend`, a
  :class:`~repro.sim.cache.CacheBackend` wrapper injecting latency,
  transient errors, dropped puts and byte corruption;
* :mod:`repro.faults.workers` — env-triggered ``os._exit`` crash hook
  inherited by pool workers (the ``REPRO_TRACE_CACHE`` pattern);
* :mod:`repro.faults.policy` — :class:`RetryPolicy` (bounded backoff
  with deterministic jitter) and :class:`CircuitBreaker`, the recovery
  policies the hardened layers share;
* :mod:`repro.faults.handling` — :func:`degrade`, the audited way to
  swallow an exception (REP006 in docs/LINTING.md enforces its use);
* :mod:`repro.faults.chaos` — the ``repro chaos`` harness: run a sweep
  under a plan, prove the results bit-identical to a fault-free run,
  emit a JSON fault report.

Submodules are imported lazily (PEP 562): :mod:`repro.sim.cache` and
:mod:`repro.sim.execution` import the leaf modules here, while
:mod:`~repro.faults.backend` imports :mod:`repro.sim.cache` — eager
re-exports would make that a cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "FaultPlan": "repro.faults.plan",
    "FaultPlanError": "repro.faults.plan",
    "load_plan": "repro.faults.plan",
    "RetryPolicy": "repro.faults.policy",
    "CircuitBreaker": "repro.faults.policy",
    "degrade": "repro.faults.handling",
    "recent_degradations": "repro.faults.handling",
    "FaultyBackend": "repro.faults.backend",
    "ChaosReport": "repro.faults.chaos",
    "run_chaos_sweep": "repro.faults.chaos",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
