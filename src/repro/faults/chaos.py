"""The chaos harness: prove recovery paths with a differential sweep.

:func:`run_chaos_sweep` runs one sweep grid twice — a fault-free serial
reference, then the same cells under a :class:`~repro.faults.plan.FaultPlan`
(faulty cache backend, crash-injected pool workers, or both) — and
compares every cell's result bit-for-bit via the cache's lossless codec.
The outcome is a :class:`ChaosReport`: which faults fired (by count and
kind), what the recovery machinery did (retries, evictions, breaker
transitions, crash tokens), and whether the surviving results are
identical to the undisturbed run. ``repro chaos sweep`` is a thin CLI
veneer over this function; the CI ``chaos-smoke`` job archives the
report JSON as its artifact.

Determinism: the same plan seed produces the same injection schedule,
so a chaos run is as reproducible as the sweep it disturbs — reports
from two runs of the same (grid, plan) differ only in wall-clock
fields.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass, field

from repro.faults.backend import FaultyBackend
from repro.faults.plan import FaultPlan
from repro.faults.workers import ENV_PLAN, ENV_STATE, crashes_injected
from repro.sim.cache import LocalDirBackend, ResultCache, stats_to_dict
from repro.sim.execution import (
    QUARANTINE_FAILURE_POLICY,
    CellFailure,
    ProcessPoolExecutor,
    SerialExecutor,
    SweepEngine,
)


@dataclass
class ChaosReport:
    """What a chaos run injected, recovered from, and proved."""

    plan: dict
    cells: int
    #: Every non-quarantined cell matched the fault-free reference.
    identical: bool
    mismatches: list[dict] = field(default_factory=list)
    quarantined: list[dict] = field(default_factory=list)
    #: FaultyBackend telemetry (counts + bounded event list), or None
    #: when the plan has no cache/peer section.
    injections: dict | None = None
    crashes_injected: int = 0
    #: Engine/cache recovery counters (worker_crashes, cells_retried,
    #: cells_quarantined, corrupt_evictions).
    recovery: dict = field(default_factory=dict)
    reference_seconds: float = 0.0
    chaos_seconds: float = 0.0

    @property
    def recovery_overhead(self) -> float:
        """Chaos wall-clock over reference wall-clock (≥ 1.0 in practice)."""
        if self.reference_seconds <= 0.0:
            return 0.0
        return self.chaos_seconds / self.reference_seconds

    def to_config(self) -> dict:
        """JSON-safe document (the CI artifact / ``--out`` payload)."""
        return {
            "plan": self.plan,
            "cells": self.cells,
            "identical": self.identical,
            "mismatches": list(self.mismatches),
            "quarantined": list(self.quarantined),
            "injections": self.injections,
            "crashes_injected": self.crashes_injected,
            "recovery": dict(self.recovery),
            "reference_seconds": round(self.reference_seconds, 6),
            "chaos_seconds": round(self.chaos_seconds, 6),
            "recovery_overhead": round(self.recovery_overhead, 6),
        }

    def summary(self) -> str:
        """One human line (the ``repro chaos`` stderr tail)."""
        counts = (self.injections or {}).get("counts", {})
        injected = sum(counts.values()) + self.crashes_injected
        verdict = "bit-identical" if self.identical else "MISMATCH"
        return (
            f"{self.cells} cells, {injected} faults injected, "
            f"{len(self.quarantined)} quarantined, results {verdict} "
            f"(overhead {self.recovery_overhead:.2f}x)"
        )


def run_chaos_sweep(
    cells,
    plan: FaultPlan,
    jobs: int = 2,
    cache_dir=None,
    progress=None,
) -> ChaosReport:
    """Run ``cells`` under ``plan`` and differentially verify recovery.

    The reference pass runs serial, cacheless and fault-free; the chaos
    pass runs with ``jobs`` pool workers (worker-crash plans need
    ``jobs >= 2`` — in-process cells cannot take a worker down), a
    result cache under ``cache_dir`` (a temp dir when None) wrapped in
    a :class:`FaultyBackend` when the plan injects cache/peer faults,
    and the quarantining failure policy. Raises :class:`ValueError` on
    a worker-crash plan with ``jobs < 2``.
    """
    cells = list(cells)
    if plan.worker is not None and jobs < 2:
        raise ValueError(
            "worker-crash plans need jobs >= 2: serial cells run in the "
            "harness process and a crash there is the harness dying"
        )

    started = time.perf_counter()
    reference_engine = SweepEngine(executor=SerialExecutor(), cache=None)
    try:
        reference = reference_engine.run_cells(cells)
    finally:
        reference_engine.close()
    reference_seconds = time.perf_counter() - started

    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    backend = LocalDirBackend(cache_dir)
    faulty = None
    if plan.cache is not None or plan.peer is not None:
        faulty = FaultyBackend(backend, plan)
        backend = faulty
    cache = ResultCache(backend)

    saved_env = {name: os.environ.get(name) for name in (ENV_PLAN, ENV_STATE)}
    state_dir = None
    if plan.worker is not None:
        state_dir = tempfile.mkdtemp(prefix="repro-chaos-state-")
        plan_path = os.path.join(state_dir, "plan.json")
        plan.dump(plan_path)
        os.environ[ENV_PLAN] = plan_path
        os.environ[ENV_STATE] = state_dir

    executor = ProcessPoolExecutor(jobs) if jobs > 1 else SerialExecutor()
    engine = SweepEngine(
        executor=executor, cache=cache, failure_policy=QUARANTINE_FAILURE_POLICY
    )
    chaos_started = time.perf_counter()
    try:
        chaos = engine.run_cells(cells, progress=progress)
    finally:
        engine.close()
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    chaos_seconds = time.perf_counter() - chaos_started

    mismatches: list[dict] = []
    quarantined: list[dict] = []
    for cell, expected, actual in zip(cells, reference, chaos):
        if isinstance(actual, CellFailure):
            quarantined.append(actual.describe())
            continue
        if stats_to_dict(actual) != stats_to_dict(expected):
            mismatches.append({
                "system": cell.system_label,
                "benchmark": cell.bench_name,
                "content_hash": cell.content_hash(),
            })

    recovery = {"corrupt_evictions": cache.corrupt_evictions}
    for counter in ("worker_crashes", "cells_retried", "cells_quarantined"):
        recovery[counter] = getattr(executor, counter, 0)

    return ChaosReport(
        plan=plan.to_config(),
        cells=len(cells),
        identical=not mismatches,
        mismatches=mismatches,
        quarantined=quarantined,
        injections=None if faulty is None else faulty.report(),
        crashes_injected=crashes_injected(state_dir) if state_dir is not None else 0,
        recovery=recovery,
        reference_seconds=reference_seconds,
        chaos_seconds=chaos_seconds,
    )
