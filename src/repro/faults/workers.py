"""Env-triggered pool-worker crash injection.

The PR-5 pool inherits configuration through the environment — that is
how ``REPRO_TRACE_CACHE`` reaches workers — and the crash hook rides
the same channel: when ``REPRO_FAULTS`` names a fault-plan JSON with a
``worker`` section, :func:`maybe_crash` (called by
``repro.sim.execution._run_chunk`` as each cell starts) counts the
cells this process has begun and calls ``os._exit`` per the plan. When
the variable is unset — every production run — the hook is a counter
increment and a cached ``None`` check.

The global crash *budget* lives in ``REPRO_FAULTS_STATE``, a directory
of token files claimed with ``O_CREAT | O_EXCL`` (atomic across the
pool, including respawned workers). No state directory → no crashes:
the harness (:mod:`repro.faults.chaos`, the pytest fixtures) always
provides one, and an accidentally-inherited ``REPRO_FAULTS`` alone can
never take a worker down.

Crashing at *cell start* — before compute and cache write-back — keeps
the differential story simple: a killed worker has published nothing,
so the retried cell's result is bit-identical by construction and the
chaos harness can assert it.
"""

from __future__ import annotations

import os

from repro.faults.plan import FaultPlan, FaultPlanError, load_plan

ENV_PLAN = "REPRO_FAULTS"
ENV_STATE = "REPRO_FAULTS_STATE"

_UNLOADED = object()
_plan: object = _UNLOADED
_cells_started = 0


def _active_plan() -> FaultPlan | None:
    """The plan named by ``REPRO_FAULTS``, loaded once per process."""
    global _plan
    if _plan is _UNLOADED:
        path = os.environ.get(ENV_PLAN)
        if not path:
            _plan = None
        else:
            try:
                _plan = load_plan(path)
            except FaultPlanError:
                # A bad plan must not take down real work; it just
                # injects nothing. The harness validates plans up front.
                _plan = None
    return _plan  # type: ignore[return-value]


def reset_for_tests() -> None:
    """Drop the cached plan and cell counter (after env changes)."""
    global _plan, _cells_started
    _plan = _UNLOADED
    _cells_started = 0


def _claim_crash_token(budget: int) -> bool:
    """Atomically claim one of ``budget`` crash tokens, if any remain."""
    state_dir = os.environ.get(ENV_STATE)
    if not state_dir or budget < 1:
        return False
    for index in range(budget):
        token = os.path.join(state_dir, f"crash-{index:03d}.token")
        try:
            fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        except OSError:
            return False
        os.close(fd)
        return True
    return False


def crashes_injected(state_dir: str | None = None) -> int:
    """How many crash tokens have been claimed (harness-side telemetry).

    Reads ``state_dir`` when given (the harness after restoring the
    environment), else the live ``REPRO_FAULTS_STATE``.
    """
    if state_dir is None:
        state_dir = os.environ.get(ENV_STATE)
    if not state_dir:
        return 0
    try:
        return sum(1 for name in os.listdir(state_dir) if name.endswith(".token"))
    except OSError:
        return 0


def maybe_crash(cell) -> None:
    """Crash this worker per the active plan; no-op without one.

    ``cell`` is a :class:`~repro.sim.specs.SweepCell`; only its display
    labels are read (the poison selector matches on them), so injection
    never perturbs content hashes.
    """
    global _cells_started
    plan = _active_plan()
    if plan is None or plan.worker is None:
        return
    _cells_started += 1
    worker = plan.worker
    if worker.benchmark is not None or worker.system is not None:
        if worker.benchmark is not None and cell.bench_name != worker.benchmark:
            return
        if worker.system is not None and cell.system_label != worker.system:
            return
    elif _cells_started != worker.crash_at_cell:
        return
    if not _claim_crash_token(worker.crashes):
        return
    # os._exit skips atexit/finally on purpose: a real SIGKILL'd worker
    # gets no goodbye either, and that is the failure being simulated.
    os._exit(worker.exit_code)
