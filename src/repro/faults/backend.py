""":class:`FaultyBackend` — a cache backend that misbehaves on schedule.

Wraps any :class:`~repro.sim.cache.CacheBackend` and injects the
``cache`` and ``peer`` sections of a :class:`~repro.faults.plan.FaultPlan`:

* ``cache`` faults are drawn from the plan's ``"cache"`` RNG stream —
  added latency, transient :class:`~repro.sim.cache.CacheBackendError`,
  silently dropped puts, byte corruption of fetched entries;
* ``peer`` faults are count-driven — the first ``recover_after``
  operations are slow or black-holed, then the peer recovers — which is
  the deterministic shape the circuit-breaker tests need.

Every injected fault is recorded (bounded event list + counters) and
surfaces in the chaos report, so a seeded run asserts *which* faults
fired, not just that the sweep survived them.

The wrapper sits *under* :class:`~repro.sim.cache.ResultCache`'s codec,
exactly where a failing disk or NIC would: corruption hits the stored
bytes, and the hardened read path above must catch it.
"""

from __future__ import annotations

import time
from collections import Counter

from repro.faults.plan import FaultPlan
from repro.sim.cache import CacheBackend, CacheBackendError

#: Cap on retained fault events (counters are exact regardless).
MAX_EVENTS = 200


def corrupt_bytes(payload: bytes, mode: str, rng) -> bytes:
    """Damage ``payload`` per ``mode`` using draws from ``rng``."""
    if not payload:
        return payload
    if mode == "flip":
        index = rng.randrange(len(payload))
        damaged = bytearray(payload)
        damaged[index] ^= 0xFF
        return bytes(damaged)
    if mode == "truncate":
        return payload[: rng.randrange(len(payload))]
    if mode == "garbage":
        return rng.randbytes(len(payload))
    raise ValueError(f"unknown corruption mode {mode!r}")


class FaultyBackend(CacheBackend):
    """Inject a :class:`FaultPlan`'s cache/peer faults around a backend."""

    def __init__(self, inner: CacheBackend, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self._rng = plan.stream("cache")
        self._peer_ops = 0
        self.counts: Counter = Counter()
        self.events: list[dict] = []

    def _record(self, fault: str, op: str, key: str) -> None:
        self.counts[fault] += 1
        if len(self.events) < MAX_EVENTS:
            self.events.append({"fault": fault, "op": op, "key": key[:12]})

    def _peer_gate(self, op: str, key: str) -> None:
        peer = self.plan.peer
        if peer is None:
            return
        self._peer_ops += 1
        if peer.recover_after is not None and self._peer_ops > peer.recover_after:
            return
        if peer.mode == "slow":
            self._record("peer_slow", op, key)
            time.sleep(peer.delay)
            return
        self._record("peer_blackhole", op, key)
        raise CacheBackendError(
            f"injected black-holed peer on {op} {key[:12]}… "
            f"(op {self._peer_ops} of plan seed {self.plan.seed})"
        )

    def _cache_gate(self, op: str, key: str) -> None:
        cache = self.plan.cache
        if cache is None:
            return
        if cache.latency > 0.0:
            time.sleep(cache.latency)
        if cache.transient_error_p > 0.0 and self._rng.random() < cache.transient_error_p:
            self._record("transient_error", op, key)
            raise CacheBackendError(
                f"injected transient fault on {op} {key[:12]}… "
                f"(plan seed {self.plan.seed})"
            )

    def get_bytes(self, key: str) -> bytes | None:
        self._peer_gate("get", key)
        self._cache_gate("get", key)
        payload = self.inner.get_bytes(key)
        cache = self.plan.cache
        if (
            payload is not None
            and cache is not None
            and cache.corrupt_get_p > 0.0
            and self._rng.random() < cache.corrupt_get_p
        ):
            self._record("corrupt_get", key=key, op="get")
            payload = corrupt_bytes(payload, cache.corrupt_mode, self._rng)
        return payload

    def put_bytes(self, key: str, data: bytes) -> None:
        self._peer_gate("put", key)
        self._cache_gate("put", key)
        cache = self.plan.cache
        if (
            cache is not None
            and cache.drop_put_p > 0.0
            and self._rng.random() < cache.drop_put_p
        ):
            self._record("dropped_put", "put", key)
            return
        self.inner.put_bytes(key, data)

    def discard(self, key: str) -> None:
        # Eviction is part of the *recovery* path; never inject on it.
        self.inner.discard(key)

    def location(self) -> str:
        return f"faulty({self.inner.location()}, seed={self.plan.seed})"

    def __len__(self) -> int:
        return len(self.inner)  # type: ignore[arg-type]

    def report(self) -> dict:
        """JSON-safe injection telemetry for the chaos report."""
        return {
            "seed": self.plan.seed,
            "counts": dict(sorted(self.counts.items())),
            "events": list(self.events),
        }
