"""The audited way to swallow an exception.

Every layer of the service stack has places where degrading is the
*correct* response — a dead cache peer, an unreadable advisory entry, a
finalizer racing interpreter shutdown. The failure class this module
exists for is the other kind: a broad ``except Exception`` that quietly
eats a typo'd attribute, or worse, a ``KeyboardInterrupt`` that never
stops the process. REP006 (docs/LINTING.md) flags any broad handler in
``src/repro`` that neither re-raises nor routes through
:func:`degrade`; this module makes the compliant spelling one call.

:func:`degrade` does three things a bare ``pass`` does not:

1. re-raises control-flow exceptions (``KeyboardInterrupt``,
   ``SystemExit``) so they can never be swallowed by accident;
2. records the suppression in a bounded in-process ring buffer
   (:func:`recent_degradations`), which the chaos reports and tests
   read;
3. logs it on the ``repro.faults`` logger at WARNING, so an operator
   tailing a daemon sees the degradations happening.
"""

from __future__ import annotations

import logging
import threading
from collections import deque

_log = logging.getLogger("repro.faults")

_RECENT: deque = deque(maxlen=256)
_LOCK = threading.Lock()

#: Exception types :func:`degrade` refuses to swallow by default.
NON_RECOVERABLE = (KeyboardInterrupt, SystemExit)


def degrade(
    exc: BaseException,
    context: str,
    *,
    reraise: tuple[type[BaseException], ...] = NON_RECOVERABLE,
) -> BaseException:
    """Record a deliberately-swallowed exception; never eat control flow.

    Returns ``exc`` so call sites can keep a reference (e.g. to report
    it later). Pass ``reraise=()`` only where the caller demonstrably
    forwards *every* exception itself (e.g. a thread harness that
    re-raises captured failures in the parent).
    """
    if reraise and isinstance(exc, reraise):
        raise exc
    entry = {"context": context, "error": f"{type(exc).__name__}: {exc}"}
    with _LOCK:
        _RECENT.append(entry)
    _log.warning("degraded: %s (%s)", context, entry["error"])
    return exc


def recent_degradations() -> list[dict]:
    """The most recent suppressed exceptions (newest last), as dicts."""
    with _LOCK:
        return [dict(entry) for entry in _RECENT]


def clear_degradations() -> None:
    """Reset the ring buffer (test isolation)."""
    with _LOCK:
        _RECENT.clear()
